//! The Parallax user API and executed-mode distributed runner.
//!
//! Mirrors Figure 3: `shard` splits input data across GPUs,
//! `get_runner` turns a single-GPU graph plus resource information into
//! a runnable distributed job. `Runner::run` spawns one worker thread
//! per GPU and one server thread per machine (when the plan needs
//! servers), executes synchronous hybrid training, and reports losses,
//! measured traffic by transport class, and a simulated iteration time
//! on the calibrated cluster model.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parallax_cluster::{
    CalibrationProfile, ClusterModel, IterationSim, Phase, SparseOpCost, Transport,
};
use parallax_comm::{collectives, Endpoint, Router, TrafficClass, TrafficSnapshot};
use parallax_dataflow::grad::backward;
use parallax_dataflow::{Feed, Graph, NodeId, Session, VarId, VarStore};
use parallax_fault::FaultInjector;
use parallax_ps::{
    locally_aggregate, protocol, PsClient, PsTopology, PsWorkerContext, Server, ServerConfig,
    VarPlacement,
};
use parallax_tensor::{sparse::Grad, DetRng, Tensor};
use parking_lot::Mutex;

use crate::checkpoint::{self, TrainState};
use crate::config::ParallaxConfig;
use crate::partition::{self, SearchResult};
use crate::sparsity::SparsityProfile;
use crate::transform::DistributedPlan;
use crate::{CoreError, Result};

/// # Examples
///
/// ```
/// use parallax_core::shard_range;
/// assert_eq!(shard_range(10, 3, 0), 0..4);
/// assert_eq!(shard_range(10, 3, 1), 4..7);
/// assert_eq!(shard_range(10, 3, 2), 7..10);
/// ```
/// The index range of `worker`'s shard when `total` samples are split
/// across `workers` GPUs — the `parallax.shard` API.
pub fn shard_range(total: usize, workers: usize, worker: usize) -> std::ops::Range<usize> {
    let base = total / workers;
    let rem = total % workers;
    let start = worker * base + worker.min(rem);
    let len = base + usize::from(worker < rem);
    start..start + len
}

/// A loaded checkpoint a recovery attempt resumes from: the variable
/// values plus any optimizer slot state (velocity/accum) the save
/// captured, so Momentum/Adagrad resume bitwise, not just SGD.
///
/// Public because multi-process roles (`repro dist`) load the chief's
/// checkpoint themselves at respawn and hand it to
/// [`Runner::run_role`] — the same type the in-process recovery loop
/// threads through `run`.
#[derive(Debug, Clone)]
pub struct RestorePoint {
    /// The checkpointed variable values.
    pub store: VarStore,
    /// Checkpointed optimizer slot state, keyed `(variable name, slot
    /// kind)`.
    pub slots: checkpoint::SlotMap,
}

impl RestorePoint {
    /// Loads a checkpoint file into a restore point, returning the step
    /// it was saved at (the iteration training resumes from).
    pub fn load(graph: &Graph, path: &std::path::Path) -> Result<(RestorePoint, u64)> {
        let (store, state, slots) = checkpoint::load_full(graph, path)?;
        Ok((RestorePoint { store, slots }, state.step))
    }
}

/// Which single role one OS process (or one thread of the in-process
/// runner) executes. Worker indices are positions in
/// [`PsTopology::worker_ranks`]; index 0 is the global chief.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleAssignment {
    /// The `index`-th worker replica.
    Worker {
        /// Position in `worker_ranks` (0 = chief).
        index: usize,
    },
    /// The parameter-server shard host of `machine`.
    Server {
        /// Machine index in the topology.
        machine: usize,
    },
}

/// What one executed role produced — the per-process half of a
/// [`RunReport`], merged by the launcher (or by `run_attempt`'s thread
/// scope) with [`mean_worker_losses`] and
/// [`Runner::stitch_final_model`].
#[derive(Debug)]
pub enum RoleOutput {
    /// A worker's training series and its final replica state.
    Worker {
        /// Per-iteration training loss for `start_iter..iterations`.
        losses: Vec<f32>,
        /// Per-iteration global gradient norms (chief only, and only
        /// under `trace_gradients`).
        norms: Vec<f32>,
        /// Total measured forward+backward seconds.
        compute_secs: f64,
        /// The replica's final variable values.
        store: VarStore,
    },
    /// A server's final shard values, `((variable, partition), value)`.
    Server {
        /// The hosted shards at their final values.
        shards: Vec<((VarId, usize), Tensor)>,
    },
}

/// Mean loss per iteration across workers — the exact worker-order fold
/// `run_attempt` applies, shared with the multi-process artifact merge
/// so both paths produce bitwise-identical series.
pub fn mean_worker_losses(per_worker: &[Vec<f32>]) -> Vec<f32> {
    let workers = per_worker.len();
    let iters = per_worker.iter().map(Vec::len).max().unwrap_or(0);
    let mut mean = vec![0.0f32; iters];
    for series in per_worker {
        for (slot, &l) in mean.iter_mut().zip(series) {
            *slot += l / workers as f32;
        }
    }
    mean
}

/// Tag namespace for AllGatherv collectives (classified as MPI traffic).
pub(crate) fn mpi_tag(var: usize, iter: u64) -> u64 {
    0x3000_0000_0000_0000 | protocol::pack(protocol::ReqKind::PushDense, var, 0, iter)
}

/// Measured traffic of a run, by transport class.
#[derive(Debug, Clone, Default)]
pub struct TrafficReport {
    /// NCCL-class traffic (ring AllReduce).
    pub nccl: TrafficSnapshot,
    /// MPI-class traffic (AllGatherv).
    pub mpi: TrafficSnapshot,
    /// PS RPC traffic.
    pub ps: TrafficSnapshot,
    /// Intra-machine local aggregation traffic.
    pub local_agg: TrafficSnapshot,
    /// Untagged control traffic outside the four modelled classes.
    pub other: TrafficSnapshot,
}

impl TrafficReport {
    /// Accumulates another report's per-class traffic into this one.
    /// Recovery re-creates the router (and therefore the ledger) per
    /// attempt; merging keeps the whole-run totals cross-checkable
    /// against the trace byte ledger.
    pub fn merge_from(&mut self, other: &TrafficReport) {
        let merge = |a: &mut TrafficSnapshot, b: &TrafficSnapshot| {
            if a.out_bytes.is_empty() {
                *a = b.clone();
            } else {
                a.add_assign(b);
            }
        };
        merge(&mut self.nccl, &other.nccl);
        merge(&mut self.mpi, &other.mpi);
        merge(&mut self.ps, &other.ps);
        merge(&mut self.local_agg, &other.local_agg);
        merge(&mut self.other, &other.other);
    }

    /// Total network bytes across classes.
    pub fn total_network_bytes(&self) -> u64 {
        self.nccl.total_network_bytes()
            + self.mpi.total_network_bytes()
            + self.ps.total_network_bytes()
            + self.local_agg.total_network_bytes()
            + self.other.total_network_bytes()
    }
}

/// The result of an executed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Mean training loss per iteration (averaged over workers).
    pub losses: Vec<f32>,
    /// Global gradient norm per iteration (aggregated gradients, from the
    /// chief's trace reads); empty unless `trace_gradients` is set.
    pub grad_norms: Vec<f32>,
    /// Measured traffic (whole run).
    pub traffic: TrafficReport,
    /// Iterations executed.
    pub iterations: usize,
    /// Mean measured compute seconds per worker per iteration (host
    /// execution of forward+backward; used for relative comparisons).
    pub host_compute_per_iter: f64,
    /// Final values of every variable, by variable index.
    pub final_model: HashMap<usize, Tensor>,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

impl RunReport {
    /// Rebuilds a [`VarStore`] holding the final model.
    pub fn final_store(&self, graph: &Graph) -> Result<VarStore> {
        let mut values = Vec::with_capacity(graph.variables().len());
        for var in graph.var_ids() {
            let t = self
                .final_model
                .get(&var.index())
                .ok_or_else(|| CoreError::Worker(format!("missing variable {}", var.index())))?;
            values.push(t.clone());
        }
        Ok(VarStore::from_values(values))
    }

    /// Simulated per-iteration time on a cluster model: measured traffic
    /// phases plus modelled server CPU (partition-dependent) plus a
    /// GPU-compute estimate.
    ///
    /// `gpu_compute` substitutes the measured host compute (worker
    /// threads are not GPUs); pass [`RunReport::host_compute_per_iter`]
    /// scaled however the caller calibrates.
    pub fn simulated_iteration_time(
        &self,
        cluster: &ClusterModel,
        machines: usize,
        gpu_compute: f64,
        server_cpu: f64,
    ) -> f64 {
        self.iteration_sim(cluster, machines, gpu_compute, server_cpu)
            .iteration_time()
    }

    /// The calibrated [`IterationSim`] behind
    /// [`RunReport::simulated_iteration_time`]: measured per-iteration
    /// traffic phases plus the given compute and server-CPU estimates.
    /// Exposing the sim itself lets callers render its modelled phase
    /// timeline (e.g. `IterationSim::trace_records`) next to the
    /// measured one.
    pub fn iteration_sim(
        &self,
        cluster: &ClusterModel,
        machines: usize,
        gpu_compute: f64,
        server_cpu: f64,
    ) -> IterationSim {
        let per_iter = |snap: &TrafficSnapshot| -> TrafficSnapshot {
            let scale = |v: &[u64]| -> Vec<u64> {
                v.iter()
                    .map(|&b| b / self.iterations.max(1) as u64)
                    .collect()
            };
            TrafficSnapshot {
                out_bytes: scale(&snap.out_bytes),
                in_bytes: scale(&snap.in_bytes),
                link_bytes: HashMap::new(),
                intra_bytes_per_machine: scale(&snap.intra_bytes_per_machine),
                inter_messages: snap.inter_messages / self.iterations.max(1) as u64,
                intra_messages: snap.intra_messages / self.iterations.max(1) as u64,
            }
        };
        let mut sim = IterationSim::new(cluster.clone(), machines);
        sim.compute = vec![gpu_compute; machines];
        sim.server_cpu = vec![server_cpu; machines];
        for (transport, snap) in [
            (Transport::Nccl, &self.traffic.nccl),
            (Transport::Mpi, &self.traffic.mpi),
            (Transport::Grpc, &self.traffic.ps),
            (Transport::Grpc, &self.traffic.local_agg),
        ] {
            if snap.total_network_bytes() > 0 || snap.intra_bytes() > 0 {
                sim.phases
                    .push(Phase::from_snapshot(transport, &per_iter(snap)));
            }
        }
        sim
    }

    /// An [`IterationSim`] whose compute, server-CPU and PS-queue inputs
    /// come from a measured [`CalibrationProfile`] instead of analytic
    /// estimates: traffic phases from this report, everything else from
    /// the profile's trace. Apply straggler scales to `cluster` first
    /// (e.g. [`ClusterModel::with_straggler`]) to predict a heterogeneous
    /// run from a homogeneous baseline.
    pub fn calibrated_iteration_sim(
        &self,
        cluster: &ClusterModel,
        cal: &CalibrationProfile,
    ) -> IterationSim {
        let mut sim = self.iteration_sim(cluster, cal.machines, 0.0, 0.0);
        cal.apply(&mut sim);
        sim
    }
}

/// A configured distributed training job.
pub struct Runner {
    graph: Arc<Graph>,
    loss: NodeId,
    topo: PsTopology,
    config: ParallaxConfig,
    profile: SparsityProfile,
    plan: Arc<DistributedPlan>,
}

/// Builds a [`Runner`] from a single-GPU graph, resources, a config and
/// a sparsity profile (the `parallax.get_runner` call).
pub fn get_runner(
    graph: Graph,
    loss: NodeId,
    gpus_per_machine: Vec<usize>,
    config: ParallaxConfig,
    profile: SparsityProfile,
) -> Result<Runner> {
    if !config.synchronous {
        if !matches!(config.arch, crate::config::ArchChoice::PsOnly { .. }) {
            return Err(CoreError::Config(
                "asynchronous training requires a PS-only architecture \
                 (collectives are inherently synchronous)"
                    .into(),
            ));
        }
        if config.trace_gradients {
            return Err(CoreError::Config(
                "gradient tracing requires synchronous training".into(),
            ));
        }
    }
    if let Some(n) = config.compute_threads {
        parallax_tensor::pool::configure_threads(n);
    }
    for (m, &s) in config.machine_slowdown.iter().enumerate() {
        if !s.is_finite() || s < 1.0 {
            return Err(CoreError::Config(format!(
                "machine_slowdown[{m}] = {s}: slowdown factors must be finite and >= 1.0"
            )));
        }
    }
    let persists = config.checkpoint_path.is_some() || config.snapshot_path.is_some();
    if persists {
        if config.checkpoint_interval == 0 {
            return Err(CoreError::Config(
                "checkpoint_interval must be >= 1 when checkpoint_path or snapshot_path is set"
                    .into(),
            ));
        }
        if !config.synchronous {
            return Err(CoreError::Config(
                "checkpointing and snapshot publishing require synchronous training (the \
                 chief coordinates consistent shard fetches at iteration boundaries)"
                    .into(),
            ));
        }
    } else if config.checkpoint_interval != 0 {
        return Err(CoreError::Config(
            "checkpoint_interval is set but neither checkpoint_path nor snapshot_path is".into(),
        ));
    }
    if let Some(d) = config.recv_deadline {
        if d.is_zero() {
            return Err(CoreError::Config(
                "recv_deadline must be a positive duration".into(),
            ));
        }
    }
    let topo = PsTopology::new(gpus_per_machine).map_err(CoreError::Ps)?;
    if config.machine_slowdown.len() > topo.num_machines() {
        return Err(CoreError::Config(format!(
            "machine_slowdown names {} machines but the cluster has {}",
            config.machine_slowdown.len(),
            topo.num_machines()
        )));
    }
    let partitions = config
        .sparse_partitions
        .unwrap_or(topo.num_machines().max(1));
    let plan =
        crate::plancheck::build_verified_plan(&graph, loss, &profile, &config, &topo, partitions)?;
    Ok(Runner {
        graph: Arc::new(graph),
        loss,
        topo,
        config,
        profile,
        plan: Arc::new(plan),
    })
}

/// Builds a [`Runner`] that executes a strategy's verified plan (see
/// [`crate::strategy::Strategy::plan`]). The runner re-derives and
/// re-verifies the plan from the strategy's configuration — planning is
/// deterministic, so the rebuilt plan must equal the one the strategy
/// verified; any disagreement (e.g. a topology mismatch, or a plan
/// edited after verification) is rejected before any thread spawns.
pub fn get_runner_with_plan(
    graph: Graph,
    loss: NodeId,
    gpus_per_machine: Vec<usize>,
    strategy_plan: &crate::strategy::StrategyPlan,
    profile: SparsityProfile,
) -> Result<Runner> {
    let runner = get_runner(
        graph,
        loss,
        gpus_per_machine,
        strategy_plan.config.clone(),
        profile,
    )?;
    if *runner.plan() != strategy_plan.plan {
        return Err(CoreError::Config(format!(
            "strategy '{}': the verified plan does not match the plan re-derived for this \
             topology (was it planned for a different cluster, or edited after verification?)",
            strategy_plan.name
        )));
    }
    Ok(runner)
}

/// Builds a [`Runner`] from a parsed resource specification (the
/// `resource_info_file` of Figure 3's `get_runner`).
pub fn get_runner_from_spec(
    graph: Graph,
    loss: NodeId,
    spec: &parallax_cluster::ResourceSpec,
    config: ParallaxConfig,
    profile: SparsityProfile,
) -> Result<Runner> {
    let gpus_per_machine = spec.machines().iter().map(|m| m.gpu_ids.len()).collect();
    get_runner(graph, loss, gpus_per_machine, config, profile)
}

impl Runner {
    /// The distributed plan in force.
    pub fn plan(&self) -> &DistributedPlan {
        &self.plan
    }

    /// The sparsity profile in force.
    pub fn profile(&self) -> &SparsityProfile {
        &self.profile
    }

    /// The job topology.
    pub fn topology(&self) -> &PsTopology {
        &self.topo
    }

    /// Rebuilds the runner with a different sparse partition count.
    pub fn with_partitions(&self, partitions: usize) -> Result<Runner> {
        let mut config = self.config.clone();
        config.sparse_partitions = Some(partitions);
        let plan = crate::plancheck::build_verified_plan(
            &self.graph,
            self.loss,
            &self.profile,
            &config,
            &self.topo,
            partitions,
        )?;
        Ok(Runner {
            graph: Arc::clone(&self.graph),
            loss: self.loss,
            topo: self.topo.clone(),
            config,
            profile: self.profile.clone(),
            plan: Arc::new(plan),
        })
    }

    /// Modelled server CPU seconds per iteration at the current plan's
    /// partition count (the Eq. 1 `th1/P + th2*P` ingredient).
    pub fn modelled_server_cpu(&self, cluster: &ClusterModel) -> f64 {
        let n = self.topo.num_machines() as f64;
        let workers = self.topo.num_workers() as f64;
        let mut total = 0.0;
        for v in &self.profile.vars {
            if !v.sparse {
                continue;
            }
            match self.plan.plan.placement(v.var) {
                Ok(VarPlacement::PsSparse { partition, .. }) => {
                    let pushed_rows = workers * v.rows_touched / n;
                    let hosted = (partition.parts() as f64 / n).max(1.0) as usize;
                    let cost = SparseOpCost {
                        pushed_rows,
                        cols: v.cols() as f64,
                    };
                    total += cost.time(&cluster.cpu, hosted);
                }
                _ => continue,
            }
        }
        total
    }

    /// Runs Parallax's partition search (Section 3.2): short executed
    /// runs at sampled partition counts, simulated iteration time as the
    /// objective, Eq. 1 fit, optimum inside the sampled range. Returns
    /// the re-planned runner and the search trace.
    pub fn optimize_partitions<F>(
        &self,
        feed_fn: F,
        sample_iters: usize,
        max_partitions: usize,
        cluster: &ClusterModel,
    ) -> Result<(Runner, SearchResult)>
    where
        F: Fn(usize, usize) -> Feed + Send + Sync + Copy,
    {
        let initial = self.topo.num_machines().max(2);
        let result = partition::search(initial, max_partitions, |p| {
            let candidate = match self.with_partitions(p) {
                Ok(r) => r,
                Err(_) => return f64::INFINITY,
            };
            let report = match candidate.run(sample_iters, feed_fn) {
                Ok(r) => r,
                Err(_) => return f64::INFINITY,
            };
            let server_cpu = candidate.modelled_server_cpu(cluster);
            report.simulated_iteration_time(
                cluster,
                self.topo.num_machines(),
                report.host_compute_per_iter,
                server_cpu,
            )
        })?;
        Ok((self.with_partitions(result.best)?, result))
    }

    /// Executes `iterations` of synchronous data-parallel training.
    ///
    /// `feed_fn(worker, iter)` supplies each worker's mini-batch (use
    /// [`shard_range`] to cut a dataset into disjoint shards).
    ///
    /// When `checkpoint_path` is configured the chief saves a consistent
    /// checkpoint (variables + step + data-shard cursors) every
    /// `checkpoint_interval` iterations, and on a detected failure — a
    /// fault-injected kill, or any worker/server error surfaced within
    /// the receive deadline — the runner tears the attempt down,
    /// restores the latest checkpoint, and resumes from its step, up to
    /// `max_recoveries` times. Iterations replayed before the first
    /// checkpoint restart from the initial seeded state. Traffic is
    /// accumulated across attempts so the byte crosscheck against the
    /// trace ledger holds under fault injection; `losses` entries for
    /// iterations that only completed inside a failed attempt are zero.
    pub fn run<F>(&self, iterations: usize, feed_fn: F) -> Result<RunReport>
    where
        F: Fn(usize, usize) -> Feed + Send + Sync,
    {
        let started = Instant::now();
        // One injector for the whole run: every fault fires at most
        // once, so a recovery replay does not re-kill the same worker.
        let injector = Arc::new(FaultInjector::new(self.config.fault_plan.clone()));
        let mut traffic = TrafficReport::default();
        let mut losses = vec![0.0f32; iterations];
        let mut start_iter = 0usize;
        let mut restore: Option<RestorePoint> = None;
        let mut recoveries = 0usize;
        loop {
            match self.run_attempt(
                iterations,
                start_iter,
                restore.as_ref(),
                &feed_fn,
                &injector,
                &mut traffic,
            ) {
                Ok(mut report) => {
                    for (slot, &l) in losses[start_iter..].iter_mut().zip(&report.losses) {
                        *slot = l;
                    }
                    report.losses = losses;
                    report.traffic = traffic;
                    report.wall_seconds = started.elapsed().as_secs_f64();
                    return Ok(report);
                }
                Err(err) => {
                    {
                        let _detect =
                            parallax_trace::span(parallax_trace::SpanCat::Phase, "fault.detect");
                        parallax_trace::counter("fault.detected").add(1);
                    }
                    if self.config.checkpoint_path.is_none()
                        || recoveries >= self.config.max_recoveries
                    {
                        return Err(err);
                    }
                    recoveries += 1;
                    let _recover =
                        parallax_trace::span(parallax_trace::SpanCat::Phase, "fault.recover");
                    parallax_trace::counter("fault.recovered").add(1);
                    let path = self.config.checkpoint_path.as_ref().expect("checked above");
                    if path.exists() {
                        let (rp, step) = RestorePoint::load(&self.graph, path)?;
                        eprintln!(
                            "parallax: failure detected ({err}); recovering from \
                             checkpoint at step {step}"
                        );
                        start_iter = step as usize;
                        restore = Some(rp);
                    } else {
                        eprintln!(
                            "parallax: failure detected ({err}) before any checkpoint; \
                             restarting from initial state"
                        );
                        start_iter = 0;
                        restore = None;
                    }
                }
            }
        }
    }

    /// One execution attempt: iterations `start_iter..iterations`, with
    /// every worker replica and server shard seeded from `restore` when
    /// resuming from a checkpoint. The attempt's measured traffic is
    /// merged into `traffic_total` whether it succeeds or fails — bytes
    /// a doomed attempt moved were still physically sent and traced.
    fn run_attempt<F>(
        &self,
        iterations: usize,
        start_iter: usize,
        restore: Option<&RestorePoint>,
        feed_fn: &F,
        injector: &Arc<FaultInjector>,
        traffic_total: &mut TrafficReport,
    ) -> Result<RunReport>
    where
        F: Fn(usize, usize) -> Feed + Send + Sync,
    {
        let started = Instant::now();
        let needs_servers = self.plan.needs_servers();
        let (mut endpoints, traffic) =
            Router::build_with(self.topo.comm().clone(), Some(Arc::clone(injector)));
        if let Some(d) = self.config.recv_deadline {
            for ep in endpoints.iter_mut() {
                ep.set_recv_deadline(d);
            }
        }
        // Runtime half of the protocol checker: debug builds (and any
        // run with `validate_protocol`) assert every routed message
        // against the session machine derived from the verified plan.
        // The validator is stateless, so fault-injected duplicates and
        // recovery replays are never false positives.
        if cfg!(debug_assertions) || self.config.validate_protocol {
            let spec = crate::protocheck::derive_session(
                &self.graph,
                &self.config,
                &self.topo,
                &self.plan,
            )?;
            let validator = parallax_comm::protocheck::SessionValidator::from_spec(&spec);
            for ep in endpoints.iter_mut() {
                ep.set_validator(Arc::clone(&validator));
            }
        }
        let mut by_rank: Vec<Option<Endpoint>> = endpoints.drain(..).map(Some).collect();

        let workers = self.topo.num_workers();
        let losses: Mutex<Vec<Vec<f32>>> = Mutex::new(vec![Vec::new(); workers]);
        let compute_secs: Mutex<Vec<f64>> = Mutex::new(vec![0.0; workers]);
        let shard_values: Mutex<Vec<((VarId, usize), Tensor)>> = Mutex::new(Vec::new());
        let chief_store: Mutex<Option<VarStore>> = Mutex::new(None);
        let chief_norms: Mutex<Vec<f32>> = Mutex::new(Vec::new());
        let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            if needs_servers {
                for m in 0..self.topo.num_machines() {
                    let endpoint = by_rank[self.topo.server_rank(m)]
                        .take()
                        .expect("server endpoint");
                    let shard_values = &shard_values;
                    let failures = &failures;
                    let runner = &*self;
                    let feed_fn = &feed_fn;
                    scope.spawn(move || {
                        match runner.run_role(
                            RoleAssignment::Server { machine: m },
                            endpoint,
                            iterations,
                            start_iter,
                            restore,
                            injector,
                            feed_fn,
                        ) {
                            Ok(RoleOutput::Server { shards }) => shard_values.lock().extend(shards),
                            Ok(RoleOutput::Worker { .. }) => {
                                failures
                                    .lock()
                                    .push(format!("server {m}: role returned worker output"));
                            }
                            Err(e) => {
                                // Surface immediately: peers block on a dead
                                // server, so the collected error would
                                // otherwise never be seen.
                                let msg = match e {
                                    CoreError::Worker(msg) => msg,
                                    other => format!("server {m}: {other}"),
                                };
                                eprintln!("parallax: {msg}");
                                failures.lock().push(msg)
                            }
                        }
                    });
                }
            }

            for (widx, &rank) in self.topo.worker_ranks().iter().enumerate() {
                let endpoint = by_rank[rank].take().expect("worker endpoint");
                let losses = &losses;
                let compute_secs = &compute_secs;
                let chief_store = &chief_store;
                let chief_norms = &chief_norms;
                let failures = &failures;
                let feed_fn = &feed_fn;
                let runner = &*self;
                scope.spawn(move || {
                    match runner.run_role(
                        RoleAssignment::Worker { index: widx },
                        endpoint,
                        iterations,
                        start_iter,
                        restore,
                        injector,
                        feed_fn,
                    ) {
                        Ok(RoleOutput::Worker {
                            losses: my_losses,
                            norms,
                            compute_secs: my_compute,
                            store,
                        }) => {
                            losses.lock()[widx] = my_losses;
                            compute_secs.lock()[widx] = my_compute;
                            if rank == runner.topo.chief() {
                                *chief_store.lock() = Some(store);
                                *chief_norms.lock() = norms;
                            }
                        }
                        Ok(RoleOutput::Server { .. }) => {
                            failures
                                .lock()
                                .push(format!("worker {widx}: role returned server output"));
                        }
                        Err(e) => {
                            eprintln!("parallax: worker {widx} failed: {e}");
                            failures.lock().push(format!("worker {widx}: {e}"))
                        }
                    }
                });
            }
        });

        // Merge this attempt's ledger into the running total *before*
        // checking for failures: even a doomed attempt's bytes were
        // physically sent and mirrored into the trace ledger.
        traffic_total.merge_from(&TrafficReport {
            nccl: traffic.class_snapshot(TrafficClass::Nccl),
            mpi: traffic.class_snapshot(TrafficClass::Mpi),
            ps: traffic.class_snapshot(TrafficClass::Ps),
            local_agg: traffic.class_snapshot(TrafficClass::LocalAgg),
            other: traffic.class_snapshot(TrafficClass::Default),
        });

        let failures = failures.into_inner();
        if let Some(first) = failures.into_iter().next() {
            return Err(CoreError::Worker(first));
        }

        // Mean loss per executed iteration across workers.
        let attempt_iters = iterations - start_iter;
        let mean_losses = mean_worker_losses(&losses.into_inner());

        // Final model: AR variables from the chief replica, PS variables
        // stitched from server shards.
        let chief = chief_store
            .into_inner()
            .ok_or_else(|| CoreError::Worker("chief produced no model".into()))?;
        let final_model = self.stitch_final_model(&chief, shard_values.into_inner())?;

        let compute = compute_secs.into_inner();
        let host_compute_per_iter =
            compute.iter().copied().fold(0.0, f64::max) / attempt_iters.max(1) as f64;

        Ok(RunReport {
            losses: mean_losses,
            grad_norms: chief_norms.into_inner(),
            // The caller (`run`) substitutes the cross-attempt total.
            traffic: TrafficReport::default(),
            iterations,
            host_compute_per_iter,
            final_model,
            wall_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// The configuration in force (what `get_runner` validated).
    pub fn config(&self) -> &ParallaxConfig {
        &self.config
    }

    /// The server configuration every shard host derives for this run.
    /// Shared by the in-process attempt and `repro dist` server
    /// processes so the synchronization barrier (which folds the
    /// checkpoint-boundary fetch count) is identical in both modes.
    fn server_config(&self, iterations: usize, start_iter: usize) -> ServerConfig {
        ServerConfig {
            iterations,
            start_iteration: start_iter,
            checkpoint_interval: self.ckpt_interval(),
            average_gradients: self.config.average_sparse,
            local_aggregation: self.config.local_aggregation && self.config.synchronous,
            chief_triggers_update: self.config.chief_triggers_update && self.config.synchronous,
            synchronous: self.config.synchronous,
            serve_aggregates: self.config.trace_gradients,
            seed: self.config.seed,
            lr_schedule: self.config.lr_schedule,
            apply_min_rows: self.config.ps_apply_min_rows,
        }
    }

    /// Executes exactly one role of this job over the given endpoint —
    /// the unit both execution modes are built from. The in-process
    /// runner calls this once per thread of an attempt; `repro dist`
    /// calls it once per OS process with an endpoint over a
    /// [`parallax_comm::Transport`] that crosses machines. Everything
    /// role-specific (replica loop, server shard hosting, restore,
    /// fault hooks, chief-only artifact publishing) lives below this
    /// call, which is what makes the two modes bitwise-equivalent.
    #[allow(clippy::too_many_arguments)] // the full role contract, shared by both modes
    pub fn run_role<F>(
        &self,
        role: RoleAssignment,
        endpoint: Endpoint,
        iterations: usize,
        start_iter: usize,
        restore: Option<&RestorePoint>,
        injector: &Arc<FaultInjector>,
        feed_fn: &F,
    ) -> Result<RoleOutput>
    where
        F: Fn(usize, usize) -> Feed + Send + Sync,
    {
        match role {
            RoleAssignment::Server { machine: m } => {
                if m >= self.topo.num_machines() {
                    return Err(CoreError::Config(format!(
                        "server role names machine {m} but the cluster has {}",
                        self.topo.num_machines()
                    )));
                }
                let mut server = Server::new(
                    &self.graph,
                    &self.plan.plan,
                    self.topo.clone(),
                    endpoint,
                    self.server_config(iterations, start_iter),
                    self.config.optimizer.build(self.config.learning_rate),
                )
                .map_err(|e| CoreError::Worker(format!("server {m} init: {e}")))?;
                // A machine hosting no shards has nothing to serve; its
                // endpoint drops here, which closes its links cleanly.
                if server.num_shards() == 0 {
                    return Ok(RoleOutput::Server { shards: Vec::new() });
                }
                if let Some(rp) = restore {
                    server
                        .restore_from(&rp.store)
                        .map_err(|e| CoreError::Worker(format!("server {m} restore: {e}")))?;
                    for ((var_name, slot_name), tensor) in &rp.slots {
                        let Some(var) = self.graph.find_variable(var_name) else {
                            continue;
                        };
                        server.restore_slot(var, slot_name, tensor).map_err(|e| {
                            CoreError::Worker(format!("server {m} slot restore: {e}"))
                        })?;
                    }
                }
                server.set_faults(Arc::clone(injector));
                let shards = server
                    .run()
                    .map_err(|e| CoreError::Worker(format!("server {m}: {e}")))?;
                Ok(RoleOutput::Server { shards })
            }
            RoleAssignment::Worker { index } => {
                let worker_ranks = self.topo.worker_ranks();
                let &rank = worker_ranks.get(index).ok_or_else(|| {
                    CoreError::Config(format!(
                        "worker role names index {index} but the cluster has {} workers",
                        worker_ranks.len()
                    ))
                })?;
                let ar_vars = self.plan.ar_vars();
                let ps_vars = self.plan.ps_vars();
                let gatherv_vars = self.plan.gatherv_vars();
                let (losses, norms, compute_secs, store) = self.worker_loop(
                    endpoint,
                    rank,
                    index,
                    iterations,
                    start_iter,
                    restore,
                    injector,
                    feed_fn,
                    &ar_vars,
                    &ps_vars,
                    &gatherv_vars,
                )?;
                Ok(RoleOutput::Worker {
                    losses,
                    norms,
                    compute_secs,
                    store,
                })
            }
        }
    }

    /// Assembles the final model from a chief replica and the collected
    /// server shards: AR variables from the chief (replicas are
    /// identical), PS variables stitched per-partition. Shared by
    /// `run_attempt` and the `repro dist` artifact merge so a socket
    /// run's final model is bitwise the in-process one by construction.
    pub fn stitch_final_model(
        &self,
        chief: &VarStore,
        shard_values: Vec<((VarId, usize), Tensor)>,
    ) -> Result<HashMap<usize, Tensor>> {
        let mut final_model: HashMap<usize, Tensor> = HashMap::new();
        for var in self.plan.ar_vars() {
            final_model.insert(var.index(), chief.get(var)?.clone());
        }
        let mut shards_by_var: HashMap<usize, Vec<(usize, Tensor)>> = HashMap::new();
        for ((var, part), value) in shard_values {
            shards_by_var
                .entry(var.index())
                .or_default()
                .push((part, value));
        }
        for (var_idx, mut parts) in shards_by_var {
            parts.sort_by_key(|(p, _)| *p);
            let var = VarId::from_index(var_idx);
            let shape = self.graph.var_def(var)?.shape.clone();
            match self.plan.plan.placement(var).map_err(CoreError::Ps)? {
                VarPlacement::PsDense { .. } => {
                    let (_, value) = parts.pop().ok_or_else(|| {
                        CoreError::Worker(format!("variable {var_idx}: no dense shard collected"))
                    })?;
                    final_model.insert(var_idx, value);
                }
                VarPlacement::PsSparse { partition, .. } => {
                    let tensors: Vec<Tensor> = parts.into_iter().map(|(_, t)| t).collect();
                    let full = partition.stitch(&tensors).map_err(CoreError::Ps)?;
                    final_model.insert(var_idx, full.reshape(shape)?);
                }
                VarPlacement::AllReduce => {}
            }
        }
        Ok(final_model)
    }

    /// The effective checkpoint/snapshot interval: `checkpoint_interval`
    /// when a checkpoint or serving-snapshot path is configured under
    /// synchronous training, else 0 (disabled). Workers and servers must
    /// agree on this value — the chief sends one `FetchShard` per shard
    /// at every boundary iteration and servers count those messages into
    /// their synchronization barrier.
    fn ckpt_interval(&self) -> usize {
        crate::protocheck::effective_checkpoint_interval(&self.config)
    }

    /// Publishes the chief's persistence artifacts at the end of
    /// iteration `iter`: a full training checkpoint (when
    /// `checkpoint_path` is set) and/or a weights-only serving snapshot
    /// (when `snapshot_path` is set). One consistent fetch pass feeds
    /// both — PS variables are fetched post-update from their server
    /// shards, AllReduce variables come from the chief's own replica
    /// (identical on every worker) — so the two artifacts always agree,
    /// and the per-boundary `FetchShard` message count the servers fold
    /// into their barrier is unchanged whether one or both are written.
    ///
    /// For the checkpoint, optimizer slot state rides along: AllReduce
    /// slots from the chief's own `optimizer` (replicas are identical),
    /// PS slots piggybacked on the shard fetches and stitched like the
    /// values. The snapshot takes weights only.
    fn publish_artifacts(
        &self,
        endpoint: &mut Endpoint,
        client: &mut PsClient,
        local: &VarStore,
        optimizer: &dyn parallax_dataflow::Optimizer,
        iter: usize,
    ) -> Result<()> {
        let mut store = local.clone();
        let mut slots = checkpoint::SlotMap::new();
        let kind = optimizer.state_name();
        for var in self.graph.var_ids() {
            let def_shape = self.graph.var_def(var)?.shape.clone();
            let name = self.graph.var_def(var)?.name.clone();
            match client
                .fetch_var_with_state(endpoint, var)
                .map_err(CoreError::Ps)?
            {
                Some((fetched, state)) => {
                    *store.get_mut(var)? = fetched.reshape(def_shape.clone())?;
                    if let (Some(kind), Some(state)) = (kind, state) {
                        slots.insert((name, kind.to_string()), state.reshape(def_shape)?);
                    }
                }
                None => {
                    // AllReduce variable: slot state lives in the
                    // chief's own optimizer.
                    if let (Some(kind), Some(state)) =
                        (kind, optimizer.export_slot(var.index() as u64))
                    {
                        slots.insert((name, kind.to_string()), state.clone());
                    }
                }
            }
        }
        let step = (iter + 1) as u64;
        if let Some(path) = self.config.checkpoint_path.as_ref() {
            let _span = parallax_trace::span(parallax_trace::SpanCat::Phase, "checkpoint.save");
            let state = TrainState {
                step,
                cursors: vec![step; self.topo.num_workers()],
            };
            checkpoint::save_full(&self.graph, &store, &state, &slots, path)?;
        }
        if let Some(path) = self.config.snapshot_path.as_ref() {
            crate::snapshot::save(&self.graph, &store, step, path)?;
        }
        Ok(())
    }

    /// One worker's training loop over iterations
    /// `start_iter..iterations`, replica state seeded from `restore`
    /// when resuming from a checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop<F>(
        &self,
        endpoint: Endpoint,
        rank: usize,
        widx: usize,
        iterations: usize,
        start_iter: usize,
        restore: Option<&RestorePoint>,
        injector: &FaultInjector,
        feed_fn: &F,
        ar_vars: &[VarId],
        ps_vars: &[VarId],
        gatherv_vars: &[VarId],
    ) -> Result<(Vec<f32>, Vec<f32>, f64, VarStore)>
    where
        F: Fn(usize, usize) -> Feed + Send + Sync,
    {
        let workers = self.topo.num_workers();
        let worker_ranks = self.topo.worker_ranks();
        // Machine of each worker position, for the machine-blocked
        // sparse fold (worker_ranks is machine-major).
        let worker_machines: Vec<usize> = {
            let mut ms = Vec::with_capacity(workers);
            for &r in &worker_ranks {
                ms.push(self.topo.machine_of(r).map_err(CoreError::Ps)?);
            }
            ms
        };
        let is_global_chief = rank == self.topo.chief();
        let machine = self.topo.machine_of(rank).map_err(CoreError::Ps)?;
        parallax_trace::set_thread_track(
            machine as u32,
            rank as u32,
            &format!("worker{widx} (rank {rank})"),
        );
        let client = PsClient::new(Arc::new(self.plan.plan.clone()), self.topo.clone());
        // Resuming replicas start from the restored checkpoint instead of
        // the seeded initializer — bitwise what the chief saved.
        let local = match restore {
            Some(rp) => rp.store.clone(),
            None => VarStore::init(&self.graph, &mut DetRng::seed(self.config.seed)),
        };
        let mut ctx = PsWorkerContext::new(endpoint, client, local);
        let mut optimizer = self.config.optimizer.build(self.config.learning_rate);
        // Every replica applies AllReduce updates with its own optimizer
        // copy, so every replica must re-import the checkpointed slot
        // state — otherwise Momentum/Adagrad would resume from zeroed
        // slots and diverge from the uninterrupted run.
        if let (Some(rp), Some(kind)) = (restore, optimizer.state_name()) {
            for &var in ar_vars {
                let key = (self.graph.var_def(var)?.name.clone(), kind.to_string());
                if let Some(t) = rp.slots.get(&key) {
                    optimizer.import_slot(var.index() as u64, t.clone());
                }
            }
        }
        let session = Session::new(&self.graph);
        let mut losses = Vec::with_capacity(iterations - start_iter);
        let mut norms = Vec::new();
        let mut compute_secs = 0.0f64;
        let sync = self.config.synchronous;
        let ckpt_interval = self.ckpt_interval();
        // Reused across iterations so the per-node value buffer is
        // allocated once for the whole loop.
        let mut acts = parallax_dataflow::Activations::new();

        for iter in start_iter..iterations {
            parallax_trace::set_thread_iter(iter as u64);
            // Name matches `parallax_trace::export::ITERATION_SPAN` so the
            // straggler report can find per-machine iteration boundaries.
            let _iter_span = parallax_trace::span(parallax_trace::SpanCat::Phase, "iteration");
            // Fault hooks: a transient stall stretches this iteration; a
            // kill tears the worker down before it sends anything for
            // this step, exactly like a process crash at the boundary.
            if let Some(d) = injector.stall_for(rank, iter as u64) {
                let _stall =
                    parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.fault_stall");
                std::thread::sleep(d);
            }
            if injector.kill_worker_at(rank, iter as u64) {
                return Err(CoreError::Worker(format!(
                    "fault injection: worker rank {rank} killed at step {iter}"
                )));
            }
            optimizer.set_learning_rate(
                self.config
                    .lr_schedule
                    .at(self.config.learning_rate, iter as u64),
            );
            ctx.begin_iteration(iter as u64);
            let feed = feed_fn(widx, iter);
            let t0 = Instant::now();
            {
                let _fwd = parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.forward");
                session.forward_into(&feed, &mut ctx, &mut acts)?;
            }
            let grads = {
                let _bwd = parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.backward");
                backward(&self.graph, &acts, self.loss)?
            };
            // Straggler injection: stretch this machine's compute phase to
            // `slow` times its measured duration. The delay sleeps rather
            // than spins: worker threads of *different* modelled machines
            // time-share this host's cores, so a spin would steal cycles
            // from the nominal machines and slow the whole cluster instead
            // of just this one. Sleeping yields the core, which is exactly
            // what a genuinely slow peer looks like from the others' point
            // of view. Runs inside the compute timing window so
            // `compute_secs` and the traced phase spans both reflect the
            // injected heterogeneity.
            let slow = self
                .config
                .machine_slowdown
                .get(machine)
                .copied()
                .unwrap_or(1.0);
            if slow > 1.0 {
                let _straggle =
                    parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.straggle");
                let deadline = Instant::now() + t0.elapsed().mul_f64(slow - 1.0);
                let mut now = Instant::now();
                while now < deadline {
                    std::thread::sleep(deadline - now);
                    now = Instant::now();
                }
            }
            compute_secs += t0.elapsed().as_secs_f64();
            losses.push(acts.scalar(self.loss)?);
            // Everything from here to the end of the iteration is gradient
            // exchange (collectives + PS) and parameter application.
            let _exch_span = parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.exchange");

            let PsWorkerContext {
                endpoint,
                client,
                local,
            } = &mut ctx;

            // AllReduce path: dense via ring AllReduce, sparse via
            // AllGatherv; every replica applies the identical aggregate.
            let mut sq_norm = 0.0f64;
            for &var in ar_vars {
                let Some(grad) = grads.get(&var) else {
                    continue;
                };
                // Sparse gradients densify onto the ring unless this
                // variable is in pure-AR AllGatherv mode (Horovod).
                let densified;
                let grad = if grad.is_sparse() && !gatherv_vars.contains(&var) {
                    densified = Grad::Dense(grad.to_dense());
                    &densified
                } else {
                    grad
                };
                match grad {
                    Grad::Dense(t) => {
                        let mut agg = t.clone();
                        collectives::ring_allreduce_tensor_wire(
                            endpoint,
                            &worker_ranks,
                            protocol::allreduce_tag(var.index(), iter as u64),
                            &mut agg,
                            self.config.wire_format,
                        )?;
                        if self.config.average_dense {
                            // Multiply by the reciprocal, matching the
                            // server's `Grad::scale(1.0 / workers)`, so a
                            // variable moved between AR and PS averages
                            // to identical bits.
                            let inv = 1.0 / workers as f32;
                            for v in agg.data_mut() {
                                *v *= inv;
                            }
                        }
                        if self.config.trace_gradients {
                            sq_norm += agg.data().iter().map(|x| (x * x) as f64).sum::<f64>();
                        }
                        {
                            let _apply =
                                parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.apply");
                            optimizer.apply_dense(var.index() as u64, local.get_mut(var)?, &agg)?;
                        }
                    }
                    Grad::Sparse(s) => {
                        let parts = collectives::allgatherv_slices_parts_wire(
                            endpoint,
                            &worker_ranks,
                            mpi_tag(var.index(), iter as u64),
                            s.clone(),
                            self.config.wire_format,
                        )?;
                        // Canonical machine-blocked fold shared with the
                        // PS accumulators (parts arrive in worker_ranks
                        // order, which is machine-major).
                        let mut agg = parallax_tensor::IndexedSlices::coalesce_grouped(
                            &parts,
                            &worker_machines,
                        )?;
                        if self.config.average_sparse {
                            agg = agg.scale(1.0 / workers as f32);
                        }
                        if self.config.trace_gradients {
                            sq_norm += agg
                                .values()
                                .data()
                                .iter()
                                .map(|x| (x * x) as f64)
                                .sum::<f64>();
                        }
                        {
                            let _apply =
                                parallax_trace::span(parallax_trace::SpanCat::Phase, "phase.apply");
                            optimizer.apply_sparse(
                                var.index() as u64,
                                local.get_mut(var)?,
                                &agg,
                            )?;
                        }
                    }
                }
            }

            // Parameter Server path.
            for &var in ps_vars {
                let grad = grads.get(&var).ok_or_else(|| {
                    let name = self
                        .graph
                        .var_def(var)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|_| format!("#{}", var.index()));
                    CoreError::Worker(format!(
                        "PS variable '{name}' received no gradient; servers would stall"
                    ))
                })?;
                // Local aggregation is sparse-only: a dense machine
                // pre-sum would fold in the wrong association for the
                // ring-ordered dense accumulator, so dense PS gradients
                // always push per worker.
                if self.config.local_aggregation && sync && grad.is_sparse() {
                    if let Some(agg) =
                        locally_aggregate(endpoint, &self.topo, iter as u64, var, grad)
                            .map_err(CoreError::Ps)?
                    {
                        client.push(endpoint, var, &agg).map_err(CoreError::Ps)?;
                    }
                } else {
                    client.push(endpoint, var, grad).map_err(CoreError::Ps)?;
                }
            }
            if sync && self.config.chief_triggers_update && is_global_chief {
                for &var in ps_vars {
                    client.chief_update(endpoint, var).map_err(CoreError::Ps)?;
                }
            }
            if sync {
                for &var in ps_vars {
                    client
                        .await_update_done(endpoint, var)
                        .map_err(CoreError::Ps)?;
                }
            }
            // Trace reads: every worker fetches the aggregated gradients
            // the servers saved at update time (Section 5's mechanism for
            // global-norm clipping / status tracing).
            if self.config.trace_gradients {
                for &var in ps_vars {
                    for grad in client
                        .read_aggregates(endpoint, var)
                        .map_err(CoreError::Ps)?
                    {
                        let t = grad.to_dense();
                        sq_norm += t.data().iter().map(|x| (x * x) as f64).sum::<f64>();
                    }
                }
                norms.push(sq_norm.sqrt() as f32);
            }
            // Checkpoint/snapshot boundary: the chief fetches
            // post-update shard values from the servers (they hold this
            // iteration open until the fetches arrive) and writes each
            // configured artifact as one atomic file.
            if is_global_chief && ckpt_interval > 0 && (iter + 1).is_multiple_of(ckpt_interval) {
                self.publish_artifacts(endpoint, client, local, optimizer.as_ref(), iter)?;
            }
        }
        Ok((losses, norms, compute_secs, ctx.local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_range_covers_disjointly() {
        for total in [0usize, 1, 7, 48, 100] {
            for workers in [1usize, 3, 6] {
                let mut covered = 0usize;
                for w in 0..workers {
                    let r = shard_range(total, workers, w);
                    assert_eq!(r.start, covered, "contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, total, "full coverage");
            }
        }
    }

    #[test]
    fn shard_range_balances_remainders() {
        let sizes: Vec<usize> = (0..3).map(|w| shard_range(10, 3, w).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
