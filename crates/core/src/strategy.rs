//! Placement strategies: named, deterministic recipes for how every
//! variable synchronizes.
//!
//! A [`Strategy`] turns a base [`ParallaxConfig`] into the configured
//! run it stands for and plans a *verified* placement for a graph on a
//! topology (transformation + plan checks + session checks, via
//! [`crate::plancheck::build_verified_plan`]). The five fixed
//! strategies cover the paper's architecture space:
//!
//! * [`PureAllReduce`] — everything through collectives (Horovod).
//! * [`PurePs`] — naive PS: round-robin placement, unpartitioned,
//!   no local aggregation (TF-PS).
//! * [`PsLoadBalanced`] — PS with balanced placement and local
//!   aggregation, still unpartitioned.
//! * [`PsPartitioned`] — the full optimized PS: balanced placement,
//!   local aggregation, partitioned sparse variables (OptPS).
//! * [`Hybrid`] — Parallax: dense to AllReduce, sparse to the PS
//!   (Section 3.1).
//!
//! [`crate::strategize`] searches *between and beyond* these recipes by
//! pinning per-variable [`SyncDecision`]s through
//! `ParallaxConfig::decision_overrides`; its output is a sixth,
//! searched strategy whose plan goes through the same verification.
//!
//! Every strategy preserves the base config's numerics (seed, learning
//! rate, averaging flags, wire format), so with the canonical
//! aggregation order all of them — and any searched mix — produce
//! bitwise-identical weights for the same seed (the
//! `strategy_equivalence` suite).

use parallax_dataflow::{Graph, NodeId};
use parallax_ps::placement::SyncDecision;
use parallax_ps::{PlacementStrategy, PsTopology};

use crate::config::{ArchChoice, ParallaxConfig};
use crate::sparsity::SparsityProfile;
use crate::transform::DistributedPlan;
use crate::Result;

/// A placement strategy: a named, deterministic transformation of a
/// base configuration into a concrete synchronization recipe.
pub trait Strategy: Send + Sync {
    /// Stable machine-readable name (used in reports and CLI output).
    fn name(&self) -> &'static str;

    /// The configured run this strategy stands for. Implementations
    /// must preserve the base config's numerics (seed, learning rate,
    /// averaging, wire format) and may only steer placement knobs:
    /// `arch`, `placement`, `local_aggregation`, `sparse_partitions`
    /// and `decision_overrides`.
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig;

    /// Plans a verified placement for `graph` on `topo`: configure,
    /// transform, and run every static plan and session check. The
    /// result is what [`crate::runner::get_runner_with_plan`] accepts.
    fn plan(
        &self,
        graph: &Graph,
        loss: NodeId,
        profile: &SparsityProfile,
        base: &ParallaxConfig,
        topo: &PsTopology,
    ) -> Result<StrategyPlan> {
        let config = self.configure(base);
        let partitions = config
            .sparse_partitions
            .unwrap_or(topo.num_machines().max(1));
        let plan =
            crate::plancheck::build_verified_plan(graph, loss, profile, &config, topo, partitions)?;
        Ok(StrategyPlan {
            name: self.name().to_string(),
            config,
            plan,
        })
    }
}

/// A strategy's verified output: the configured run plus the checked
/// distributed plan it produced.
#[derive(Debug, Clone)]
pub struct StrategyPlan {
    /// The producing strategy's name.
    pub name: String,
    /// The fully configured run.
    pub config: ParallaxConfig,
    /// The verified distributed plan.
    pub plan: DistributedPlan,
}

impl StrategyPlan {
    /// One short label per variable naming its active strategy, in
    /// variable-index order — for topology listings and `repro check`.
    pub fn decision_labels(&self) -> Vec<String> {
        self.plan.decisions.iter().map(decision_label).collect()
    }
}

/// Short human-readable label for a synchronization decision.
pub fn decision_label(d: &SyncDecision) -> String {
    match d {
        SyncDecision::AllReduce => "AllReduce".to_string(),
        SyncDecision::PsDense => "PS/dense".to_string(),
        SyncDecision::PsSparse { partitions } => format!("PS/sparse(p={partitions})"),
    }
}

/// Everything through collectives: AllReduce for dense gradients,
/// AllGatherv for sparse ones (the Horovod baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PureAllReduce;

impl Strategy for PureAllReduce {
    fn name(&self) -> &'static str {
        "pure_allreduce"
    }
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig {
        ParallaxConfig {
            arch: ArchChoice::ArOnly,
            local_aggregation: false,
            decision_overrides: Vec::new(),
            ..base.clone()
        }
    }
}

/// Naive Parameter Server: round-robin placement, unpartitioned
/// variables, no local aggregation (the TF-PS baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PurePs;

impl Strategy for PurePs {
    fn name(&self) -> &'static str {
        "pure_ps"
    }
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig {
        ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: false },
            placement: PlacementStrategy::RoundRobin,
            local_aggregation: false,
            sparse_partitions: Some(1),
            decision_overrides: Vec::new(),
            ..base.clone()
        }
    }
}

/// Parameter Server with balanced shard placement and local
/// aggregation, but still one shard per variable.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsLoadBalanced;

impl Strategy for PsLoadBalanced {
    fn name(&self) -> &'static str {
        "ps_load_balanced"
    }
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig {
        ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: true },
            placement: PlacementStrategy::Balanced,
            local_aggregation: true,
            sparse_partitions: Some(1),
            decision_overrides: Vec::new(),
            ..base.clone()
        }
    }
}

/// The fully optimized Parameter Server: balanced placement, local
/// aggregation, and partitioned sparse variables (the OptPS row of
/// Table 4). Partition count comes from the base config
/// (`sparse_partitions`), defaulting to one shard per machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsPartitioned;

impl Strategy for PsPartitioned {
    fn name(&self) -> &'static str {
        "ps_partitioned"
    }
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig {
        ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: true },
            placement: PlacementStrategy::Balanced,
            local_aggregation: true,
            decision_overrides: Vec::new(),
            ..base.clone()
        }
    }
}

/// Parallax's hybrid: dense variables to AllReduce, sparse ones to the
/// partitioned PS, with the near-dense alpha escape (Section 3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hybrid;

impl Strategy for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }
    fn configure(&self, base: &ParallaxConfig) -> ParallaxConfig {
        ParallaxConfig {
            arch: ArchChoice::Hybrid,
            placement: PlacementStrategy::Balanced,
            local_aggregation: true,
            decision_overrides: Vec::new(),
            ..base.clone()
        }
    }
}

/// A searched strategy: a concrete configuration (usually carrying
/// `decision_overrides`) produced by [`crate::strategize`], wrapped so
/// it travels through the same [`Strategy`] interface as the fixed
/// recipes.
#[derive(Debug, Clone)]
pub struct SearchedStrategy {
    /// The configuration the search chose.
    pub config: ParallaxConfig,
}

impl Strategy for SearchedStrategy {
    fn name(&self) -> &'static str {
        "searched"
    }
    fn configure(&self, _base: &ParallaxConfig) -> ParallaxConfig {
        self.config.clone()
    }
}

/// The five fixed strategies, in a stable order (baselines first,
/// Parallax last).
pub fn fixed_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(PureAllReduce),
        Box::new(PurePs),
        Box::new(PsLoadBalanced),
        Box::new(PsPartitioned),
        Box::new(Hybrid),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::profile_from_parts;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::{VarId, VariableDef};

    fn model() -> (Graph, NodeId, SparsityProfile) {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [32, 4], Init::Glorot))
            .unwrap();
        let w = g
            .variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        let labels = g.placeholder("labels", PhKind::Ids).unwrap();
        let x = g.add(Op::Gather { table: emb, ids }).unwrap();
        let wr = g.read(w).unwrap();
        let mm = g.add(Op::MatMul(x, wr)).unwrap();
        let loss = g.add(Op::SoftmaxXent { logits: mm, labels }).unwrap();
        let profile = profile_from_parts(vec![
            (VarId::from_index(0), true, 0.25, 32, 128),
            (VarId::from_index(1), false, 1.0, 4, 12),
        ]);
        (g, loss, profile)
    }

    #[test]
    fn every_fixed_strategy_plans_and_verifies() {
        let (g, loss, profile) = model();
        let base = ParallaxConfig::default();
        let topo = PsTopology::uniform(2, 2).unwrap();
        for s in fixed_strategies() {
            let sp = s.plan(&g, loss, &profile, &base, &topo).unwrap();
            assert_eq!(sp.name, s.name());
            assert_eq!(sp.plan.decisions.len(), 2);
        }
    }

    #[test]
    fn fixed_strategies_differ_in_decisions_where_expected() {
        let (g, loss, profile) = model();
        let base = ParallaxConfig::default();
        let topo = PsTopology::uniform(2, 2).unwrap();
        let plan_of = |s: &dyn Strategy| s.plan(&g, loss, &profile, &base, &topo).unwrap();
        let ar = plan_of(&PureAllReduce);
        assert!(ar
            .plan
            .decisions
            .iter()
            .all(|d| matches!(d, SyncDecision::AllReduce)));
        let ps = plan_of(&PurePs);
        assert!(matches!(
            ps.plan.decisions[0],
            SyncDecision::PsSparse { partitions: 1 }
        ));
        assert!(matches!(ps.plan.decisions[1], SyncDecision::PsDense));
        assert!(!ps.config.local_aggregation);
        let part = plan_of(&PsPartitioned);
        assert!(matches!(
            part.plan.decisions[0],
            SyncDecision::PsSparse { partitions: 2 }
        ));
        let hy = plan_of(&Hybrid);
        assert!(matches!(
            hy.plan.decisions[0],
            SyncDecision::PsSparse { .. }
        ));
        assert!(matches!(hy.plan.decisions[1], SyncDecision::AllReduce));
    }

    #[test]
    fn strategies_preserve_base_numerics() {
        let base = ParallaxConfig {
            seed: 77,
            learning_rate: 0.05,
            average_dense: false,
            average_sparse: false,
            ..ParallaxConfig::default()
        };
        for s in fixed_strategies() {
            let c = s.configure(&base);
            assert_eq!(c.seed, 77, "{}", s.name());
            assert_eq!(c.learning_rate, 0.05, "{}", s.name());
            assert!(!c.average_dense, "{}", s.name());
            assert!(!c.average_sparse, "{}", s.name());
            assert!(c.decision_overrides.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn decision_labels_render() {
        assert_eq!(decision_label(&SyncDecision::AllReduce), "AllReduce");
        assert_eq!(decision_label(&SyncDecision::PsDense), "PS/dense");
        assert_eq!(
            decision_label(&SyncDecision::PsSparse { partitions: 8 }),
            "PS/sparse(p=8)"
        );
    }
}
