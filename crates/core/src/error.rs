//! Core errors.

use std::fmt;

use parallax_comm::CommError;
use parallax_dataflow::DataflowError;
use parallax_ps::PsError;
use parallax_tensor::TensorError;

/// Errors from planning, transformation and distributed execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying tensor failure.
    Tensor(TensorError),
    /// Underlying dataflow failure.
    Dataflow(DataflowError),
    /// Underlying transport failure.
    Comm(CommError),
    /// Underlying Parameter Server failure.
    Ps(PsError),
    /// Invalid configuration or plan.
    Config(String),
    /// A worker or server thread failed.
    Worker(String),
    /// The static plan verifier found errors; the rendered report.
    Verify(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor: {e}"),
            CoreError::Dataflow(e) => write!(f, "dataflow: {e}"),
            CoreError::Comm(e) => write!(f, "comm: {e}"),
            CoreError::Ps(e) => write!(f, "ps: {e}"),
            CoreError::Config(msg) => write!(f, "config: {msg}"),
            CoreError::Worker(msg) => write!(f, "worker: {msg}"),
            CoreError::Verify(report) => write!(f, "plan verification failed:\n{report}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<DataflowError> for CoreError {
    fn from(e: DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<CommError> for CoreError {
    fn from(e: CommError) -> Self {
        CoreError::Comm(e)
    }
}

impl From<PsError> for CoreError {
    fn from(e: PsError) -> Self {
        CoreError::Ps(e)
    }
}
