//! The `ParallaxConfig` object (Figure 3's optional configuration).

use parallax_dataflow::optimizer::{Adagrad, LrSchedule, Momentum, Sgd};
use parallax_dataflow::Optimizer;
use parallax_ps::placement::SyncDecision;
use parallax_ps::PlacementStrategy;

/// A non-fatal advisory produced when a [`ParallaxConfig`] is
/// interpreted for one role of a multi-process (`repro dist`) job.
/// Warnings never change behavior — they name behavior that differs
/// from what a single-process reading of the config might suggest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigWarning {
    /// Persistence paths are configured but this role is not the global
    /// chief. The paths deliberately stay in the config — every role
    /// must derive the same effective checkpoint interval (the servers
    /// fold the chief's per-boundary fetches into their synchronization
    /// barrier), and recovery respawns read the chief's checkpoint —
    /// but this role never writes either artifact.
    NonChiefPersistence {
        /// The role the config was interpreted for (e.g. `worker:1`).
        role: String,
        /// The configured paths this role will read but never write.
        paths: Vec<String>,
    },
}

impl std::fmt::Display for ConfigWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigWarning::NonChiefPersistence { role, paths } => write!(
                f,
                "role {role} is not the chief: {} will be read for recovery \
                 but only the chief publishes",
                paths.join(", ")
            ),
        }
    }
}

/// Which update rule replicas and servers apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// SGD with classical momentum.
    Momentum {
        /// Momentum coefficient.
        mu: f32,
    },
    /// Adagrad (per-element adaptive rates; common for embeddings).
    Adagrad,
}

impl OptimizerKind {
    /// Instantiates the optimizer at a learning rate.
    pub fn build(&self, lr: f32) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgd => Box::new(Sgd::new(lr)),
            OptimizerKind::Momentum { mu } => Box::new(Momentum::new(lr, mu)),
            OptimizerKind::Adagrad => Box::new(Adagrad::new(lr)),
        }
    }
}

/// Which training architecture the runner composes.
///
/// `Hybrid` is Parallax; the others exist as the paper's baselines
/// (Table 4): `ArOnly` is Horovod, `PsOnly { optimized: false }` is
/// TF-PS (NaivePS), `PsOnly { optimized: true }` is OptPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchChoice {
    /// AllReduce for dense variables, Parameter Server for sparse ones.
    Hybrid,
    /// Everything through the Parameter Server.
    PsOnly {
        /// Apply local aggregation and balanced placement.
        optimized: bool,
    },
    /// Everything through collectives (AllReduce + AllGatherv).
    ArOnly,
}

/// Extra arguments to `get_runner` (the paper's `ParallaxConfig`):
/// aggregation methods per variable type, local aggregation, and the
/// knobs this reproduction adds for experiments.
#[derive(Debug, Clone)]
pub struct ParallaxConfig {
    /// Seed for deterministic initialization and replica consistency.
    pub seed: u64,
    /// Learning rate used by replicas and servers.
    pub learning_rate: f32,
    /// The update rule.
    pub optimizer: OptimizerKind,
    /// The learning-rate schedule.
    pub lr_schedule: LrSchedule,
    /// Synchronous training (the default); asynchronous training applies
    /// each push immediately (PS architectures only).
    pub synchronous: bool,
    /// Let workers read back aggregated gradients (`RunReport` then
    /// carries per-iteration global gradient norms).
    pub trace_gradients: bool,
    /// Average (rather than sum) dense gradients across GPUs.
    pub average_dense: bool,
    /// Average (rather than sum) sparse gradients across GPUs.
    pub average_sparse: bool,
    /// Aggregate gradients within each machine before pushing.
    pub local_aggregation: bool,
    /// Gate server updates on the chief worker's trigger.
    pub chief_triggers_update: bool,
    /// Server placement strategy.
    pub placement: PlacementStrategy,
    /// Architecture selection.
    pub arch: ArchChoice,
    /// Fixed sparse partition count; `None` runs the partition search.
    pub sparse_partitions: Option<usize>,
    /// Per-variable decision overrides applied *after* the architecture
    /// rule: `(variable index, decision)` pairs — the mechanism
    /// placement strategies and the plan search use to pin individual
    /// variables. Validated in [`crate::hybrid::decide`]: indices must
    /// be in range and unique; a dense variable may only move between
    /// `AllReduce` and `PsDense` (hosting a dense variable on the PS
    /// additionally requires `average_dense == average_sparse`, because
    /// the server applies one averaging flag to everything it hosts);
    /// a sparse variable may use `PsSparse` with at least one partition
    /// or `AllReduce` (densify, the alpha-escape path).
    pub decision_overrides: Vec<(usize, SyncDecision)>,
    /// Per-partitioner-group overrides: `group_partitions[g]` fixes the
    /// count for variables declared in partitioner group `g` (the
    /// paper's "multiple partitioners ... applied independently" for
    /// different granularities). Groups beyond the vector's length — and
    /// ungrouped sparse variables — use `sparse_partitions`.
    pub group_partitions: Vec<usize>,
    /// Sparse variables with estimated `alpha` at or above this are
    /// treated as dense and AllReduced (Section 3.1's near-dense case).
    pub alpha_dense_threshold: f64,
    /// Threads the shared compute-kernel pool may use (including the
    /// calling thread). `None` keeps the pool's default (the machine's
    /// available parallelism); `Some(1)` forces fully serial kernels.
    /// Results are bitwise identical for every setting.
    pub compute_threads: Option<usize>,
    /// How gradient-exchange payloads are encoded on the wire
    /// (`WireFormat::F32` — the default — moves raw f32; `F16`/`Bf16`
    /// halve dense AllReduce bytes and varint-pack sparse AllGatherv
    /// indices). The static traffic predictor, the trace ledger, and
    /// the measured accounting all use the encoded sizes, so the
    /// byte-equality crosschecks stay exact under every format.
    /// Parameter-server traffic is never compressed.
    pub wire_format: parallax_comm::WireFormat,
    /// Row-parallelism for parameter-server applies: the minimum number
    /// of parameter rows per pool chunk when a server shards an
    /// optimizer apply across the shared compute pool. `0` disables
    /// sharding (fully serial applies, the pre-compression behavior).
    /// Results are bitwise identical for every setting; only `ps.wait`
    /// changes. See `parallax_cluster::PsQueueModel::recommended_apply_rows`
    /// for a queue-model-driven choice.
    pub ps_apply_min_rows: usize,
    /// Per-machine straggler injection: machine `m`'s workers busy-wait
    /// after each backward pass so their compute phase takes
    /// `machine_slowdown[m]` times as long as it measured. Machines past
    /// the end of the vector (and an empty vector, the default) run at
    /// nominal speed; every entry must be finite and `>= 1.0`. Numerics
    /// are untouched — only wall-clock timing changes — so heterogeneous
    /// clusters can be emulated on homogeneous hardware and checked
    /// against the `IterationSim` straggler model.
    pub machine_slowdown: Vec<f64>,
    /// Checkpoint file path (the paper's "file path to save trained
    /// variables"). `None` (the default) disables checkpointing and
    /// recovery.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Iterations between checkpoints: the chief saves after every
    /// iteration where `(iter + 1) % interval == 0`. Must be `>= 1` when
    /// `checkpoint_path` is set.
    pub checkpoint_interval: usize,
    /// Serving-snapshot path. When set, the chief also publishes a
    /// weights-only, mmap-friendly `PLXSNAP1` artifact (atomically, via
    /// rename) at every checkpoint boundary — the online-serving mode:
    /// a `parallax-serve` engine watching this path refreshes between
    /// batches and never lags training by more than
    /// `checkpoint_interval` steps. Uses `checkpoint_interval` as its
    /// cadence and may be set with or without `checkpoint_path`.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Deterministic fault-injection plan evaluated by the transport and
    /// the runner's worker/server loops. Empty (the default) injects
    /// nothing.
    pub fault_plan: parallax_fault::FaultPlan,
    /// Failure-detection deadline: how long any blocking receive may
    /// wait before surfacing `PeerTimeout`/`PeerDead`. `None` keeps the
    /// transport default (30 s).
    pub recv_deadline: Option<std::time::Duration>,
    /// How many detected failures the runner may recover from (restore
    /// the last checkpoint and resume) before giving up and returning
    /// the error. Recovery requires `checkpoint_path`.
    pub max_recoveries: usize,
    /// Install the session-machine validator
    /// ([`parallax_comm::protocheck::SessionValidator`]) on every
    /// endpoint, so any routed message outside the verified plan's
    /// protocol surfaces as a typed `CommError::Protocol` at the sender.
    /// Debug builds always install it; this flag extends the runtime
    /// assertion to release builds (`repro protocheck` / `repro check`).
    pub validate_protocol: bool,
}

impl Default for ParallaxConfig {
    fn default() -> Self {
        ParallaxConfig {
            seed: 0,
            learning_rate: 0.1,
            optimizer: OptimizerKind::Sgd,
            lr_schedule: LrSchedule::Constant,
            synchronous: true,
            trace_gradients: false,
            average_dense: true,
            average_sparse: true,
            local_aggregation: true,
            chief_triggers_update: true,
            placement: PlacementStrategy::Balanced,
            arch: ArchChoice::Hybrid,
            sparse_partitions: None,
            decision_overrides: Vec::new(),
            group_partitions: Vec::new(),
            alpha_dense_threshold: 0.95,
            compute_threads: None,
            wire_format: parallax_comm::WireFormat::F32,
            ps_apply_min_rows: 64,
            machine_slowdown: Vec::new(),
            checkpoint_path: None,
            checkpoint_interval: 0,
            snapshot_path: None,
            fault_plan: parallax_fault::FaultPlan::new(),
            recv_deadline: None,
            max_recoveries: 1,
            validate_protocol: false,
        }
    }
}

impl ParallaxConfig {
    /// The Horovod baseline: pure collectives.
    pub fn horovod_baseline() -> Self {
        ParallaxConfig {
            arch: ArchChoice::ArOnly,
            local_aggregation: false,
            ..Self::default()
        }
    }

    /// The TF-PS baseline: naive Parameter Server.
    pub fn tf_ps_baseline() -> Self {
        ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: false },
            local_aggregation: false,
            placement: PlacementStrategy::RoundRobin,
            ..Self::default()
        }
    }

    /// Parallax's optimized PS (no hybrid), the OptPS row of Table 4.
    pub fn opt_ps() -> Self {
        ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: true },
            ..Self::default()
        }
    }

    /// Advisories for executing this config as one role of a
    /// multi-process job. `role` is the role's display name (e.g.
    /// `worker:1` or `server:0`); `is_chief` is whether that role is
    /// the global chief. Non-chief roles with persistence paths get a
    /// [`ConfigWarning::NonChiefPersistence`]: publishing is
    /// suppressed at the role level, never by stripping the paths (the
    /// checkpoint interval derived from them feeds the servers' fetch
    /// barrier, so removing them would desynchronize the protocol).
    pub fn role_warnings(&self, is_chief: bool, role: &str) -> Vec<ConfigWarning> {
        let mut out = Vec::new();
        if !is_chief {
            let mut paths = Vec::new();
            if let Some(p) = &self.checkpoint_path {
                paths.push(format!("checkpoint_path={}", p.display()));
            }
            if let Some(p) = &self.snapshot_path {
                paths.push(format!("snapshot_path={}", p.display()));
            }
            if !paths.is_empty() {
                out.push(ConfigWarning::NonChiefPersistence {
                    role: role.to_string(),
                    paths,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_kinds_build() {
        use parallax_tensor::Tensor;
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::Momentum { mu: 0.9 },
            OptimizerKind::Adagrad,
        ] {
            let mut opt = kind.build(0.1);
            let mut p = Tensor::zeros([2]);
            opt.apply_dense(0, &mut p, &Tensor::full([2], 1.0)).unwrap();
            assert!(p.data()[0] < 0.0, "{kind:?} moved the parameter");
        }
    }

    #[test]
    fn non_chief_roles_warn_about_persistence_paths() {
        let mut config = ParallaxConfig {
            checkpoint_path: Some("ckpt.bin".into()),
            snapshot_path: Some("snap.bin".into()),
            checkpoint_interval: 2,
            ..ParallaxConfig::default()
        };
        // The chief publishes; no warning.
        assert!(config.role_warnings(true, "chief").is_empty());
        // Non-chief roles get exactly one typed warning naming both paths.
        let warnings = config.role_warnings(false, "worker:1");
        assert_eq!(warnings.len(), 1);
        match &warnings[0] {
            ConfigWarning::NonChiefPersistence { role, paths } => {
                assert_eq!(role, "worker:1");
                assert_eq!(paths.len(), 2);
                assert!(paths[0].contains("ckpt.bin"), "{paths:?}");
            }
        }
        assert!(warnings[0].to_string().contains("only the chief publishes"));
        // No persistence configured: nothing to warn about.
        config.checkpoint_path = None;
        config.snapshot_path = None;
        assert!(config.role_warnings(false, "server:0").is_empty());
    }

    #[test]
    fn baselines_compose_expected_knobs() {
        let horovod = ParallaxConfig::horovod_baseline();
        assert_eq!(horovod.arch, ArchChoice::ArOnly);
        let tfps = ParallaxConfig::tf_ps_baseline();
        assert_eq!(tfps.arch, ArchChoice::PsOnly { optimized: false });
        assert!(!tfps.local_aggregation);
        assert_eq!(tfps.placement, PlacementStrategy::RoundRobin);
        let opt = ParallaxConfig::opt_ps();
        assert!(opt.local_aggregation);
        assert_eq!(ParallaxConfig::default().arch, ArchChoice::Hybrid);
    }
}
