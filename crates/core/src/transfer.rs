//! Network-transfer analysis (Table 3) and its multi-GPU generalization.
//!
//! The closed forms in [`table3_one_var`] / [`table3_m_vars`] are the
//! paper's exact expressions (one worker per machine, Figure 2). The
//! `*_traffic` functions generalize them to `G` workers per machine —
//! what the real system (and our executed mode) actually moves — and
//! are the inputs to the analytic throughput engine.
//!
//! Conventions: `w` is a variable's dense byte size, `alpha` the
//! per-worker access ratio, `n` machines, `g` GPUs per machine,
//! `W = n * g` total workers. Loads are *per machine per iteration*.

/// Variable kind for the closed forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// All elements accessed each iteration.
    Dense,
    /// An `alpha` fraction of rows accessed each iteration.
    Sparse,
}

/// Synchronization architecture for the closed forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Parameter Server.
    Ps,
    /// AllReduce / AllGatherv collectives.
    Ar,
}

/// # Examples
///
/// ```
/// use parallax_core::transfer::{table3_one_var, Arch, VarKind};
/// // A sparse variable costs the same under PS and AR for one machine...
/// let ps = table3_one_var(VarKind::Sparse, Arch::Ps, 4e6, 0.01, 8.0);
/// let ar = table3_one_var(VarKind::Sparse, Arch::Ar, 4e6, 0.01, 8.0);
/// assert_eq!(ps, ar);
/// // ...while a dense variable's PS host moves ~N/2 times AR's load.
/// let ps = table3_one_var(VarKind::Dense, Arch::Ps, 4e6, 1.0, 8.0);
/// let ar = table3_one_var(VarKind::Dense, Arch::Ar, 4e6, 1.0, 8.0);
/// assert!(ps / ar > 3.9);
/// ```
/// Table 3, "One Variable" column: bytes per machine per iteration for a
/// single variable (for PS, the load of the machine hosting it).
pub fn table3_one_var(kind: VarKind, arch: Arch, w: f64, alpha: f64, n: f64) -> f64 {
    match (kind, arch) {
        (VarKind::Dense, Arch::Ps) => 2.0 * w * (n - 1.0),
        (VarKind::Dense, Arch::Ar) => 4.0 * w * (n - 1.0) / n,
        (VarKind::Sparse, Arch::Ps) => 2.0 * alpha * w * (n - 1.0),
        (VarKind::Sparse, Arch::Ar) => 2.0 * alpha * w * (n - 1.0),
    }
}

/// Table 3, "m Variables" column: bytes per machine per iteration for
/// `m` equally sized variables distributed evenly across servers.
pub fn table3_m_vars(kind: VarKind, arch: Arch, w: f64, alpha: f64, n: f64, m: f64) -> f64 {
    match (kind, arch) {
        (VarKind::Dense, Arch::Ps) => 4.0 * w * m * (n - 1.0) / n,
        (VarKind::Dense, Arch::Ar) => 4.0 * w * m * (n - 1.0) / n,
        (VarKind::Sparse, Arch::Ps) => 4.0 * alpha * w * m * (n - 1.0) / n,
        (VarKind::Sparse, Arch::Ar) => 2.0 * alpha * w * m * (n - 1.0),
    }
}

/// Per-machine traffic contribution of one variable: bytes out, bytes
/// in, and inter-machine messages on the machine's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VarTraffic {
    /// Bytes the machine sends onto the network.
    pub out: f64,
    /// Bytes the machine receives from the network.
    pub inb: f64,
    /// Bytes moved within the machine (PCIe hops between local GPUs and
    /// between local workers and the local server).
    pub intra: f64,
    /// Inter-machine messages charged to the machine.
    pub msgs: f64,
}

impl VarTraffic {
    /// Adds another contribution.
    pub fn add(&mut self, other: VarTraffic) {
        self.out += other.out;
        self.inb += other.inb;
        self.intra += other.intra;
        self.msgs += other.msgs;
    }

    /// Scales the contribution (e.g. by a variable count).
    pub fn scaled(self, k: f64) -> VarTraffic {
        VarTraffic {
            out: self.out * k,
            inb: self.inb * k,
            intra: self.intra * k,
            msgs: self.msgs * k,
        }
    }
}

/// The machine-level access ratio: the union of `g` workers' row sets,
/// under an independent-draws approximation — what a local chief
/// actually pushes after coalescing (Section 4.3's local aggregation).
pub fn alpha_machine(alpha: f64, g: f64) -> f64 {
    (1.0 - (1.0 - alpha).powf(g)).clamp(0.0, 1.0)
}

/// Ring AllReduce of one dense variable over `n*g` workers laid out
/// machine-major: each machine's boundary is crossed once per direction
/// per step, moving `w/W` bytes, for `2(W-1)` steps.
pub fn ar_dense_traffic(w: f64, n: f64, g: f64) -> VarTraffic {
    let workers = n * g;
    if workers <= 1.0 {
        return VarTraffic::default();
    }
    // Per step each worker forwards w/W; within a machine g-1 of the g
    // ring hops are intra-node, one crosses the boundary.
    let per_step = w / workers;
    let steps = 2.0 * (workers - 1.0);
    let bytes = if n > 1.0 { steps * per_step } else { 0.0 };
    let intra = steps * per_step * (g - 1.0);
    VarTraffic {
        out: bytes,
        inb: bytes,
        intra,
        msgs: if n > 1.0 { steps } else { 0.0 },
    }
}

/// Ring AllGatherv of one sparse variable's gradient. Gradients are
/// concatenated, not deduplicated, so each worker's contribution is its
/// *raw* row count (`raw_frac * w` bytes, `raw_frac = raw_rows / rows`),
/// and it circulates past every other worker: `(W-1)` parts cross each
/// machine boundary.
pub fn ar_sparse_traffic(w: f64, raw_frac: f64, n: f64, g: f64) -> VarTraffic {
    let workers = n * g;
    if workers <= 1.0 {
        return VarTraffic::default();
    }
    let steps = workers - 1.0;
    let part = raw_frac * w;
    let bytes = if n > 1.0 { steps * part } else { 0.0 };
    let intra = steps * part * (g - 1.0);
    VarTraffic {
        out: bytes,
        inb: bytes,
        intra,
        msgs: if n > 1.0 { steps } else { 0.0 },
    }
}

/// PS traffic for one dense variable: `(host, other)` loads for the
/// machine hosting it and for each machine that does not.
pub fn ps_dense_traffic(w: f64, n: f64, g: f64, local_agg: bool) -> (VarTraffic, VarTraffic) {
    // Local workers exchange with their colocated server over PCIe.
    let local_intra = g * w * 2.0;
    if n <= 1.0 {
        let host = VarTraffic {
            intra: local_intra,
            ..VarTraffic::default()
        };
        return (host, VarTraffic::default());
    }
    let remote_workers = (n - 1.0) * g;
    // Pull responses to every remote worker.
    let host_out = w * remote_workers;
    // Pushes: every remote worker, or one local chief per remote machine.
    let push_senders = if local_agg { n - 1.0 } else { remote_workers };
    let host_in = w * push_senders;
    // Messages model the server's per-request handling: the hosting
    // machine's server processes one pull request and one update-done
    // notification per worker plus one push per pusher, all through one
    // RPC endpoint.
    let workers = n * g;
    let host_msgs = 2.0 * workers + (if local_agg { n } else { workers });
    let host = VarTraffic {
        out: host_out,
        inb: host_in,
        intra: local_intra,
        msgs: host_msgs,
    };
    // A non-hosting machine: its g workers each pull and push (or its
    // chief pushes once), plus local aggregation traffic within it.
    let other_push = if local_agg { 1.0 } else { g };
    let other = VarTraffic {
        out: w * other_push,
        inb: w * g,
        intra: if local_agg { (g - 1.0) * w } else { 0.0 },
        msgs: 3.0,
    };
    (host, other)
}

/// Combined pull-side and push-side traffic for one sparse PS variable.
///
/// The two sides ride different fast paths in practice: pull responses
/// are plain row-block tensors (cheap serialization), while pushes carry
/// `IndexedSlices` whose per-row index handling is the slow path — the
/// iteration-by-index cost the paper attributes to sparse aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PsSparseTraffic {
    /// Pull requests/responses plus update notifications.
    pub pull: VarTraffic,
    /// Gradient pushes.
    pub push: VarTraffic,
}

impl PsSparseTraffic {
    /// Total bytes out + in across both sides.
    pub fn total_bytes(&self) -> f64 {
        self.pull.out + self.pull.inb + self.push.out + self.push.inb
    }
}

/// PS traffic for one sparse variable partitioned into `p` parts spread
/// evenly over all `n` machines. Hosting is symmetric, so one load
/// applies to every machine.
///
/// Pulls move `alpha * w` bytes per worker (servers gather only the
/// distinct rows a worker needs). Pushes move `raw_frac * w` bytes per
/// worker — the gradient's raw batch rows, duplicates included — unless
/// local aggregation coalesces each machine's pushes first, shrinking
/// them to the machine-level distinct set (`alpha_machine * w`).
pub fn ps_sparse_traffic(
    w: f64,
    alpha: f64,
    raw_frac: f64,
    n: f64,
    g: f64,
    p: f64,
    local_agg: bool,
) -> PsSparseTraffic {
    let a_m = alpha_machine(alpha, g);
    let push_frac = raw_frac.max(alpha);
    let workers = n * g;
    let hosted = (p / n.max(1.0)).max(1.0);
    let pushers = if local_agg { n } else { workers };
    if n <= 1.0 {
        return PsSparseTraffic {
            pull: VarTraffic {
                intra: g * alpha * w,
                msgs: hosted * 2.0 * workers,
                ..VarTraffic::default()
            },
            push: VarTraffic {
                intra: g * push_frac * w,
                msgs: hosted * pushers,
                ..VarTraffic::default()
            },
        };
    }
    let remote_workers = (n - 1.0) * g;
    // Pull side: this machine hosts 1/n of the rows and serves each
    // remote worker's alpha share; its own g workers pull the remote
    // (n-1)/n share. Every worker requests every partition, and each
    // shard notifies every worker when its update lands — the message
    // load that grows with P (Eq. 1's th2 latency half).
    let pull = VarTraffic {
        out: alpha * w * remote_workers / n,
        inb: g * alpha * w * (n - 1.0) / n,
        intra: g * alpha * w / n,
        msgs: hosted * 2.0 * workers,
    };
    // Push side: raw gradients inbound from remote pushers, this
    // machine's (aggregated or raw) gradients outbound.
    let (push_in, push_out) = if local_agg {
        (a_m * w * (n - 1.0) / n, a_m * w * (n - 1.0) / n)
    } else {
        (
            push_frac * w * remote_workers / n,
            g * push_frac * w * (n - 1.0) / n,
        )
    };
    let push_intra = g * push_frac * w / n
        + if local_agg {
            (g - 1.0) * push_frac * w
        } else {
            0.0
        };
    let push = VarTraffic {
        out: push_out,
        inb: push_in,
        intra: push_intra,
        msgs: hosted * pushers,
    };
    PsSparseTraffic { pull, push }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 8.0;
    const W: f64 = 4.0e6; // 1M-element variable.

    #[test]
    fn table3_matches_paper_rows() {
        let a = 0.01;
        assert_eq!(
            table3_one_var(VarKind::Dense, Arch::Ps, W, a, N),
            2.0 * W * 7.0
        );
        assert_eq!(
            table3_one_var(VarKind::Dense, Arch::Ar, W, a, N),
            4.0 * W * 7.0 / 8.0
        );
        assert_eq!(
            table3_one_var(VarKind::Sparse, Arch::Ps, W, a, N),
            2.0 * a * W * 7.0
        );
        assert_eq!(
            table3_one_var(VarKind::Sparse, Arch::Ps, W, a, N),
            table3_one_var(VarKind::Sparse, Arch::Ar, W, a, N),
        );
        let m = 16.0;
        assert_eq!(
            table3_m_vars(VarKind::Dense, Arch::Ps, W, a, N, m),
            table3_m_vars(VarKind::Dense, Arch::Ar, W, a, N, m),
        );
        // Sparse m vars: AR costs N/2 times more than PS.
        let ps = table3_m_vars(VarKind::Sparse, Arch::Ps, W, a, N, m);
        let ar = table3_m_vars(VarKind::Sparse, Arch::Ar, W, a, N, m);
        assert!((ar / ps - N / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ps_dense_is_asymmetric_ar_is_not() {
        let (host, other) = ps_dense_traffic(W, N, 1.0, false);
        assert!(
            host.out > other.out * (N - 2.0),
            "hot server: {host:?} vs {other:?}"
        );
        let ar = ar_dense_traffic(W, N, 1.0);
        // AR per-machine load is strictly smaller than the PS host's.
        assert!(ar.out + ar.inb < host.out + host.inb);
    }

    #[test]
    fn g1_reduces_to_table3() {
        // One worker per machine: generalized formulas equal Table 3.
        let (host, _) = ps_dense_traffic(W, N, 1.0, false);
        assert!(
            (host.out + host.inb - table3_one_var(VarKind::Dense, Arch::Ps, W, 1.0, N)).abs()
                < 1e-6
        );
        let ar = ar_dense_traffic(W, N, 1.0);
        // 2 w (W-1)/W out + same in ~ 4 w (N-1)/N with W == N.
        assert!(
            (ar.out + ar.inb - table3_one_var(VarKind::Dense, Arch::Ar, W, 1.0, N)).abs() < 1e-6
        );
        let a = 0.05;
        let ars = ar_sparse_traffic(W, a, N, 1.0);
        assert!(
            (ars.out + ars.inb - table3_one_var(VarKind::Sparse, Arch::Ar, W, a, N)).abs() < 1e-6
        );
        let pss = ps_sparse_traffic(W, a, a, N, 1.0, N, false);
        // Summed over the symmetric machines this equals the m-vars form
        // with m = 1: 4 alpha w (N-1)/N per machine.
        assert!(
            (pss.total_bytes() - table3_m_vars(VarKind::Sparse, Arch::Ps, W, a, N, 1.0)).abs()
                < 1e-6
        );
    }

    #[test]
    fn sparse_ar_scales_with_total_workers_not_machines() {
        let a = 0.01;
        let small = ar_sparse_traffic(W, a, 2.0, 6.0);
        let large = ar_sparse_traffic(W, a, 8.0, 6.0);
        // 11 parts vs 47 parts cross each machine boundary.
        assert!((large.out / small.out - 47.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn local_aggregation_cuts_push_traffic() {
        let a = 0.02;
        let raw = 0.03; // Duplicates inflate raw pushes above alpha.
        let without = ps_sparse_traffic(W, a, raw, N, 6.0, 64.0, false);
        let with = ps_sparse_traffic(W, a, raw, N, 6.0, 64.0, true);
        assert!(with.push.inb < without.push.inb);
        assert!(with.push.out < without.push.out);
        // Pull traffic (per-worker) is unchanged.
        assert!((with.pull.out - without.pull.out).abs() < 1e-9);
    }

    #[test]
    fn alpha_machine_unions_workers() {
        assert!((alpha_machine(0.0, 6.0) - 0.0).abs() < 1e-12);
        assert!((alpha_machine(1.0, 6.0) - 1.0).abs() < 1e-12);
        let a = alpha_machine(0.1, 6.0);
        assert!(a > 0.1 && a < 0.6, "union in ({a})");
    }

    #[test]
    fn partition_count_changes_rpc_load_not_bytes() {
        let a = 0.02;
        let p64 = ps_sparse_traffic(W, a, a, N, 6.0, 64.0, false);
        let p256 = ps_sparse_traffic(W, a, a, N, 6.0, 256.0, false);
        assert!((p256.total_bytes() - p64.total_bytes()).abs() < 1e-6);
        assert!(
            (p256.pull.msgs / p64.pull.msgs - 4.0).abs() < 1e-9,
            "requests scale with P"
        );
    }

    #[test]
    fn single_machine_moves_only_intra_bytes() {
        let ar = ar_dense_traffic(W, 1.0, 6.0);
        assert_eq!(ar.out, 0.0);
        assert!(ar.intra > 0.0, "intra-machine ring still moves bytes");
        let ps = ps_sparse_traffic(W, 0.1, 0.15, 1.0, 6.0, 8.0, true);
        assert_eq!(ps.pull.out, 0.0);
        assert!(ps.pull.intra + ps.push.intra > 0.0);
        let (h, o) = ps_dense_traffic(W, 1.0, 6.0, false);
        assert_eq!(h.out, 0.0);
        assert!(h.intra > 0.0);
        assert_eq!(o, VarTraffic::default());
    }

    #[test]
    fn intra_bytes_vanish_with_one_gpu_per_machine() {
        assert_eq!(ar_dense_traffic(W, 4.0, 1.0).intra, 0.0);
        assert_eq!(ar_sparse_traffic(W, 0.1, 4.0, 1.0).intra, 0.0);
    }

    #[test]
    fn raw_pushes_exceed_distinct_pulls() {
        // Duplicated batch rows inflate pushes relative to pulls; local
        // aggregation collapses them back to the machine-distinct set.
        let alpha = 0.01;
        let raw = 0.05;
        let naive = ps_sparse_traffic(W, alpha, raw, N, 6.0, 8.0, false);
        let dedup = ps_sparse_traffic(W, alpha, alpha, N, 6.0, 8.0, false);
        assert!(naive.push.inb > dedup.push.inb);
        assert!(naive.push.out > dedup.push.out);
    }
}
