//! Sparsity analysis: variable classification and `alpha` estimation.
//!
//! A variable's *kind* (dense vs sparse) is static — decided by how the
//! graph accesses it (Section 5: TensorFlow's gradient tensor type).
//! A sparse variable's *access ratio* `alpha` — "the average ratio of
//! the number of elements actually used by a worker in one iteration to
//! the total number of elements" (Section 2.2) — is dynamic and is
//! estimated here by running sample batches through the graph's gather
//! sites.

use std::collections::{HashMap, HashSet};

use parallax_dataflow::{Feed, Graph, Op, Session, VarId, VarStore};
use parallax_tensor::DetRng;

use crate::Result;

/// Per-variable sparsity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSparsity {
    /// The variable.
    pub var: VarId,
    /// True when the variable's gradient is an `IndexedSlices`.
    pub sparse: bool,
    /// Estimated per-worker access ratio (1.0 for dense variables).
    pub alpha: f64,
    /// Average distinct rows touched per iteration (rows for dense).
    pub rows_touched: f64,
    /// Row count (dimension 0 of the variable).
    pub rows: usize,
    /// Element count.
    pub elements: usize,
}

impl VarSparsity {
    /// Row width (elements per row).
    pub fn cols(&self) -> usize {
        self.elements / self.rows.max(1)
    }
}

/// A full model sparsity profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparsityProfile {
    /// Per-variable profiles in [`VarId`] order.
    pub vars: Vec<VarSparsity>,
}

impl SparsityProfile {
    /// The model-level `alpha_model`: the element-weighted average of
    /// per-variable alphas (Table 1).
    pub fn alpha_model(&self) -> f64 {
        let total: f64 = self.vars.iter().map(|v| v.elements as f64).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.vars
            .iter()
            .map(|v| v.alpha * v.elements as f64)
            .sum::<f64>()
            / total
    }

    /// Total elements in dense and sparse variables (Table 1's columns).
    pub fn element_counts(&self) -> (usize, usize) {
        let dense = self
            .vars
            .iter()
            .filter(|v| !v.sparse)
            .map(|v| v.elements)
            .sum();
        let sparse = self
            .vars
            .iter()
            .filter(|v| v.sparse)
            .map(|v| v.elements)
            .sum();
        (dense, sparse)
    }

    /// The profile of one variable.
    pub fn of(&self, var: VarId) -> Option<&VarSparsity> {
        self.vars.get(var.index())
    }
}

/// Estimates the sparsity profile of a graph by evaluating the id inputs
/// of every `Gather` over `sample_feeds` and measuring distinct rows.
///
/// Runs the forward pass against a throwaway local store, so estimation
/// needs no cluster — exactly how Parallax samples before transforming.
pub fn estimate_profile(
    graph: &Graph,
    sample_feeds: &[Feed],
    seed: u64,
) -> Result<SparsityProfile> {
    let mut store = VarStore::init(graph, &mut DetRng::seed(seed));
    // Distinct-row counts per variable per sample.
    let mut touched: HashMap<usize, Vec<f64>> = HashMap::new();
    let session = Session::new(graph);
    for feed in sample_feeds {
        let acts = session.forward(feed, &mut store)?;
        let mut per_var: HashMap<usize, HashSet<usize>> = HashMap::new();
        for (idx, op) in graph.ops().iter().enumerate() {
            if let Op::Gather { table, ids } = op {
                let _ = idx;
                let id_list = acts.value(*ids)?.as_ids("estimate_profile")?;
                per_var
                    .entry(table.index())
                    .or_default()
                    .extend(id_list.iter().copied());
            }
        }
        for (var, rows) in per_var {
            touched.entry(var).or_default().push(rows.len() as f64);
        }
    }

    let mut vars = Vec::with_capacity(graph.variables().len());
    for var in graph.var_ids() {
        let def = graph.var_def(var)?;
        let elements = def.num_elements();
        let sparse = graph.is_sparse_variable(var);
        if sparse {
            let rows = if def.shape.rank() == 0 {
                1
            } else {
                def.shape.dim(0)
            };
            let samples = touched.get(&var.index());
            let mean_rows = samples
                .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
                .unwrap_or(0.0);
            let alpha = if rows == 0 {
                0.0
            } else {
                (mean_rows / rows as f64).min(1.0)
            };
            vars.push(VarSparsity {
                var,
                sparse,
                alpha,
                rows_touched: mean_rows,
                rows,
                elements,
            });
        } else {
            let rows = if def.shape.rank() == 0 {
                1
            } else {
                def.shape.dim(0)
            };
            vars.push(VarSparsity {
                var,
                sparse,
                alpha: 1.0,
                rows_touched: rows as f64,
                rows,
                elements,
            });
        }
    }
    Ok(SparsityProfile { vars })
}

/// Builds a profile directly from static descriptions (used at paper
/// scale where no executable graph exists).
pub fn profile_from_parts(parts: Vec<(VarId, bool, f64, usize, usize)>) -> SparsityProfile {
    let vars = parts
        .into_iter()
        .map(|(var, sparse, alpha, rows, elements)| VarSparsity {
            var,
            sparse,
            alpha,
            rows_touched: alpha * rows as f64,
            rows,
            elements,
        })
        .collect();
    SparsityProfile { vars }
}

/// A provider wrapper is unnecessary for estimation, but downstream code
/// sometimes needs the store back; expose it for reuse.
pub fn estimation_store(graph: &Graph, seed: u64) -> VarStore {
    VarStore::init(graph, &mut DetRng::seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::graph::{Init, PhKind};
    use parallax_dataflow::VariableDef;

    fn graph_with_embedding(vocab: usize) -> (Graph, VarId, VarId) {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [vocab, 4], Init::Normal(0.1)))
            .unwrap();
        let w = g
            .variable(VariableDef::new("w", [4, 2], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        let x = g.add(Op::Gather { table: emb, ids }).unwrap();
        let wr = g.read(w).unwrap();
        g.add(Op::MatMul(x, wr)).unwrap();
        (g, emb, w)
    }

    #[test]
    fn alpha_counts_distinct_rows_per_sample() {
        let (g, emb, w) = graph_with_embedding(10);
        // Two samples touching 2 and 4 distinct rows -> mean 3 -> alpha 0.3.
        let feeds = vec![
            Feed::new().with("ids", vec![1usize, 1, 2]),
            Feed::new().with("ids", vec![0usize, 3, 5, 7]),
        ];
        let profile = estimate_profile(&g, &feeds, 1).unwrap();
        let e = profile.of(emb).unwrap();
        assert!(e.sparse);
        assert!((e.alpha - 0.3).abs() < 1e-9, "alpha {}", e.alpha);
        assert!((e.rows_touched - 3.0).abs() < 1e-9);
        let d = profile.of(w).unwrap();
        assert!(!d.sparse);
        assert_eq!(d.alpha, 1.0);
    }

    #[test]
    fn alpha_model_is_element_weighted() {
        let (g, _, _) = graph_with_embedding(100);
        // emb: 400 elements at alpha 0.02 (2 rows of 100); w: 8 at 1.0.
        let feeds = vec![Feed::new().with("ids", vec![0usize, 1])];
        let profile = estimate_profile(&g, &feeds, 1).unwrap();
        let expected = (400.0 * 0.02 + 8.0 * 1.0) / 408.0;
        assert!((profile.alpha_model() - expected).abs() < 1e-9);
        let (dense, sparse) = profile.element_counts();
        assert_eq!(dense, 8);
        assert_eq!(sparse, 400);
    }

    #[test]
    fn longer_sequences_raise_alpha() {
        // The Table 6 mechanism: more words per instance -> higher alpha.
        let (g, emb, _) = graph_with_embedding(50);
        let short = vec![Feed::new().with("ids", vec![1usize, 2])];
        let long = vec![Feed::new().with("ids", (0..40usize).collect::<Vec<_>>())];
        let a_short = estimate_profile(&g, &short, 1)
            .unwrap()
            .of(emb)
            .unwrap()
            .alpha;
        let a_long = estimate_profile(&g, &long, 1)
            .unwrap()
            .of(emb)
            .unwrap()
            .alpha;
        assert!(a_long > a_short * 5.0);
    }
}
