//! Paper-scale analytic throughput engine.
//!
//! The executed mode trains real (scaled-down) models; the evaluation
//! tables, however, are about 800K-vocabulary embeddings on 48 GPUs.
//! This module drives *paper-scale workload descriptions* through the
//! very same transfer formulas ([`crate::transfer`]), server cost model
//! (`parallax-cluster`) and iteration-time simulation to produce
//! throughput for every table and figure. Absolute words/sec depend on
//! the calibrated hardware constants; the comparisons (who wins, by
//! what factor, where the crossover falls) are structural.

use parallax_cluster::{ClusterModel, IterationSim, Phase, SparseOpCost, Transport};

use crate::config::ArchChoice;
use crate::transfer;

/// A variable at paper scale.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSpec {
    /// Name (diagnostics).
    pub name: String,
    /// Total element count.
    pub elements: f64,
    /// Row width (embedding dimension; `elements` for 1-D dense).
    pub cols: f64,
    /// Per-worker access ratio (distinct rows / total rows).
    pub alpha: f64,
    /// Raw gradient rows a worker pushes per iteration (batch entries,
    /// duplicates included); 0 for dense variables.
    pub raw_rows: f64,
    /// Whether the gradient is sparse.
    pub sparse: bool,
}

impl VarSpec {
    /// A dense variable.
    pub fn dense(name: impl Into<String>, elements: f64) -> Self {
        VarSpec {
            name: name.into(),
            elements,
            cols: elements,
            alpha: 1.0,
            raw_rows: 0.0,
            sparse: false,
        }
    }

    /// A sparse (embedding-like) variable: `alpha` is the distinct-row
    /// access ratio, `raw_rows` the per-worker gradient entries before
    /// coalescing (>= alpha * rows).
    pub fn sparse(
        name: impl Into<String>,
        rows: f64,
        cols: f64,
        alpha: f64,
        raw_rows: f64,
    ) -> Self {
        VarSpec {
            name: name.into(),
            elements: rows * cols,
            cols,
            alpha,
            raw_rows: raw_rows.max(alpha * rows),
            sparse: true,
        }
    }

    /// The raw push fraction `raw_rows / rows`.
    pub fn raw_frac(&self) -> f64 {
        if self.rows() > 0.0 {
            (self.raw_rows / self.rows()).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Bytes when dense.
    pub fn bytes(&self) -> f64 {
        self.elements * 4.0
    }

    /// Row count.
    pub fn rows(&self) -> f64 {
        if self.cols > 0.0 {
            self.elements / self.cols
        } else {
            0.0
        }
    }
}

/// A paper-scale workload: the model's variables plus its compute and
/// batching characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Model name.
    pub name: String,
    /// Variables.
    pub vars: Vec<VarSpec>,
    /// Forward FLOPs per sample unit (image or word).
    pub forward_flops_per_unit: f64,
    /// Sample units processed per GPU per iteration (batch, or
    /// batch x sequence length for word models).
    pub units_per_gpu: f64,
    /// Unit name for reporting ("images" / "words").
    pub unit: &'static str,
}

impl WorkloadSpec {
    /// Total dense elements.
    pub fn dense_elements(&self) -> f64 {
        self.vars
            .iter()
            .filter(|v| !v.sparse)
            .map(|v| v.elements)
            .sum()
    }

    /// Total sparse elements.
    pub fn sparse_elements(&self) -> f64 {
        self.vars
            .iter()
            .filter(|v| v.sparse)
            .map(|v| v.elements)
            .sum()
    }

    /// Element-weighted `alpha_model` (Table 1).
    pub fn alpha_model(&self) -> f64 {
        let total: f64 = self.vars.iter().map(|v| v.elements).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.vars.iter().map(|v| v.alpha * v.elements).sum::<f64>() / total
    }
}

/// Architecture setup for an analytic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchSetup {
    /// Architecture choice.
    pub arch: ArchChoice,
    /// Per-machine local aggregation for PS variables.
    pub local_aggregation: bool,
    /// Balanced (vs round-robin) dense placement.
    pub balanced_placement: bool,
    /// Sparse variables with `alpha` at or above this go to AllReduce
    /// under `Hybrid`.
    pub alpha_dense_threshold: f64,
}

impl ArchSetup {
    /// Parallax: hybrid + local aggregation + balanced placement.
    pub fn parallax() -> Self {
        ArchSetup {
            arch: ArchChoice::Hybrid,
            local_aggregation: true,
            balanced_placement: true,
            alpha_dense_threshold: 0.95,
        }
    }

    /// TF-PS: naive Parameter Server.
    pub fn tf_ps() -> Self {
        ArchSetup {
            arch: ArchChoice::PsOnly { optimized: false },
            local_aggregation: false,
            balanced_placement: false,
            alpha_dense_threshold: 2.0,
        }
    }

    /// Parallax's optimized PS (Table 4's OptPS).
    pub fn opt_ps() -> Self {
        ArchSetup {
            arch: ArchChoice::PsOnly { optimized: true },
            local_aggregation: true,
            balanced_placement: true,
            alpha_dense_threshold: 2.0,
        }
    }

    /// Horovod: pure collectives.
    pub fn horovod() -> Self {
        ArchSetup {
            arch: ArchChoice::ArOnly,
            local_aggregation: false,
            balanced_placement: true,
            alpha_dense_threshold: 2.0,
        }
    }
}

/// The outcome of an analytic throughput evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Simulated iteration time, seconds.
    pub iteration_time: f64,
    /// Sample units per second across the cluster.
    pub throughput: f64,
    /// GPU compute seconds per iteration.
    pub compute_time: f64,
    /// Worst-machine server CPU seconds per iteration.
    pub server_cpu_time: f64,
    /// Exposed (non-overlapped) communication seconds of the worst
    /// machine.
    pub comm_time: f64,
}

/// Where each variable is synchronized under a setup.
fn routed_ps(spec: &VarSpec, setup: &ArchSetup) -> bool {
    match setup.arch {
        ArchChoice::ArOnly => false,
        ArchChoice::PsOnly { .. } => true,
        ArchChoice::Hybrid => spec.sparse && spec.alpha < setup.alpha_dense_threshold,
    }
}

/// Computes simulated throughput for a workload on `machines x gpus`
/// with `partitions` sparse partitions.
pub fn throughput(
    workload: &WorkloadSpec,
    cluster: &ClusterModel,
    machines: usize,
    gpus: usize,
    setup: &ArchSetup,
    partitions: usize,
) -> ThroughputReport {
    let n = machines as f64;
    let g = gpus as f64;
    let workers = n * g;
    let p = partitions.max(1) as f64;

    // GPU compute: all GPUs work in parallel on their own batch.
    let compute = cluster
        .gpu
        .compute_time(3.0 * workload.forward_flops_per_unit * workload.units_per_gpu);

    // A single GPU trains locally: no servers, no partitions, no
    // synchronization of any kind (the paper's 1-GPU baselines that
    // Figure 9 normalizes against).
    if machines * gpus <= 1 {
        return ThroughputReport {
            iteration_time: compute,
            throughput: workload.units_per_gpu / compute,
            compute_time: compute,
            server_cpu_time: 0.0,
            comm_time: 0.0,
        };
    }

    // Accumulate per-machine traffic by transport.
    let mut nccl = transfer::VarTraffic::default();
    let mut mpi = transfer::VarTraffic::default();
    let mut grpc_sym = transfer::VarTraffic::default(); // Dense PS symmetric share.
    let mut grpc_sparse = transfer::VarTraffic::default(); // Sparse PS load.
                                                           // Dense PS placement: host loads per machine (asymmetric).
    let mut dense_host_loads: Vec<(f64, transfer::VarTraffic, transfer::VarTraffic)> = Vec::new();
    let mut server_cpu = 0.0f64;

    for var in &workload.vars {
        let w = var.bytes();
        if routed_ps(var, setup) {
            if var.sparse {
                let t = transfer::ps_sparse_traffic(
                    w,
                    var.alpha,
                    var.raw_frac(),
                    n,
                    g,
                    p,
                    setup.local_aggregation,
                );
                grpc_sym.add(t.pull);
                grpc_sparse.add(t.push);
                // Server CPU: aggregation + update of pushed rows, spread
                // across machines, parallel across hosted partitions.
                // Naive pushes carry raw rows; local aggregation pushes
                // the machine-coalesced set.
                let pushed_rows = if setup.local_aggregation {
                    transfer::alpha_machine(var.alpha, g) * var.rows()
                } else {
                    workers * var.raw_rows / n
                };
                let cost = SparseOpCost {
                    pushed_rows,
                    cols: var.cols,
                };
                let hosted_parts = (p / n).max(1.0) as usize;
                server_cpu += cost.time(&cluster.cpu, hosted_parts);
            } else {
                dense_host_loads.push((
                    w,
                    // (host load, other load) computed below per placement.
                    transfer::VarTraffic::default(),
                    transfer::VarTraffic::default(),
                ));
                // Local aggregation is sparse-only (dense PS pushes are
                // always per-worker so the server replays the ring fold
                // order), so dense traffic never takes the machine
                // pre-sum discount.
                let (host, other) = transfer::ps_dense_traffic(w, n, g, false);
                let slot = dense_host_loads.last_mut().expect("just pushed");
                slot.1 = host;
                slot.2 = other;
                // Dense aggregation on the server: pushers x elements.
                server_cpu += workers * var.elements / cluster.cpu.dense_agg_rate / n;
            }
        } else if var.sparse && setup.arch == ArchChoice::ArOnly {
            // Horovod: raw sparse gradients travel as AllGatherv over MPI.
            mpi.add(transfer::ar_sparse_traffic(w, var.raw_frac(), n, g));
        } else {
            // Dense variables — and sparse variables the hybrid rule
            // promoted to dense (alpha ~ 1) — ride the NCCL ring.
            nccl.add(transfer::ar_dense_traffic(w, n, g));
        }
    }

    // Place dense PS variables on machines and compute the per-machine
    // gRPC loads (the hot-server asymmetry for naive placement).
    let mut grpc_out = vec![grpc_sym.out; machines];
    let mut grpc_in = vec![grpc_sym.inb; machines];
    let mut grpc_msgs = vec![grpc_sym.msgs; machines];
    let mut grpc_dense_intra = vec![0.0f64; machines];
    if !dense_host_loads.is_empty() {
        let owners = assign_dense(&dense_host_loads, machines, setup.balanced_placement);
        for (i, (_, host, other)) in dense_host_loads.iter().enumerate() {
            for (m, (out, inb)) in grpc_out.iter_mut().zip(grpc_in.iter_mut()).enumerate() {
                let load = if owners[i] == m { host } else { other };
                *out += load.out;
                *inb += load.inb;
                grpc_dense_intra[m] += load.intra;
                grpc_msgs[m] += load.msgs;
            }
        }
    }

    let mut sim = IterationSim::new(cluster.clone(), machines);
    sim.compute = vec![compute; machines];
    sim.server_cpu = vec![server_cpu; machines];
    if nccl.out > 0.0 || nccl.inb > 0.0 || nccl.intra > 0.0 {
        let mut phase = Phase::uniform(Transport::Nccl, machines, nccl.out, nccl.inb, nccl.msgs);
        phase.intra_bytes = vec![nccl.intra; machines];
        sim.phases.push(phase);
    }
    if mpi.out > 0.0 || mpi.inb > 0.0 || mpi.intra > 0.0 {
        let mut phase = Phase::uniform(Transport::Mpi, machines, mpi.out, mpi.inb, mpi.msgs);
        phase.intra_bytes = vec![mpi.intra; machines];
        sim.phases.push(phase);
    }
    let grpc_intra: Vec<f64> = grpc_dense_intra
        .iter()
        .map(|d| d + grpc_sym.intra)
        .collect();
    if grpc_out.iter().any(|&b| b > 0.0)
        || grpc_in.iter().any(|&b| b > 0.0)
        || grpc_intra.iter().any(|&b| b > 0.0)
    {
        sim.phases.push(Phase {
            transport: Transport::Grpc,
            out_bytes: grpc_out,
            in_bytes: grpc_in,
            intra_bytes: grpc_intra,
            messages: grpc_msgs,
        });
    }
    if grpc_sparse.out > 0.0 || grpc_sparse.inb > 0.0 || grpc_sparse.intra > 0.0 {
        let mut phase = Phase::uniform(
            Transport::GrpcSparse,
            machines,
            grpc_sparse.out,
            grpc_sparse.inb,
            grpc_sparse.msgs,
        );
        phase.intra_bytes = vec![grpc_sparse.intra; machines];
        sim.phases.push(phase);
    }

    let iteration_time = sim.iteration_time();
    let comm_time = iteration_time - compute - server_cpu;
    ThroughputReport {
        iteration_time,
        throughput: workers * workload.units_per_gpu / iteration_time,
        compute_time: compute,
        server_cpu_time: server_cpu,
        comm_time,
    }
}

/// Assigns dense PS variables (by index into `loads`) to machines.
fn assign_dense(
    loads: &[(f64, transfer::VarTraffic, transfer::VarTraffic)],
    machines: usize,
    balanced: bool,
) -> Vec<usize> {
    let mut owners = vec![0usize; loads.len()];
    if balanced {
        let mut budget = vec![0.0f64; machines];
        let mut order: Vec<usize> = (0..loads.len()).collect();
        order.sort_by(|&a, &b| {
            loads[b]
                .0
                .partial_cmp(&loads[a].0)
                .expect("finite sizes")
                .then(a.cmp(&b))
        });
        for i in order {
            let target = budget
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                .map(|(m, _)| m)
                .expect("machines > 0");
            owners[i] = target;
            budget[target] += loads[i].0;
        }
    } else {
        for (i, owner) in owners.iter_mut().enumerate() {
            *owner = i % machines;
        }
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stylized LM: tiny dense core, enormous sparse embeddings.
    fn lm_like() -> WorkloadSpec {
        WorkloadSpec {
            name: "lm-like".into(),
            vars: vec![
                VarSpec::dense("lstm", 9.4e6),
                VarSpec::sparse("emb_in", 793_470.0, 512.0, 0.003, 2560.0),
                VarSpec::sparse("emb_out", 793_470.0, 512.0, 0.013, 11_800.0),
            ],
            forward_flops_per_unit: 5.5e7,
            units_per_gpu: 2560.0,
            unit: "words",
        }
    }

    /// A stylized ResNet: all dense.
    fn resnet_like() -> WorkloadSpec {
        WorkloadSpec {
            name: "resnet-like".into(),
            vars: vec![VarSpec::dense("convs", 23.8e6)],
            forward_flops_per_unit: 3.9e9,
            units_per_gpu: 64.0,
            unit: "images",
        }
    }

    #[test]
    fn sparse_model_ps_beats_ar() {
        let cluster = ClusterModel::paper_testbed();
        let lm = lm_like();
        let ps = throughput(&lm, &cluster, 8, 6, &ArchSetup::tf_ps(), 128);
        let ar = throughput(&lm, &cluster, 8, 6, &ArchSetup::horovod(), 128);
        assert!(
            ps.throughput > 1.5 * ar.throughput,
            "PS {} vs AR {}",
            ps.throughput,
            ar.throughput
        );
    }

    #[test]
    fn dense_model_ar_beats_ps() {
        let cluster = ClusterModel::paper_testbed();
        let rn = resnet_like();
        let ps = throughput(&rn, &cluster, 8, 6, &ArchSetup::tf_ps(), 1);
        let ar = throughput(&rn, &cluster, 8, 6, &ArchSetup::horovod(), 1);
        assert!(
            ar.throughput > ps.throughput,
            "AR {} vs PS {}",
            ar.throughput,
            ps.throughput
        );
    }

    #[test]
    fn hybrid_beats_both_pure_architectures_on_sparse_models() {
        let cluster = ClusterModel::paper_testbed();
        let lm = lm_like();
        let hybrid = throughput(&lm, &cluster, 8, 6, &ArchSetup::parallax(), 128);
        let ps = throughput(&lm, &cluster, 8, 6, &ArchSetup::tf_ps(), 128);
        let ar = throughput(&lm, &cluster, 8, 6, &ArchSetup::horovod(), 128);
        assert!(hybrid.throughput > ps.throughput);
        assert!(hybrid.throughput > ar.throughput);
    }

    #[test]
    fn hybrid_matches_ar_on_dense_models() {
        let cluster = ClusterModel::paper_testbed();
        let rn = resnet_like();
        let hybrid = throughput(&rn, &cluster, 8, 6, &ArchSetup::parallax(), 1);
        let ar = throughput(&rn, &cluster, 8, 6, &ArchSetup::horovod(), 1);
        let ratio = hybrid.throughput / ar.throughput;
        assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn partition_count_has_convex_effect() {
        let cluster = ClusterModel::paper_testbed();
        let lm = lm_like();
        let t = |p: usize| throughput(&lm, &cluster, 8, 6, &ArchSetup::tf_ps(), p).throughput;
        let t8 = t(8);
        let t128 = t(128);
        let t4096 = t(4096);
        assert!(t128 > t8, "partitioning helps: {t128} vs {t8}");
        assert!(t128 > t4096, "too many partitions hurt: {t128} vs {t4096}");
    }

    #[test]
    fn throughput_grows_with_machines() {
        let cluster = ClusterModel::paper_testbed();
        let lm = lm_like();
        let t1 = throughput(&lm, &cluster, 1, 6, &ArchSetup::parallax(), 64);
        let t8 = throughput(&lm, &cluster, 8, 6, &ArchSetup::parallax(), 64);
        assert!(t8.throughput > 2.0 * t1.throughput);
    }

    #[test]
    fn alpha_model_weighted() {
        let lm = lm_like();
        let am = lm.alpha_model();
        assert!(am > 0.008 && am < 0.05, "alpha_model {am}");
        assert!(lm.sparse_elements() > 100.0 * lm.dense_elements() / 2.0);
    }

    #[test]
    fn local_aggregation_improves_ps() {
        let cluster = ClusterModel::paper_testbed();
        let lm = lm_like();
        let naive = throughput(&lm, &cluster, 8, 6, &ArchSetup::tf_ps(), 128);
        let opt = throughput(&lm, &cluster, 8, 6, &ArchSetup::opt_ps(), 128);
        assert!(opt.throughput > naive.throughput);
    }
}
