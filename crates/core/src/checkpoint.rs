//! Model checkpointing.
//!
//! The paper's `ParallaxConfig` includes "a file path to save trained
//! variables". This module implements that: a dependency-free binary
//! format with integrity checks on load, plus the training state
//! (step counter, data-shard cursors) the runner needs to resume after a
//! failure.
//!
//! Format v3 (`PLXCKPT3`): magic, CRC32 (IEEE, little-endian, over the
//! entire payload that follows), then the payload — step `u64`, cursor
//! count `u64`, cursors (`u64` each), variable count `u64`, per
//! variable its name, shape and little-endian `f32` data, then an
//! optimizer-slot section: entry count `u64` and per entry the variable
//! name, slot name (e.g. `velocity`, `accum`), shape and `f32` data.
//! Format v2 (`PLXCKPT2`) lacked the slot section; v1 (`PLXCKPT1`)
//! additionally lacked the CRC and training state. [`load`] /
//! [`load_with_state`] / [`load_full`] read all three (older formats
//! yield a default state and/or empty slots). Saves are atomic: written
//! to a temp file in the same directory, then renamed.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read as _, Write as _};
use std::path::Path;

use parallax_dataflow::{Graph, VarStore};
use parallax_tensor::{Shape, Tensor};

use crate::{CoreError, Result};

const MAGIC_V1: &[u8; 8] = b"PLXCKPT1";
const MAGIC_V2: &[u8; 8] = b"PLXCKPT2";
const MAGIC_V3: &[u8; 8] = b"PLXCKPT3";

/// Optimizer slot variables keyed by `(variable name, slot name)`.
///
/// A `BTreeMap` so serialization order — and therefore the bytes on
/// disk — is deterministic regardless of how the map was assembled.
pub type SlotMap = BTreeMap<(String, String), Tensor>;

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Config(format!("checkpoint I/O: {e}"))
}

/// CRC32 (IEEE 802.3 polynomial, reflected). Bitwise and table-free:
/// checkpoints are written once per interval, not per message.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Training progress saved alongside the variables, so a resumed run
/// replays from exactly where the checkpoint was cut.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainState {
    /// Number of completed iterations (the resumed run starts here).
    pub step: u64,
    /// Per-worker data-shard cursors: how many batches each worker has
    /// consumed. With deterministic feeds these are redundant with
    /// `step`, but real input pipelines are stateful, so they are
    /// first-class in the format.
    pub cursors: Vec<u64>,
}

fn write_name(payload: &mut Vec<u8>, name: &str) {
    payload.extend_from_slice(&(name.len() as u64).to_le_bytes());
    payload.extend_from_slice(name.as_bytes());
}

fn write_tensor(payload: &mut Vec<u8>, value: &Tensor) {
    let dims = value.shape().dims();
    payload.extend_from_slice(&(dims.len() as u64).to_le_bytes());
    for &d in dims {
        payload.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &x in value.data() {
        payload.extend_from_slice(&x.to_le_bytes());
    }
}

/// Saves every variable of `store` (named per `graph`) plus `state` to
/// `path`, atomically (temp file + rename). Equivalent to [`save_full`]
/// with no optimizer slots.
pub fn save_with_state(
    graph: &Graph,
    store: &VarStore,
    state: &TrainState,
    path: &Path,
) -> Result<()> {
    save_full(graph, store, state, &SlotMap::new(), path)
}

/// Saves every variable of `store` (named per `graph`), the training
/// `state` and the optimizer `slots` to `path`, atomically (temp file +
/// rename). Always writes format v3.
pub fn save_full(
    graph: &Graph,
    store: &VarStore,
    state: &TrainState,
    slots: &SlotMap,
    path: &Path,
) -> Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&state.step.to_le_bytes());
    payload.extend_from_slice(&(state.cursors.len() as u64).to_le_bytes());
    for &c in &state.cursors {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    payload.extend_from_slice(&(graph.variables().len() as u64).to_le_bytes());
    for var in graph.var_ids() {
        let def = graph.var_def(var)?;
        let value = store.get(var)?;
        write_name(&mut payload, &def.name);
        write_tensor(&mut payload, value);
    }
    payload.extend_from_slice(&(slots.len() as u64).to_le_bytes());
    for ((var_name, slot_name), value) in slots {
        write_name(&mut payload, var_name);
        write_name(&mut payload, slot_name);
        write_tensor(&mut payload, value);
    }
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(MAGIC_V3);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);

    // Atomic save: a crash mid-write must not destroy the previous
    // checkpoint, so write a sibling temp file and rename over.
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(&out).map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Saves every variable of `store` (named per `graph`) to `path` with a
/// default (step 0) training state.
pub fn save(graph: &Graph, store: &VarStore, path: &Path) -> Result<()> {
    save_with_state(graph, store, &TrainState::default(), path)
}

/// Loads a checkpoint into a [`VarStore`] laid out for `graph`,
/// discarding the training state.
pub fn load(graph: &Graph, path: &Path) -> Result<VarStore> {
    load_with_state(graph, path).map(|(store, _)| store)
}

/// Loads a checkpoint into a [`VarStore`] laid out for `graph`,
/// returning the saved [`TrainState`] and discarding optimizer slots.
pub fn load_with_state(graph: &Graph, path: &Path) -> Result<(VarStore, TrainState)> {
    load_full(graph, path).map(|(store, state, _)| (store, state))
}

/// Loads a checkpoint (v3, v2 or legacy v1) into a [`VarStore`] laid
/// out for `graph`, returning the saved [`TrainState`] (default for v1
/// files) and optimizer [`SlotMap`] (empty for v1/v2 files).
///
/// Variables are matched *by name*, so the checkpoint survives graph
/// edits that only reorder declarations; CRC mismatches (v2+), shape
/// mismatches and missing variables are errors. Slot entries naming a
/// variable the graph no longer has are silently dropped — the model
/// still loads, the stale state does not.
pub fn load_full(graph: &Graph, path: &Path) -> Result<(VarStore, TrainState, SlotMap)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io_err)?
        .read_to_end(&mut bytes)
        .map_err(io_err)?;
    if bytes.len() < 8 {
        return Err(CoreError::Config("checkpoint truncated".into()));
    }
    let magic: &[u8] = &bytes[..8];
    let has_slots = magic == MAGIC_V3;
    let (payload, versioned) = if magic == MAGIC_V2 || magic == MAGIC_V3 {
        if bytes.len() < 12 {
            return Err(CoreError::Config("checkpoint truncated".into()));
        }
        let stored = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let payload = &bytes[12..];
        let actual = crc32(payload);
        if stored != actual {
            return Err(CoreError::Config(format!(
                "checkpoint CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        (payload, true)
    } else if magic == MAGIC_V1 {
        (&bytes[8..], false)
    } else {
        return Err(CoreError::Config(
            "not a parallax checkpoint (bad magic)".into(),
        ));
    };

    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8]> {
        if *cursor + n > payload.len() {
            return Err(CoreError::Config("checkpoint truncated".into()));
        }
        let slice = &payload[*cursor..*cursor + n];
        *cursor += n;
        Ok(slice)
    };
    let read_u64 = |cursor: &mut usize| -> Result<u64> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(take(cursor, 8)?);
        Ok(u64::from_le_bytes(buf))
    };

    let state = if versioned {
        let step = read_u64(&mut cursor)?;
        let n = read_u64(&mut cursor)? as usize;
        let mut cursors = Vec::with_capacity(n);
        for _ in 0..n {
            cursors.push(read_u64(&mut cursor)?);
        }
        TrainState { step, cursors }
    } else {
        TrainState::default()
    };

    let read_name = |cursor: &mut usize| -> Result<String> {
        let len = read_u64(cursor)? as usize;
        String::from_utf8(take(cursor, len)?.to_vec())
            .map_err(|_| CoreError::Config("checkpoint name is not UTF-8".into()))
    };
    let read_tensor = |cursor: &mut usize| -> Result<Tensor> {
        let rank = read_u64(cursor)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(cursor)? as usize);
        }
        let shape = Shape::new(dims);
        let volume = shape.volume();
        let raw = take(cursor, volume * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Tensor::new(shape, data)?)
    };

    let count = read_u64(&mut cursor)? as usize;
    let mut by_name: HashMap<String, Tensor> = HashMap::with_capacity(count);
    for _ in 0..count {
        let name = read_name(&mut cursor)?;
        let tensor = read_tensor(&mut cursor)?;
        by_name.insert(name, tensor);
    }
    let mut slots = SlotMap::new();
    if has_slots {
        let n = read_u64(&mut cursor)? as usize;
        for _ in 0..n {
            let var_name = read_name(&mut cursor)?;
            let slot_name = read_name(&mut cursor)?;
            let tensor = read_tensor(&mut cursor)?;
            if graph.find_variable(&var_name).is_some() {
                slots.insert((var_name, slot_name), tensor);
            }
        }
    }
    if cursor != payload.len() {
        return Err(CoreError::Config("trailing bytes after checkpoint".into()));
    }

    let mut values = Vec::with_capacity(graph.variables().len());
    for var in graph.var_ids() {
        let def = graph.var_def(var)?;
        let tensor = by_name.remove(&def.name).ok_or_else(|| {
            CoreError::Config(format!("checkpoint missing variable '{}'", def.name))
        })?;
        if tensor.shape() != &def.shape {
            return Err(CoreError::Config(format!(
                "checkpoint variable '{}' has shape {}, graph expects {}",
                def.name,
                tensor.shape(),
                def.shape
            )));
        }
        values.push(tensor);
    }
    Ok((VarStore::from_values(values), state, slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::graph::Init;
    use parallax_dataflow::VariableDef;
    use parallax_tensor::DetRng;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.variable(VariableDef::new("emb", [10, 4], Init::Normal(0.1)))
            .unwrap();
        g.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        g.variable(VariableDef::new("b", [3], Init::Zeros)).unwrap();
        g
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parallax_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    /// Writes the legacy v1 layout (no CRC, no train state) for the
    /// compatibility test.
    fn save_v1(graph: &Graph, store: &VarStore, path: &std::path::Path) {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        out.extend_from_slice(&(graph.variables().len() as u64).to_le_bytes());
        for var in graph.var_ids() {
            let def = graph.var_def(var).unwrap();
            let value = store.get(var).unwrap();
            let name = def.name.as_bytes();
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name);
            let dims = value.shape().dims();
            out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
            for &d in dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in value.data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("roundtrip");
        save(&g, &store, &path).unwrap();
        let loaded = load(&g, &path).unwrap();
        assert_eq!(store.max_divergence(&loaded), 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn train_state_roundtrips() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let state = TrainState {
            step: 17,
            cursors: vec![4, 5, 4, 4],
        };
        let path = temp_path("state");
        save_with_state(&g, &store, &state, &path).unwrap();
        let (loaded, got) = load_with_state(&g, &path).unwrap();
        assert_eq!(got, state);
        assert_eq!(store.max_divergence(&loaded), 0.0);
        std::fs::remove_file(&path).ok();
    }

    /// Writes the legacy v2 layout (no slot section) for the
    /// compatibility test.
    fn save_v2(graph: &Graph, store: &VarStore, state: &TrainState, path: &std::path::Path) {
        let mut payload = Vec::new();
        payload.extend_from_slice(&state.step.to_le_bytes());
        payload.extend_from_slice(&(state.cursors.len() as u64).to_le_bytes());
        for &c in &state.cursors {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        payload.extend_from_slice(&(graph.variables().len() as u64).to_le_bytes());
        for var in graph.var_ids() {
            let def = graph.var_def(var).unwrap();
            write_name(&mut payload, &def.name);
            write_tensor(&mut payload, store.get(var).unwrap());
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V2);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn optimizer_slots_roundtrip() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let mut slots = SlotMap::new();
        slots.insert(
            ("w".into(), "velocity".into()),
            Tensor::new([4, 3], (0..12).map(|i| i as f32 * 0.25).collect::<Vec<_>>()).unwrap(),
        );
        slots.insert(
            ("emb".into(), "velocity".into()),
            Tensor::new([10, 4], vec![0.5; 40]).unwrap(),
        );
        let state = TrainState {
            step: 9,
            cursors: vec![3, 3, 3],
        };
        let path = temp_path("slots");
        save_full(&g, &store, &state, &slots, &path).unwrap();
        let (loaded, got_state, got_slots) = load_full(&g, &path).unwrap();
        assert_eq!(store.max_divergence(&loaded), 0.0);
        assert_eq!(got_state, state);
        assert_eq!(got_slots, slots);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slot_for_removed_variable_is_dropped_not_fatal() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let mut slots = SlotMap::new();
        slots.insert(
            ("ghost".into(), "accum".into()),
            Tensor::new([2], vec![1.0, 2.0]).unwrap(),
        );
        let path = temp_path("ghost_slot");
        save_full(&g, &store, &TrainState::default(), &slots, &path).unwrap();
        let (_, _, got) = load_full(&g, &path).unwrap();
        assert!(got.is_empty(), "stale slot must be dropped, got {got:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v2_files_load_with_empty_slots() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(5));
        let state = TrainState {
            step: 4,
            cursors: vec![2, 2],
        };
        let path = temp_path("v2compat");
        save_v2(&g, &store, &state, &path);
        let (loaded, got_state, slots) = load_full(&g, &path).unwrap();
        assert_eq!(store.max_divergence(&loaded), 0.0);
        assert_eq!(got_state, state);
        assert!(slots.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(9));
        let path = temp_path("v1compat");
        save_v1(&g, &store, &path);
        let (loaded, state) = load_with_state(&g, &path).unwrap();
        assert_eq!(store.max_divergence(&loaded), 0.0);
        assert_eq!(state, TrainState::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_matches_by_name_not_order() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("reorder");
        save(&g, &store, &path).unwrap();
        // A graph with the same variables declared in a different order.
        let mut g2 = Graph::new();
        g2.variable(VariableDef::new("b", [3], Init::Zeros))
            .unwrap();
        g2.variable(VariableDef::new("emb", [10, 4], Init::Normal(0.1)))
            .unwrap();
        g2.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        let loaded = load(&g2, &path).unwrap();
        let b = g2.find_variable("b").unwrap();
        assert_eq!(loaded.get(b).unwrap().shape().dims(), &[3]);
        let emb2 = loaded
            .get(g2.find_variable("emb").unwrap())
            .unwrap()
            .clone();
        let emb1 = store.get(g.find_variable("emb").unwrap()).unwrap();
        assert_eq!(&emb2, emb1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corruption_and_mismatches() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("corrupt");
        save(&g, &store, &path).unwrap();
        // Truncated file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load(&g, &path).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(load(&g, &path).is_err());
        // A single flipped payload bit: caught by the CRC.
        let mut flipped = bytes.clone();
        let mid = 12 + (flipped.len() - 12) / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        match load(&g, &path) {
            Err(CoreError::Config(msg)) => {
                assert!(msg.contains("CRC"), "expected CRC error, got: {msg}")
            }
            other => panic!("bit flip must fail the CRC, got {other:?}"),
        }
        // Shape mismatch against a different graph.
        std::fs::write(&path, &bytes).unwrap();
        let mut g3 = Graph::new();
        g3.variable(VariableDef::new("emb", [10, 5], Init::Zeros))
            .unwrap();
        g3.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        g3.variable(VariableDef::new("b", [3], Init::Zeros))
            .unwrap();
        assert!(load(&g3, &path).is_err());
        // Missing variable.
        let mut g4 = graph();
        g4.variable(VariableDef::new("extra", [2], Init::Zeros))
            .unwrap();
        assert!(load(&g4, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn partitioned_sparse_var_roundtrips_across_partition_counts() {
        use parallax_ps::plan::RowPartition;
        // Save a sparse (row-partitioned) variable's stitched value
        // under P = 3 partitions, restore and re-shard under P' = 2:
        // the stitch path must make partitioning invisible to the file.
        let mut g = Graph::new();
        g.variable(VariableDef::new("emb", [10, 4], Init::Normal(0.5)))
            .unwrap();
        let store = VarStore::init(&g, &mut DetRng::seed(11));
        let var = g.find_variable("emb").unwrap();
        let full = store.get(var).unwrap().clone();

        // Shard under P = 3 (as PS servers would hold it), stitch, save.
        let p3 = RowPartition::even(10, 3).unwrap();
        let shards3: Vec<Tensor> = (0..3)
            .map(|p| {
                let r = p3.range(p);
                full.slice_rows(r.start, r.end).unwrap()
            })
            .collect();
        let stitched = p3.stitch(&shards3).unwrap();
        assert_eq!(stitched, full);
        let path = temp_path("repartition");
        save(&g, &VarStore::from_values(vec![stitched]), &path).unwrap();

        // Restore and re-shard under P' = 2.
        let loaded = load(&g, &path).unwrap();
        let restored = loaded.get(var).unwrap();
        let p2 = RowPartition::even(10, 2).unwrap();
        let shards2: Vec<Tensor> = (0..2)
            .map(|p| {
                let r = p2.range(p);
                restored.slice_rows(r.start, r.end).unwrap()
            })
            .collect();
        let rebuilt = p2.stitch(&shards2).unwrap();
        assert_eq!(rebuilt, full, "P=3 save -> P'=2 restore must be exact");
        std::fs::remove_file(&path).ok();
    }
}
