//! Model checkpointing.
//!
//! The paper's `ParallaxConfig` includes "a file path to save trained
//! variables". This module implements that: a dependency-free binary
//! format (magic, version, variable count, then per variable its name,
//! shape and little-endian `f32` data) with integrity checks on load.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::Path;

use parallax_dataflow::{Graph, VarStore};
use parallax_tensor::{Shape, Tensor};

use crate::{CoreError, Result};

const MAGIC: &[u8; 8] = b"PLXCKPT1";

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Config(format!("checkpoint I/O: {e}"))
}

/// Saves every variable of `store` (named per `graph`) to `path`.
pub fn save(graph: &Graph, store: &VarStore, path: &Path) -> Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(graph.variables().len() as u64).to_le_bytes());
    for var in graph.var_ids() {
        let def = graph.var_def(var)?;
        let value = store.get(var)?;
        let name = def.name.as_bytes();
        out.extend_from_slice(&(name.len() as u64).to_le_bytes());
        out.extend_from_slice(name);
        let dims = value.shape().dims();
        out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
        for &d in dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &x in value.data() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(&out).map_err(io_err)?;
    Ok(())
}

/// Loads a checkpoint into a [`VarStore`] laid out for `graph`.
///
/// Variables are matched *by name*, so the checkpoint survives graph
/// edits that only reorder declarations; shape mismatches and missing
/// variables are errors.
pub fn load(graph: &Graph, path: &Path) -> Result<VarStore> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io_err)?
        .read_to_end(&mut bytes)
        .map_err(io_err)?;
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8]> {
        if *cursor + n > bytes.len() {
            return Err(CoreError::Config("checkpoint truncated".into()));
        }
        let slice = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(slice)
    };
    let read_u64 = |cursor: &mut usize| -> Result<u64> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(take(cursor, 8)?);
        Ok(u64::from_le_bytes(buf))
    };

    if take(&mut cursor, MAGIC.len())? != MAGIC {
        return Err(CoreError::Config(
            "not a parallax checkpoint (bad magic)".into(),
        ));
    }
    let count = read_u64(&mut cursor)? as usize;
    let mut by_name: HashMap<String, Tensor> = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u64(&mut cursor)? as usize;
        let name = String::from_utf8(take(&mut cursor, name_len)?.to_vec())
            .map_err(|_| CoreError::Config("checkpoint name is not UTF-8".into()))?;
        let rank = read_u64(&mut cursor)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut cursor)? as usize);
        }
        let shape = Shape::new(dims);
        let volume = shape.volume();
        let raw = take(&mut cursor, volume * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        by_name.insert(name, Tensor::new(shape, data)?);
    }
    if cursor != bytes.len() {
        return Err(CoreError::Config("trailing bytes after checkpoint".into()));
    }

    let mut values = Vec::with_capacity(graph.variables().len());
    for var in graph.var_ids() {
        let def = graph.var_def(var)?;
        let tensor = by_name.remove(&def.name).ok_or_else(|| {
            CoreError::Config(format!("checkpoint missing variable '{}'", def.name))
        })?;
        if tensor.shape() != &def.shape {
            return Err(CoreError::Config(format!(
                "checkpoint variable '{}' has shape {}, graph expects {}",
                def.name,
                tensor.shape(),
                def.shape
            )));
        }
        values.push(tensor);
    }
    Ok(VarStore::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::graph::Init;
    use parallax_dataflow::VariableDef;
    use parallax_tensor::DetRng;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.variable(VariableDef::new("emb", [10, 4], Init::Normal(0.1)))
            .unwrap();
        g.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        g.variable(VariableDef::new("b", [3], Init::Zeros)).unwrap();
        g
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parallax_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("roundtrip");
        save(&g, &store, &path).unwrap();
        let loaded = load(&g, &path).unwrap();
        assert_eq!(store.max_divergence(&loaded), 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_matches_by_name_not_order() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("reorder");
        save(&g, &store, &path).unwrap();
        // A graph with the same variables declared in a different order.
        let mut g2 = Graph::new();
        g2.variable(VariableDef::new("b", [3], Init::Zeros))
            .unwrap();
        g2.variable(VariableDef::new("emb", [10, 4], Init::Normal(0.1)))
            .unwrap();
        g2.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        let loaded = load(&g2, &path).unwrap();
        let b = g2.find_variable("b").unwrap();
        assert_eq!(loaded.get(b).unwrap().shape().dims(), &[3]);
        let emb2 = loaded
            .get(g2.find_variable("emb").unwrap())
            .unwrap()
            .clone();
        let emb1 = store.get(g.find_variable("emb").unwrap()).unwrap();
        assert_eq!(&emb2, emb1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corruption_and_mismatches() {
        let g = graph();
        let store = VarStore::init(&g, &mut DetRng::seed(3));
        let path = temp_path("corrupt");
        save(&g, &store, &path).unwrap();
        // Truncated file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load(&g, &path).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(load(&g, &path).is_err());
        // Shape mismatch against a different graph.
        std::fs::write(&path, &bytes).unwrap();
        let mut g3 = Graph::new();
        g3.variable(VariableDef::new("emb", [10, 5], Init::Zeros))
            .unwrap();
        g3.variable(VariableDef::new("w", [4, 3], Init::Glorot))
            .unwrap();
        g3.variable(VariableDef::new("b", [3], Init::Zeros))
            .unwrap();
        assert!(load(&g3, &path).is_err());
        // Missing variable.
        let mut g4 = graph();
        g4.variable(VariableDef::new("extra", [2], Init::Zeros))
            .unwrap();
        assert!(load(&g4, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
