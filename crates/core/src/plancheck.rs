//! Static plan verifier: distributed-plan passes and traffic prediction.
//!
//! The single-device graph passes (`G...`/`S...` codes) live in
//! [`parallax_dataflow::verify`]; this module adds the distributed
//! half, run against a [`DistributedPlan`] *before any thread spawns*:
//!
//! * [`check_plan`] — cross-checks the plan against an independent
//!   re-derivation of the hybrid decision (`P001`, `P002`, `P006`), the
//!   partition tiling invariants (`P003`–`P005`), the inserted
//!   synchronization-op schedule (`P007`), and gradient reachability
//!   for Parameter-Server variables (`P008`, the "servers wait forever"
//!   hazard);
//! * [`predict_iteration_traffic`] — statically replays one iteration's
//!   full exchange schedule (pulls, collectives, local aggregation,
//!   pushes, chief updates, update notifications) into a
//!   [`StaticLedger`] and cross-checks each traffic class against an
//!   independent closed-form byte accounting (`B001`);
//! * [`build_verified_plan`] — the gate [`crate::runner::get_runner`]
//!   uses: transform, verify graph + plan, refuse to return a plan whose
//!   report contains errors.

use std::collections::{HashMap, HashSet};

use parallax_comm::predict::{replay_allgatherv, replay_reduce_to, replay_ring_allreduce_wire};
use parallax_comm::wire::slices_wire_bytes;
use parallax_comm::{StaticLedger, TrafficClass};
use parallax_dataflow::grad::backward;
use parallax_dataflow::verify::{verify_graph, DiagCode, Diagnostic, VerifyReport};
use parallax_dataflow::{Feed, Graph, NodeId, Op, Session, VarId, VarStore, VariableDef};
use parallax_ps::placement::SyncDecision;
use parallax_ps::protocol::{self, ReqKind};
use parallax_ps::{PsTopology, VarPlacement};
use parallax_tensor::{sparse::Grad, DetRng};

use crate::config::{ArchChoice, ParallaxConfig};
use crate::hybrid;
use crate::runner::TrafficReport;
use crate::sparsity::SparsityProfile;
use crate::transform::{transform, DistributedPlan, SyncOpDesc};
use crate::{CoreError, Result};

/// Rows of a variable as the planner counts them (rank-0 scalars are a
/// single row).
fn var_rows(def: &VariableDef) -> usize {
    if def.shape.rank() == 0 {
        1
    } else {
        def.shape.dim(0)
    }
}

/// Elements per row.
fn var_cols(def: &VariableDef) -> usize {
    def.num_elements() / var_rows(def).max(1)
}

/// All ancestors of `node` (inclusive) following op input edges.
fn ancestors_of(graph: &Graph, node: NodeId) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if !seen.insert(n.index()) {
            continue;
        }
        if let Ok(op) = graph.op(n) {
            stack.extend(op.inputs());
        }
    }
    seen
}

/// `(machine, partition)` shard coordinates of a placement, in the order
/// the client addresses them. Shared with [`crate::protocheck`], whose
/// session derivation must address shards in exactly this order.
pub(crate) fn shard_coords(placement: &VarPlacement) -> Vec<(usize, usize)> {
    match placement {
        VarPlacement::AllReduce => vec![],
        VarPlacement::PsDense { server } => vec![(*server, 0)],
        VarPlacement::PsSparse { servers, .. } => servers
            .iter()
            .copied()
            .enumerate()
            .map(|(p, m)| (m, p))
            .collect(),
    }
}

/// Cross-checks a [`DistributedPlan`] against the graph, profile,
/// configuration and cluster it claims to be for. Pure analysis: every
/// violation becomes a typed diagnostic (`P001`–`P008`), never a panic.
///
/// `loss` enables the `P008` gradient-reachability pass; without it only
/// the never-accessed half of that hazard is detectable.
pub fn check_plan(
    graph: &Graph,
    loss: Option<NodeId>,
    profile: &SparsityProfile,
    config: &ParallaxConfig,
    topo: &PsTopology,
    plan: &DistributedPlan,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    let nvars = graph.variables().len();
    let machines = topo.num_machines();

    if plan.decisions.len() != nvars || plan.plan.placements().len() != nvars {
        report.push(Diagnostic::error(
            DiagCode::P006,
            format!(
                "plan holds {} decisions and {} placements for {nvars} graph variables",
                plan.decisions.len(),
                plan.plan.placements().len()
            ),
        ));
        return report;
    }

    // Independent re-derivation of the hybrid decision from the same
    // inputs: any disagreement means the plan was tampered with or the
    // transformation drifted from Section 3.1's rule.
    let expected = match hybrid::decide(graph, profile, config, plan.partitions) {
        Ok(e) => e,
        Err(e) => {
            report.push(Diagnostic::error(
                DiagCode::P006,
                format!("hybrid decision cannot be re-derived: {e}"),
            ));
            return report;
        }
    };
    let loss_ancestors = loss.map(|l| ancestors_of(graph, l));

    for var in graph.var_ids() {
        let idx = var.index();
        let def = &graph.variables()[idx];
        let actual = &plan.decisions[idx];
        let wanted = &expected[idx];
        let Ok(placement) = plan.plan.placement(var) else {
            continue; // Length already checked above.
        };

        // Decision diff against the re-derivation.
        match (actual, wanted) {
            (SyncDecision::AllReduce, SyncDecision::AllReduce)
            | (SyncDecision::PsDense, SyncDecision::PsDense) => {}
            (SyncDecision::AllReduce, SyncDecision::PsSparse { .. })
                if profile.vars.get(idx).map(|v| v.sparse).unwrap_or(false) =>
            {
                report.push(
                    Diagnostic::error(
                        DiagCode::P001,
                        format!(
                            "profile-sparse variable '{}' is AllReduce-synchronized, but the \
                             {:?} architecture keeps it on the Parameter Server",
                            def.name, config.arch
                        ),
                    )
                    .for_var(idx),
                );
            }
            (SyncDecision::AllReduce, _) => {
                report.push(
                    Diagnostic::error(
                        DiagCode::P006,
                        format!(
                            "variable '{}' is AllReduce-synchronized, but re-deriving the \
                             decision yields {wanted:?}",
                            def.name
                        ),
                    )
                    .for_var(idx),
                );
            }
            (SyncDecision::PsDense | SyncDecision::PsSparse { .. }, SyncDecision::AllReduce) => {
                report.push(
                    Diagnostic::error(
                        DiagCode::P002,
                        format!(
                            "variable '{}' is Parameter-Server-hosted, but the {:?} \
                             architecture synchronizes it by AllReduce",
                            def.name, config.arch
                        ),
                    )
                    .for_var(idx),
                );
            }
            (
                SyncDecision::PsSparse { partitions: a },
                SyncDecision::PsSparse { partitions: b },
            ) => {
                if a != b {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P006,
                            format!(
                                "variable '{}' is partitioned {a} ways, but re-deriving the \
                                 decision yields {b} partitions",
                                def.name
                            ),
                        )
                        .for_var(idx),
                    );
                }
            }
            (actual, wanted) => {
                report.push(
                    Diagnostic::error(
                        DiagCode::P006,
                        format!(
                            "variable '{}' decision {actual:?} disagrees with re-derived \
                             {wanted:?}",
                            def.name
                        ),
                    )
                    .for_var(idx),
                );
            }
        }

        // Placement consistency with the decision, server ranges, and the
        // partition tiling invariant.
        match (actual, placement) {
            (SyncDecision::AllReduce, VarPlacement::AllReduce) => {}
            (SyncDecision::PsDense, VarPlacement::PsDense { server }) => {
                if *server >= machines {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P005,
                            format!(
                                "variable '{}' is hosted on server {server}, but the cluster \
                                 has {machines} machine(s)",
                                def.name
                            ),
                        )
                        .for_var(idx),
                    );
                }
            }
            (
                SyncDecision::PsSparse { partitions: q },
                VarPlacement::PsSparse { partition, servers },
            ) => {
                if servers.len() != partition.parts() {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P006,
                            format!(
                                "variable '{}' has {} partitions but {} server assignments",
                                def.name,
                                partition.parts(),
                                servers.len()
                            ),
                        )
                        .for_var(idx),
                    );
                }
                for (p, &s) in servers.iter().enumerate() {
                    if s >= machines {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P005,
                                format!(
                                    "shard {p} of variable '{}' is hosted on server {s}, but \
                                     the cluster has {machines} machine(s)",
                                    def.name
                                ),
                            )
                            .for_var(idx),
                        );
                    }
                }
                let rows = var_rows(def);
                let bounds = partition.bounds();
                if partition.parts() == 0 {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P003,
                            format!("variable '{}' has an empty partition table", def.name),
                        )
                        .for_var(idx),
                    );
                } else {
                    if bounds[0] != 0 {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P003,
                                format!(
                                    "variable '{}': first shard starts at row {} instead of 0 \
                                     (rows 0..{} are unhosted)",
                                    def.name, bounds[0], bounds[0]
                                ),
                            )
                            .for_var(idx),
                        );
                    }
                    let last = *bounds.last().expect("non-empty bounds");
                    if last != partition.rows() || partition.rows() != rows {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P003,
                                format!(
                                    "variable '{}': shards cover rows 0..{last} of a declared \
                                     {} (variable has {rows} rows) — shards do not tile the \
                                     variable",
                                    def.name,
                                    partition.rows()
                                ),
                            )
                            .for_var(idx),
                        );
                    }
                    if bounds.windows(2).any(|w| w[1] <= w[0]) {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P004,
                                format!(
                                    "variable '{}': partition bounds {bounds:?} are not \
                                     strictly increasing (overlapping or empty shards)",
                                    def.name
                                ),
                            )
                            .for_var(idx),
                        );
                    }
                    let capped = (*q).max(1).min(rows.max(1));
                    if partition.parts() != capped {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P006,
                                format!(
                                    "variable '{}': placement has {} shards, but the decision's \
                                     {q} partitions cap at {capped} for {rows} rows",
                                    def.name,
                                    partition.parts()
                                ),
                            )
                            .for_var(idx),
                        );
                    }
                }
            }
            (decision, placement) => {
                report.push(
                    Diagnostic::error(
                        DiagCode::P006,
                        format!(
                            "variable '{}': placement {placement:?} disagrees with decision \
                             {decision:?}",
                            def.name
                        ),
                    )
                    .for_var(idx),
                );
            }
        }

        // A dense read of a row-partitioned variable fails at runtime in
        // the provider; catch it statically with node provenance.
        if matches!(placement, VarPlacement::PsSparse { .. }) {
            for (nidx, op) in graph.ops().iter().enumerate() {
                if matches!(op, Op::Variable(v) if *v == var) {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P002,
                            format!(
                                "dense read of partition-sharded variable '{}' (use Gather, or \
                                 host the variable unpartitioned)",
                                def.name
                            ),
                        )
                        .at_node(graph, NodeId::from_index(nidx))
                        .for_var(idx),
                    );
                }
            }
        }

        // P008: a PS variable must receive a gradient from every worker
        // every iteration, or its servers block forever on missing pushes
        // (and pulls, if it is never accessed at all).
        if placement.is_ps() {
            let access: Vec<NodeId> = graph
                .ops()
                .iter()
                .enumerate()
                .filter_map(|(i, op)| match op {
                    Op::Variable(v) if *v == var => Some(NodeId::from_index(i)),
                    Op::Gather { table, .. } if *table == var => Some(NodeId::from_index(i)),
                    _ => None,
                })
                .collect();
            if access.is_empty() {
                report.push(
                    Diagnostic::error(
                        DiagCode::P008,
                        format!(
                            "Parameter-Server variable '{}' is never accessed: its servers \
                             would wait forever for pulls and pushes that never come",
                            def.name
                        ),
                    )
                    .for_var(idx),
                );
            } else if let Some(ancestors) = &loss_ancestors {
                if !access.iter().any(|n| ancestors.contains(&n.index())) {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P008,
                            format!(
                                "Parameter-Server variable '{}' has no gradient path to the \
                                 loss: workers would push nothing and its servers would stall",
                                def.name
                            ),
                        )
                        .for_var(idx),
                    );
                }
            }
        }
    }

    check_sync_ops(graph, config, plan, &mut report);
    report
}

/// `P007`: the inserted synchronization-op schedule must agree with the
/// plan — exactly one collective per AllReduce variable (AllGatherv only
/// for graph-sparse variables under pure-AR), one `GlobalAgg` + `Update`
/// per shard on the shard's own server, and `LocalAgg` if and only if
/// the configuration enables local aggregation and the variable is
/// graph-sparse (dense PS gradients always push per worker so the
/// server can replay the ring fold order).
fn check_sync_ops(
    graph: &Graph,
    config: &ParallaxConfig,
    plan: &DistributedPlan,
    report: &mut VerifyReport,
) {
    for var in graph.var_ids() {
        let idx = var.index();
        let name = &graph.variables()[idx].name;
        let Ok(placement) = plan.plan.placement(var) else {
            continue;
        };
        let mut allreduce = 0usize;
        let mut allgatherv = 0usize;
        let mut local_agg = 0usize;
        let mut global_agg: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut update: HashMap<usize, Vec<usize>> = HashMap::new();
        for op in &plan.sync_ops {
            match op {
                SyncOpDesc::AllReduce { var: v } if *v == var => allreduce += 1,
                SyncOpDesc::AllGatherv { var: v } if *v == var => allgatherv += 1,
                SyncOpDesc::LocalAgg { var: v } if *v == var => local_agg += 1,
                SyncOpDesc::GlobalAgg {
                    var: v,
                    part,
                    server,
                } if *v == var => {
                    global_agg.entry(*part).or_default().push(*server);
                }
                SyncOpDesc::Update {
                    var: v,
                    part,
                    server,
                } if *v == var => {
                    update.entry(*part).or_default().push(*server);
                }
                _ => {}
            }
        }
        match placement {
            VarPlacement::AllReduce => {
                let wants_gatherv =
                    graph.is_sparse_variable(var) && matches!(config.arch, ArchChoice::ArOnly);
                let (want_ar, want_agv) = if wants_gatherv { (0, 1) } else { (1, 0) };
                if allreduce != want_ar || allgatherv != want_agv {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P007,
                            format!(
                                "AllReduce variable '{name}' schedules {allreduce} AllReduce \
                                 and {allgatherv} AllGatherv op(s); expected {want_ar} and \
                                 {want_agv}"
                            ),
                        )
                        .for_var(idx),
                    );
                }
                if local_agg + global_agg.len() + update.len() > 0 {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P007,
                            format!(
                                "AllReduce variable '{name}' schedules Parameter-Server \
                                 synchronization ops"
                            ),
                        )
                        .for_var(idx),
                    );
                }
            }
            placement => {
                if allreduce + allgatherv > 0 {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P007,
                            format!("Parameter-Server variable '{name}' schedules collective ops"),
                        )
                        .for_var(idx),
                    );
                }
                let want_lagg =
                    usize::from(config.local_aggregation && graph.is_sparse_variable(var));
                if local_agg != want_lagg {
                    report.push(
                        Diagnostic::error(
                            DiagCode::P007,
                            format!(
                                "variable '{name}' schedules {local_agg} LocalAgg op(s); the \
                                 configuration calls for {want_lagg}"
                            ),
                        )
                        .for_var(idx),
                    );
                }
                for (machine, part) in shard_coords(placement) {
                    for (what, seen) in [("GlobalAgg", &global_agg), ("Update", &update)] {
                        match seen.get(&part).map(Vec::as_slice) {
                            Some([s]) if *s == machine => {}
                            Some(servers) => {
                                report.push(
                                    Diagnostic::error(
                                        DiagCode::P007,
                                        format!(
                                            "shard {part} of '{name}' lives on server \
                                             {machine}, but its {what} op(s) are scheduled on \
                                             {servers:?}"
                                        ),
                                    )
                                    .for_var(idx),
                                );
                            }
                            None => {
                                report.push(
                                    Diagnostic::error(
                                        DiagCode::P007,
                                        format!(
                                            "shard {part} of '{name}' has no {what} op: its \
                                             update would never run"
                                        ),
                                    )
                                    .for_var(idx),
                                );
                            }
                        }
                    }
                }
                let parts: HashSet<usize> =
                    shard_coords(placement).iter().map(|&(_, p)| p).collect();
                for extra in global_agg.keys().chain(update.keys()) {
                    if !parts.contains(extra) {
                        report.push(
                            Diagnostic::error(
                                DiagCode::P007,
                                format!(
                                    "variable '{name}' schedules ops for partition {extra}, \
                                     which the placement does not define"
                                ),
                            )
                            .for_var(idx),
                        );
                        break;
                    }
                }
            }
        }
    }
}

/// Statically predicts the traffic of **one** synchronous iteration of a
/// plan by replaying its complete exchange schedule into a
/// [`StaticLedger`], and cross-checks every class against an independent
/// closed-form byte accounting (`B001`).
///
/// `feeds` supplies each worker's iteration-0 mini-batch (one entry per
/// worker, in worker order) — gather id lists, and therefore sparse
/// payload sizes, depend on the data. Gradient *structure* is
/// data-independent of where parameter values live, so the forward and
/// backward passes run against throwaway local replicas.
///
/// The returned [`TrafficReport`] is comparable field-for-field (`==`)
/// with the measured report of a real one-iteration run on the same
/// feeds. Gradient-trace reads (`trace_gradients`) are not modelled and
/// are rejected.
pub fn predict_iteration_traffic(
    graph: &Graph,
    loss: NodeId,
    plan: &DistributedPlan,
    topo: &PsTopology,
    config: &ParallaxConfig,
    feeds: &[Feed],
) -> Result<(TrafficReport, VerifyReport)> {
    if config.trace_gradients {
        return Err(CoreError::Config(
            "traffic prediction does not model gradient-trace reads (trace_gradients)".into(),
        ));
    }
    let workers = topo.num_workers();
    if feeds.len() != workers {
        return Err(CoreError::Config(format!(
            "{} feeds supplied for {workers} workers",
            feeds.len()
        )));
    }
    let machines = topo.num_machines();
    let sync = config.synchronous;
    let local_agg = config.local_aggregation && sync;
    let worker_ranks = topo.worker_ranks();
    let ledger = StaticLedger::new(topo.comm().clone());
    let session = Session::new(graph);
    let gatherv: HashSet<usize> = plan.gatherv_vars().iter().map(|v| v.index()).collect();
    let iter0 = 0u64;
    let req = protocol::request_tag(iter0);

    // Closed-form accumulators, indexed by `TrafficClass as usize`. These
    // are computed from aggregate formulas (ring totals, id counts), not
    // by enumerating messages, so they can catch replay bugs.
    let mut cf = [0u64; TrafficClass::COUNT];

    // Per-worker forward + backward on a local replica store.
    let mut grads_by_worker: Vec<HashMap<VarId, Grad>> = Vec::with_capacity(workers);
    let mut gathers_by_worker: Vec<Vec<Vec<usize>>> = Vec::with_capacity(workers);
    for feed in feeds {
        let mut store = VarStore::init(graph, &mut DetRng::seed(config.seed));
        let acts = session.forward(feed, &mut store)?;
        let grads = backward(graph, &acts, loss)?;
        let mut gathers = Vec::new();
        for op in graph.ops() {
            if let Op::Gather { ids, .. } = op {
                gathers.push(acts.value(*ids)?.as_ids("plancheck")?.to_vec());
            }
        }
        grads_by_worker.push(grads);
        gathers_by_worker.push(gathers);
    }

    // ---- Forward phase: parameter pulls -------------------------------
    for (widx, &rank) in worker_ranks.iter().enumerate() {
        // Dense pulls are cached once per variable per iteration.
        let mut pulled: HashSet<usize> = HashSet::new();
        let mut gi = 0usize; // Gather-node cursor, aligned with graph order.
        for op in graph.ops() {
            let accessed = match op {
                Op::Variable(v) => Some(*v),
                Op::Gather { table, .. } => Some(*table),
                _ => None,
            };
            let gather_ids = if let Op::Gather { .. } = op {
                let ids = &gathers_by_worker[widx][gi];
                gi += 1;
                Some(ids)
            } else {
                None
            };
            let Some(var) = accessed else { continue };
            match plan.plan.placement(var).map_err(CoreError::Ps)? {
                VarPlacement::AllReduce => {}
                VarPlacement::PsDense { server } => {
                    if pulled.insert(var.index()) {
                        let srv = topo.server_rank(*server);
                        let elements = graph.var_def(var)?.num_elements() as u64;
                        ledger.charge(rank, srv, req, 16)?;
                        ledger.charge(
                            srv,
                            rank,
                            protocol::response_tag(ReqKind::PullDense, var.index(), 0, iter0),
                            4 * elements,
                        )?;
                        cf[TrafficClass::Ps as usize] += 16 + 4 * elements;
                    }
                }
                VarPlacement::PsSparse { partition, servers } => {
                    // A dense read of a partitioned variable errors at
                    // runtime; `check_plan` reports it as P002, and the
                    // predictor has no schedule to replay for it.
                    let Some(ids) = gather_ids else {
                        return Err(CoreError::Config(format!(
                            "dense read of partition-sharded variable {} (P002)",
                            var.index()
                        )));
                    };
                    let cols = var_cols(graph.var_def(var)?) as u64;
                    let mut counts = vec![0u64; partition.parts()];
                    for &id in ids {
                        let (p, _) = partition.route(id).map_err(CoreError::Ps)?;
                        counts[p] += 1;
                    }
                    // Every partition is addressed, empty requests included
                    // (the server's per-iteration pull quota counts them).
                    for (p, &cnt) in counts.iter().enumerate() {
                        let srv = topo.server_rank(servers[p]);
                        ledger.charge(rank, srv, req, 8 + 8 * cnt)?;
                        ledger.charge(
                            srv,
                            rank,
                            protocol::response_tag(ReqKind::PullSparse, var.index(), p, iter0),
                            4 * cnt * cols,
                        )?;
                    }
                    cf[TrafficClass::Ps as usize] +=
                        partition.parts() as u64 * 8 + ids.len() as u64 * (8 + 4 * cols);
                }
            }
        }
    }

    // ---- Exchange phase: AllReduce / AllGatherv -----------------------
    for var in plan.ar_vars() {
        let present = grads_by_worker
            .iter()
            .filter(|g| g.contains_key(&var))
            .count();
        if present == 0 {
            continue; // Legal: AR variables without gradients are skipped.
        }
        if present != workers {
            return Err(CoreError::Config(format!(
                "variable {} has a gradient on {present}/{workers} workers; the collective \
                 would deadlock",
                var.index()
            )));
        }
        let sparse = grads_by_worker[0][&var].is_sparse();
        if sparse && gatherv.contains(&var.index()) {
            // Contribution sizes on the wire: packed (delta+varint
            // indices) under a compressing format, raw otherwise —
            // exactly what `allgatherv_slices_wire` sends.
            let contribs: Vec<u64> = grads_by_worker
                .iter()
                .map(|g| match &g[&var] {
                    Grad::Sparse(s) => slices_wire_bytes(s, config.wire_format),
                    Grad::Dense(_) => g[&var].byte_size(),
                })
                .collect();
            replay_allgatherv(
                &ledger,
                &worker_ranks,
                crate::runner::mpi_tag(var.index(), iter0),
                &contribs,
            )?;
            if workers > 1 {
                cf[TrafficClass::Mpi as usize] +=
                    (workers as u64 - 1) * contribs.iter().sum::<u64>();
            }
        } else {
            // Dense gradient, or a sparse one densified onto the ring.
            let elems = match &grads_by_worker[0][&var] {
                Grad::Dense(t) => t.data().len(),
                Grad::Sparse(s) => s.dense_rows() * s.cols(),
            };
            replay_ring_allreduce_wire(
                &ledger,
                &worker_ranks,
                protocol::allreduce_tag(var.index(), iter0),
                elems,
                config.wire_format,
            )?;
            if workers > 1 {
                // Each element crosses every rank boundary twice (reduce-
                // scatter + allgather) at the wire scalar width.
                let ws = config.wire_format.scalar_bytes();
                cf[TrafficClass::Nccl as usize] += 2 * ws * elems as u64 * (workers as u64 - 1);
            }
        }
    }

    // ---- Exchange phase: Parameter Server pushes ----------------------
    let widx_of = |rank: usize| -> usize {
        worker_ranks
            .iter()
            .position(|&r| r == rank)
            .expect("rank is a worker")
    };
    let ps_vars = plan.ps_vars();
    for &var in &ps_vars {
        let def = graph.var_def(var)?;
        for g in &grads_by_worker {
            if !g.contains_key(&var) {
                return Err(CoreError::Config(format!(
                    "PS variable '{}' receives no gradient; servers would stall (P008)",
                    def.name
                )));
            }
        }
        let placement = plan.plan.placement(var).map_err(CoreError::Ps)?.clone();
        // Local aggregation applies to sparse variables only; dense PS
        // gradients always push per worker (ring-ordered accumulator).
        if local_agg && graph.is_sparse_variable(var) {
            for m in 0..machines {
                let peers = topo.workers_of(m);
                let chief = topo.local_chief(m);
                let tag = protocol::local_agg_tag(var.index(), iter0);
                // Non-chief workers ship their raw gradient to the local
                // chief: dense as Floats, sparse as Slices — both are
                // exactly the gradient's byte size.
                let sizes: Vec<u64> = peers
                    .iter()
                    .map(|&r| grads_by_worker[widx_of(r)][&var].byte_size())
                    .collect();
                replay_reduce_to(&ledger, &peers, tag, chief, &sizes)?;
                cf[TrafficClass::LocalAgg as usize] += peers
                    .iter()
                    .zip(&sizes)
                    .filter(|(&r, _)| r != chief)
                    .map(|(_, &b)| b)
                    .sum::<u64>();
                // The chief pushes the machine aggregate.
                match (&placement, &grads_by_worker[widx_of(chief)][&var]) {
                    (VarPlacement::PsDense { server }, Grad::Dense(t)) => {
                        let bytes = 8 + t.byte_size();
                        ledger.charge(chief, topo.server_rank(*server), req, bytes)?;
                        cf[TrafficClass::Ps as usize] += bytes;
                    }
                    (VarPlacement::PsSparse { partition, servers }, Grad::Sparse(s)) => {
                        // The aggregate's rows are the distinct rows any of
                        // the machine's workers touched (coalescing merges
                        // duplicates without dropping rows).
                        let mut rows: HashSet<usize> = HashSet::new();
                        for &r in &peers {
                            match &grads_by_worker[widx_of(r)][&var] {
                                Grad::Sparse(s) => rows.extend(s.indices().iter().copied()),
                                Grad::Dense(_) => {
                                    return Err(CoreError::Config(format!(
                                        "mixed gradient kinds for variable '{}'",
                                        def.name
                                    )))
                                }
                            }
                        }
                        let cols = s.cols() as u64;
                        let mut per_part = vec![0u64; partition.parts()];
                        for &row in &rows {
                            let (p, _) = partition.route(row).map_err(CoreError::Ps)?;
                            per_part[p] += 1;
                        }
                        for (p, &nnz) in per_part.iter().enumerate() {
                            let bytes = 8 + nnz * (4 * cols + 8);
                            ledger.charge(chief, topo.server_rank(servers[p]), req, bytes)?;
                        }
                        cf[TrafficClass::Ps as usize] +=
                            partition.parts() as u64 * 8 + rows.len() as u64 * (4 * cols + 8);
                    }
                    _ => {
                        return Err(CoreError::Config(format!(
                            "gradient kind of '{}' does not match its placement",
                            def.name
                        )))
                    }
                }
            }
        } else {
            // No local aggregation (or asynchronous): every worker pushes
            // its raw gradient, duplicate rows and all.
            for (widx, &rank) in worker_ranks.iter().enumerate() {
                match (&placement, &grads_by_worker[widx][&var]) {
                    (VarPlacement::PsDense { server }, Grad::Dense(t)) => {
                        let bytes = 8 + t.byte_size();
                        ledger.charge(rank, topo.server_rank(*server), req, bytes)?;
                        cf[TrafficClass::Ps as usize] += bytes;
                    }
                    (VarPlacement::PsSparse { partition, servers }, Grad::Sparse(s)) => {
                        let cols = s.cols() as u64;
                        let mut per_part = vec![0u64; partition.parts()];
                        for &row in s.indices() {
                            let (p, _) = partition.route(row).map_err(CoreError::Ps)?;
                            per_part[p] += 1;
                        }
                        for (p, &nnz) in per_part.iter().enumerate() {
                            let bytes = 8 + nnz * (4 * cols + 8);
                            ledger.charge(rank, topo.server_rank(servers[p]), req, bytes)?;
                        }
                        cf[TrafficClass::Ps as usize] +=
                            partition.parts() as u64 * 8 + s.nnz_rows() as u64 * (4 * cols + 8);
                    }
                    _ => {
                        return Err(CoreError::Config(format!(
                            "gradient kind of '{}' does not match its placement",
                            def.name
                        )))
                    }
                }
            }
        }
    }

    // ---- Chief update triggers and update notifications ---------------
    if sync && config.chief_triggers_update {
        let chief = topo.chief();
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            for (m, _part) in shard_coords(placement) {
                ledger.charge(chief, topo.server_rank(m), req, 16)?;
                cf[TrafficClass::Ps as usize] += 16;
            }
        }
    }
    if sync {
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            for (m, part) in shard_coords(placement) {
                let srv = topo.server_rank(m);
                let tag = protocol::response_tag(ReqKind::UpdateDone, var.index(), part, iter0);
                for &r in &worker_ranks {
                    ledger.charge(srv, r, tag, 8)?;
                }
                // UpdateDone response tags land in the 0x9 nibble (kind
                // bits carried past the 0x8 response marker), which the
                // traffic accountant classifies as PS.
                cf[TrafficClass::Ps as usize] += 8 * workers as u64;
            }
        }
    }

    // ---- B001: conservation crosscheck --------------------------------
    let mut report = VerifyReport::new();
    for class in TrafficClass::all() {
        let snap = ledger.class_snapshot(class);
        let replayed = snap.total_network_bytes() + snap.intra_bytes();
        let formula = cf[class as usize];
        if replayed != formula {
            report.push(Diagnostic::error(
                DiagCode::B001,
                format!(
                    "predicted {class:?} traffic is {replayed} B, but the closed-form \
                     accounting yields {formula} B"
                ),
            ));
        }
    }
    let traffic = TrafficReport {
        nccl: ledger.class_snapshot(TrafficClass::Nccl),
        mpi: ledger.class_snapshot(TrafficClass::Mpi),
        ps: ledger.class_snapshot(TrafficClass::Ps),
        local_agg: ledger.class_snapshot(TrafficClass::LocalAgg),
        other: ledger.class_snapshot(TrafficClass::Default),
    };
    Ok((traffic, report))
}

/// Transforms the graph and refuses to return a plan that fails
/// verification: the graph passes (structure, kinds, liveness, shapes)
/// and the plan passes ([`check_plan`]) run first, and any
/// error-severity diagnostic aborts with [`CoreError::Verify`] carrying
/// the rendered report. This is the gate behind
/// [`crate::runner::get_runner`].
pub fn build_verified_plan(
    graph: &Graph,
    loss: NodeId,
    profile: &SparsityProfile,
    config: &ParallaxConfig,
    topo: &PsTopology,
    partitions: usize,
) -> Result<DistributedPlan> {
    let plan = transform(
        graph,
        profile,
        config,
        topo.num_machines(),
        topo.num_workers(),
        partitions,
    )?;
    let mut report = verify_graph(graph, Some(loss), None);
    report.merge(check_plan(graph, Some(loss), profile, config, topo, &plan));
    // The protocol session machine is derived from the plan and checked
    // alongside it (`C...` codes): a plan whose wire choreography cannot
    // complete an iteration is as unusable as a mistiled one.
    let spec = crate::protocheck::derive_session(graph, config, topo, &plan)?;
    report.merge(crate::protocheck::check_session(
        graph, config, topo, &plan, &spec,
    ));
    if report.has_errors() {
        return Err(CoreError::Verify(report.render()));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::profile_from_parts;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::VariableDef;

    fn model() -> (Graph, NodeId, SparsityProfile) {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [12, 4], Init::Glorot))
            .unwrap();
        let w = g
            .variable(VariableDef::new("w", [4, 2], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        let gathered = g.add(Op::Gather { table: emb, ids }).unwrap();
        let wn = g.add(Op::Variable(w)).unwrap();
        let h = g.add(Op::MatMul(gathered, wn)).unwrap();
        let loss = g.add(Op::MeanAll(h)).unwrap();
        let profile = profile_from_parts(vec![(emb, true, 0.25, 12, 48), (w, false, 1.0, 4, 8)]);
        (g, loss, profile)
    }

    #[test]
    fn well_formed_plan_verifies_cleanly() {
        let (g, loss, profile) = model();
        let config = ParallaxConfig::default();
        let topo = PsTopology::uniform(2, 2).unwrap();
        let plan = transform(&g, &profile, &config, 2, 4, 2).unwrap();
        let report = check_plan(&g, Some(loss), &profile, &config, &topo, &plan);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn partition_count_tamper_is_p006() {
        let (g, loss, profile) = model();
        let config = ParallaxConfig::default();
        let topo = PsTopology::uniform(2, 2).unwrap();
        let mut plan = transform(&g, &profile, &config, 2, 4, 2).unwrap();
        plan.partitions = 3; // Decisions still say 2.
        let report = check_plan(&g, Some(loss), &profile, &config, &topo, &plan);
        assert!(report.has_code(DiagCode::P006), "{}", report.render());
    }

    #[test]
    fn missing_update_op_is_p007() {
        let (g, loss, profile) = model();
        let config = ParallaxConfig::default();
        let topo = PsTopology::uniform(2, 2).unwrap();
        let mut plan = transform(&g, &profile, &config, 2, 4, 2).unwrap();
        let before = plan.sync_ops.len();
        plan.sync_ops
            .retain(|op| !matches!(op, SyncOpDesc::Update { part: 1, .. }));
        assert!(plan.sync_ops.len() < before);
        let report = check_plan(&g, Some(loss), &profile, &config, &topo, &plan);
        assert!(report.has_code(DiagCode::P007), "{}", report.render());
    }

    #[test]
    fn unused_ps_variable_is_p008_and_gates_the_runner() {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [8, 2], Init::Glorot))
            .unwrap();
        let orphan = g
            .variable(VariableDef::new("orphan", [4, 2], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        let gathered = g.add(Op::Gather { table: emb, ids }).unwrap();
        let loss = g.add(Op::MeanAll(gathered)).unwrap();
        let profile = profile_from_parts(vec![(emb, true, 0.5, 8, 16), (orphan, false, 1.0, 4, 8)]);
        let config = ParallaxConfig {
            arch: ArchChoice::PsOnly { optimized: true },
            ..ParallaxConfig::default()
        };
        let topo = PsTopology::uniform(2, 1).unwrap();
        let plan = transform(&g, &profile, &config, 2, 2, 2).unwrap();
        let report = check_plan(&g, Some(loss), &profile, &config, &topo, &plan);
        assert!(report.has_code(DiagCode::P008), "{}", report.render());
        let err = build_verified_plan(&g, loss, &profile, &config, &topo, 2).unwrap_err();
        match err {
            CoreError::Verify(rendered) => assert!(rendered.contains("P008")),
            other => panic!("expected Verify error, got {other:?}"),
        }
    }
}
