//! Automatic graph transformation (Section 4.3).
//!
//! Consumes a single-GPU graph, a sparsity profile and a configuration;
//! produces a [`DistributedPlan`]: per-variable synchronization
//! decisions, the sharding plan, and the list of synchronization
//! operations the transformation inserts — AllReduce per dense variable
//! (Figure 4), local aggregation / global aggregation / update per
//! sparse shard with the aggregation and update placed on the shard's
//! own server (Figure 5), composed per variable kind for the hybrid
//! architecture (Figure 6). Main computation (Model/Grads) is
//! replicated once per GPU in every architecture.

use parallax_dataflow::{Graph, VarId};
use parallax_ps::placement::{build_plan, SyncDecision};
use parallax_ps::{PlacementStrategy, ShardingPlan, VarPlacement};

use crate::config::{ArchChoice, ParallaxConfig};
use crate::hybrid;
use crate::sparsity::SparsityProfile;
use crate::Result;

/// One synchronization operation inserted by the transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOpDesc {
    /// Ring AllReduce of a dense gradient across all replicas.
    AllReduce {
        /// The variable.
        var: VarId,
    },
    /// AllGatherv of a sparse gradient across all replicas (pure-AR).
    AllGatherv {
        /// The variable.
        var: VarId,
    },
    /// Per-machine aggregation before pushing (`LocalAggN`).
    LocalAgg {
        /// The variable.
        var: VarId,
    },
    /// Cross-machine aggregation on a server (`GlobalAggN`), placed on
    /// the server hosting the shard it feeds.
    GlobalAgg {
        /// The variable.
        var: VarId,
        /// The shard's partition index.
        part: usize,
        /// The hosting machine.
        server: usize,
    },
    /// The variable-update operation (`UpdateN`), colocated with its
    /// variable's shard.
    Update {
        /// The variable.
        var: VarId,
        /// The shard's partition index.
        part: usize,
        /// The hosting machine.
        server: usize,
    },
}

/// The output of graph transformation: everything the runner needs to
/// execute the (conceptually rewritten) graph on a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPlan {
    /// Per-variable synchronization decisions.
    pub decisions: Vec<SyncDecision>,
    /// Shard placement.
    pub plan: ShardingPlan,
    /// The sparse partition count in force.
    pub partitions: usize,
    /// Synchronization operations inserted by the transformation.
    pub sync_ops: Vec<SyncOpDesc>,
    /// Replicas of the main computation (one per GPU).
    pub replicas: usize,
}

impl DistributedPlan {
    /// True when the plan requires server processes.
    pub fn needs_servers(&self) -> bool {
        self.plan.needs_servers()
    }

    /// Variables synchronized by AllReduce/AllGatherv.
    pub fn ar_vars(&self) -> Vec<VarId> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, SyncDecision::AllReduce))
            .map(|(i, _)| VarId::from_index(i))
            .collect()
    }

    /// AllReduce variables whose sparse gradients travel as AllGatherv
    /// (pure-AR mode); all other AR variables densify onto the ring.
    pub fn gatherv_vars(&self) -> Vec<VarId> {
        self.sync_ops
            .iter()
            .filter_map(|o| match o {
                SyncOpDesc::AllGatherv { var } => Some(*var),
                _ => None,
            })
            .collect()
    }

    /// Variables synchronized through the Parameter Server.
    pub fn ps_vars(&self) -> Vec<VarId> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| !matches!(d, SyncDecision::AllReduce))
            .map(|(i, _)| VarId::from_index(i))
            .collect()
    }
}

/// Transforms a single-GPU graph into a distributed plan.
///
/// `machines`/`gpus_total` describe the resources; `partitions` is the
/// sparse partition count (from the search or the config).
pub fn transform(
    graph: &Graph,
    profile: &SparsityProfile,
    config: &ParallaxConfig,
    machines: usize,
    gpus_total: usize,
    partitions: usize,
) -> Result<DistributedPlan> {
    let decisions = hybrid::decide(graph, profile, config, partitions)?;
    let strategy = match config.arch {
        ArchChoice::PsOnly { optimized: false } => PlacementStrategy::RoundRobin,
        _ => config.placement,
    };
    let plan = build_plan(graph, &decisions, machines, strategy).map_err(crate::CoreError::Ps)?;

    let mut sync_ops = Vec::new();
    for (idx, decision) in decisions.iter().enumerate() {
        let var = VarId::from_index(idx);
        let sparse = graph.is_sparse_variable(var);
        match decision {
            SyncDecision::AllReduce => {
                if sparse && matches!(config.arch, ArchChoice::ArOnly) {
                    sync_ops.push(SyncOpDesc::AllGatherv { var });
                } else {
                    // Dense, or a sparse variable promoted to dense by the
                    // hybrid alpha rule: densify and AllReduce.
                    sync_ops.push(SyncOpDesc::AllReduce { var });
                }
            }
            SyncDecision::PsDense | SyncDecision::PsSparse { .. } => {
                // Local aggregation is sparse-only: dense gradients keep
                // one push per worker so the server can replay the
                // ring-AllReduce fold order (a machine pre-sum has the
                // wrong association).
                if config.local_aggregation && sparse {
                    sync_ops.push(SyncOpDesc::LocalAgg { var });
                }
                match plan.placement(var).map_err(crate::CoreError::Ps)? {
                    VarPlacement::PsDense { server } => {
                        sync_ops.push(SyncOpDesc::GlobalAgg {
                            var,
                            part: 0,
                            server: *server,
                        });
                        sync_ops.push(SyncOpDesc::Update {
                            var,
                            part: 0,
                            server: *server,
                        });
                    }
                    VarPlacement::PsSparse { servers, .. } => {
                        for (part, &server) in servers.iter().enumerate() {
                            sync_ops.push(SyncOpDesc::GlobalAgg { var, part, server });
                            sync_ops.push(SyncOpDesc::Update { var, part, server });
                        }
                    }
                    VarPlacement::AllReduce => unreachable!("decision is PS"),
                }
            }
        }
    }
    Ok(DistributedPlan {
        decisions,
        plan,
        partitions,
        sync_ops,
        replicas: gpus_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::profile_from_parts;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::VariableDef;

    fn sparse_model() -> (Graph, SparsityProfile) {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [64, 8], Init::Glorot))
            .unwrap();
        let _w = g
            .variable(VariableDef::new("w", [8, 8], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        g.add(Op::Gather { table: emb, ids }).unwrap();
        let profile = profile_from_parts(vec![
            (VarId::from_index(0), true, 0.1, 64, 512),
            (VarId::from_index(1), false, 1.0, 8, 64),
        ]);
        let _ = emb;
        (g, profile)
    }

    #[test]
    fn hybrid_transform_composes_figure6() {
        let (g, profile) = sparse_model();
        let plan = transform(&g, &profile, &ParallaxConfig::default(), 2, 4, 4).unwrap();
        assert!(plan.needs_servers());
        assert_eq!(plan.replicas, 4);
        // Dense variable: exactly one AllReduce op, no PS ops.
        let dense_ops: Vec<_> = plan
            .sync_ops
            .iter()
            .filter(|o| match o {
                SyncOpDesc::AllReduce { var } => var.index() == 1,
                SyncOpDesc::GlobalAgg { var, .. } | SyncOpDesc::Update { var, .. } => {
                    var.index() == 1
                }
                _ => false,
            })
            .collect();
        assert_eq!(dense_ops.len(), 1);
        assert!(matches!(dense_ops[0], SyncOpDesc::AllReduce { .. }));
        // Sparse variable: local agg + per-partition global agg & update.
        let parts = 4;
        let gagg = plan
            .sync_ops
            .iter()
            .filter(|o| matches!(o, SyncOpDesc::GlobalAgg { var, .. } if var.index() == 0))
            .count();
        assert_eq!(gagg, parts);
        assert!(plan
            .sync_ops
            .iter()
            .any(|o| matches!(o, SyncOpDesc::LocalAgg { var } if var.index() == 0)));
    }

    #[test]
    fn global_agg_and_update_are_colocated_with_shard() {
        let (g, profile) = sparse_model();
        let plan = transform(&g, &profile, &ParallaxConfig::default(), 4, 8, 8).unwrap();
        // For each (var, part), GlobalAgg and Update name the same server
        // as the placement (smart operation placement).
        for op in &plan.sync_ops {
            if let SyncOpDesc::GlobalAgg { var, part, server }
            | SyncOpDesc::Update { var, part, server } = op
            {
                match plan.plan.placement(*var).unwrap() {
                    VarPlacement::PsSparse { servers, .. } => {
                        assert_eq!(servers[*part], *server);
                    }
                    VarPlacement::PsDense { server: s } => assert_eq!(s, server),
                    VarPlacement::AllReduce => panic!("PS op on AR variable"),
                }
            }
        }
    }

    #[test]
    fn pure_ar_plan_has_no_ps_ops_and_uses_allgatherv_for_sparse() {
        let (g, profile) = sparse_model();
        let plan = transform(&g, &profile, &ParallaxConfig::horovod_baseline(), 2, 4, 4).unwrap();
        assert!(!plan.needs_servers());
        assert!(plan
            .sync_ops
            .iter()
            .any(|o| matches!(o, SyncOpDesc::AllGatherv { var } if var.index() == 0)));
        assert!(!plan
            .sync_ops
            .iter()
            .any(|o| matches!(o, SyncOpDesc::Update { .. })));
    }

    #[test]
    fn dense_only_model_needs_no_servers_under_hybrid() {
        let mut g = Graph::new();
        g.variable(VariableDef::new("w", [8, 8], Init::Glorot))
            .unwrap();
        let profile = profile_from_parts(vec![(VarId::from_index(0), false, 1.0, 8, 64)]);
        let plan = transform(&g, &profile, &ParallaxConfig::default(), 2, 4, 4).unwrap();
        assert!(!plan.needs_servers());
        assert_eq!(plan.ar_vars().len(), 1);
        assert!(plan.ps_vars().is_empty());
    }

    #[test]
    fn naive_ps_uses_round_robin_even_with_balanced_config() {
        let (g, profile) = sparse_model();
        let mut config = ParallaxConfig::tf_ps_baseline();
        config.placement = PlacementStrategy::Balanced; // Ignored for naive.
        let plan = transform(&g, &profile, &config, 2, 4, 2).unwrap();
        assert!(plan.needs_servers());
        assert_eq!(plan.ps_vars().len(), 2);
    }
}
