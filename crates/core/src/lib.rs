#![warn(missing_docs)]

//! Parallax: sparsity-aware data parallel training (EuroSys '19).
//!
//! The paper's contribution, reproduced on the substrates in the sibling
//! crates:
//!
//! * [`sparsity`] — classify variables dense/sparse from graph usage and
//!   estimate each sparse variable's access ratio `alpha` by sampling
//!   batches (Section 2.2).
//! * [`transfer`] — the closed-form per-machine network-transfer
//!   expressions of Table 3, plus their generalization to multi-GPU
//!   machines used by the analytic throughput engine.
//! * [`hybrid`] — the hybrid architecture decision: AllReduce for dense
//!   variables, Parameter Server for sparse ones, with the
//!   `alpha ~ 1` escape hatch back to AllReduce (Section 3.1).
//! * [`partition`] — the sparse-variable partition search: sample
//!   iteration times while doubling/halving `P`, fit
//!   `t = th0 + th1/P + th2*P`, pick the predicted optimum (Section 3.2).
//! * [`transform`] — automatic graph transformation: a single-GPU graph
//!   plus resources in, a distributed execution plan out (Section 4.3).
//! * [`plancheck`] — the static plan verifier: cross-checks a
//!   [`transform::DistributedPlan`] against a re-derivation of the
//!   hybrid decision, the partition tiling invariants and the inserted
//!   synchronization schedule, and statically predicts one iteration's
//!   per-class traffic by replaying the exchange plan into a
//!   [`parallax_comm::StaticLedger`] — all before any thread spawns.
//! * [`strategy`] — the placement-strategy abstraction: five fixed
//!   recipes (pure AR, pure PS, load-balanced PS, partitioned PS, the
//!   Parallax hybrid) that each plan a verified placement for a graph
//!   on a topology, plus the searched-strategy wrapper.
//! * [`strategize`] — the deterministic greedy/local-search planner:
//!   scores candidate per-variable assignments with the static traffic
//!   replay and an (optionally trace-calibrated) `IterationSim`
//!   timing model, returns the argmin plan and a machine-readable
//!   search report (`repro plan`).
//! * [`runner`] — the `shard` / `get_runner` user API (Figure 3) and the
//!   executed-mode distributed training loop over worker threads and
//!   per-machine servers.
//! * [`analytic`] — paper-scale workload descriptions driven through the
//!   same transfer formulas and the cluster cost model to produce
//!   throughput for every evaluation table and figure.

pub mod analytic;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod hybrid;
pub mod partition;
pub mod plancheck;
pub mod protocheck;
pub mod runner;
pub mod snapshot;
pub mod sparsity;
pub mod strategize;
pub mod strategy;
pub mod transfer;
pub mod transform;

pub use config::{ArchChoice, ConfigWarning, OptimizerKind, ParallaxConfig};
pub use error::CoreError;
pub use plancheck::{check_plan, predict_iteration_traffic};
pub use protocheck::{check_fault_plan, check_session, derive_session};
pub use runner::{
    get_runner, get_runner_from_spec, get_runner_with_plan, mean_worker_losses, shard_range,
    RestorePoint, RoleAssignment, RoleOutput, RunReport, Runner,
};
pub use strategize::{plan_search, SearchReport};
pub use strategy::{fixed_strategies, Strategy, StrategyPlan};
pub use transform::DistributedPlan;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CoreError>;
