//! The hybrid architecture decision (Section 3.1).
//!
//! Dense variables go to AllReduce (symmetric network use, NCCL);
//! sparse variables go to the Parameter Server (transfer proportional
//! to `alpha`); a sparse variable whose `alpha` approaches 1 is handled
//! as dense, because NCCL's efficient bandwidth use then outweighs the
//! `1/alpha` transfer inflation.

use parallax_dataflow::Graph;
use parallax_ps::placement::SyncDecision;

use crate::config::{ArchChoice, ParallaxConfig};
use crate::sparsity::SparsityProfile;
use crate::{CoreError, Result};

/// Produces the per-variable synchronization decisions for a config.
pub fn decide(
    graph: &Graph,
    profile: &SparsityProfile,
    config: &ParallaxConfig,
    sparse_partitions: usize,
) -> Result<Vec<SyncDecision>> {
    if profile.vars.len() != graph.variables().len() {
        return Err(CoreError::Config(format!(
            "profile covers {} variables, graph has {}",
            profile.vars.len(),
            graph.variables().len()
        )));
    }
    // A variable declared in partitioner group `g` takes that group's
    // configured count when one is given; the global count otherwise.
    let partitions_for = |var: parallax_dataflow::VarId| -> usize {
        graph
            .var_def(var)
            .ok()
            .and_then(|def| def.partition_group)
            .and_then(|g| config.group_partitions.get(g).copied())
            .unwrap_or(sparse_partitions)
            .max(1)
    };
    let mut decisions: Vec<SyncDecision> = profile
        .vars
        .iter()
        .map(|v| match config.arch {
            ArchChoice::ArOnly => SyncDecision::AllReduce,
            ArchChoice::PsOnly { .. } => {
                if v.sparse {
                    SyncDecision::PsSparse {
                        partitions: partitions_for(v.var),
                    }
                } else {
                    SyncDecision::PsDense
                }
            }
            ArchChoice::Hybrid => {
                if v.sparse && v.alpha < config.alpha_dense_threshold {
                    SyncDecision::PsSparse {
                        partitions: partitions_for(v.var),
                    }
                } else {
                    SyncDecision::AllReduce
                }
            }
        })
        .collect();
    apply_overrides(graph, config, &mut decisions)?;
    Ok(decisions)
}

/// Applies `config.decision_overrides` onto the architecture rule's
/// output, validating each override. The plan verifier re-derives
/// decisions through [`decide`] with the same config, so an override
/// accepted here is consistent by construction with the `P...` checks.
fn apply_overrides(
    graph: &Graph,
    config: &ParallaxConfig,
    decisions: &mut [SyncDecision],
) -> Result<()> {
    let mut seen = std::collections::HashSet::new();
    for &(idx, d) in &config.decision_overrides {
        if idx >= decisions.len() {
            return Err(CoreError::Config(format!(
                "decision override names variable {idx}, graph has {}",
                decisions.len()
            )));
        }
        if !seen.insert(idx) {
            return Err(CoreError::Config(format!(
                "duplicate decision override for variable {idx}"
            )));
        }
        let sparse = graph.is_sparse_variable(parallax_dataflow::VarId::from_index(idx));
        match d {
            SyncDecision::AllReduce => {}
            SyncDecision::PsDense => {
                if sparse {
                    return Err(CoreError::Config(format!(
                        "variable {idx} is sparse: it must use PsSparse or AllReduce \
                         (densify), not the dense PS path"
                    )));
                }
                if config.average_dense != config.average_sparse {
                    return Err(CoreError::Config(format!(
                        "variable {idx}: hosting a dense variable on the PS requires \
                         average_dense == average_sparse (the server applies one \
                         averaging flag to everything it hosts)"
                    )));
                }
            }
            SyncDecision::PsSparse { partitions } => {
                if !sparse {
                    return Err(CoreError::Config(format!(
                        "variable {idx} is dense: it cannot take the sparse PS path"
                    )));
                }
                if partitions == 0 {
                    return Err(CoreError::Config(format!(
                        "variable {idx}: PsSparse override needs at least one partition"
                    )));
                }
            }
        }
        decisions[idx] = d;
    }
    Ok(())
}

/// Predicted per-machine bottleneck bytes for synchronizing one variable
/// under each architecture — the decision criterion the hybrid rule
/// implements in closed form. Exposed for the ablation bench comparing
/// threshold choices.
pub fn predicted_bytes(w: f64, alpha: f64, sparse: bool, machines: f64, gpus: f64) -> (f64, f64) {
    use crate::transfer;
    if sparse {
        let ps = transfer::ps_sparse_traffic(w, alpha, alpha, machines, gpus, machines, false);
        let ar = transfer::ar_sparse_traffic(w, alpha, machines, gpus);
        (ps.total_bytes(), ar.out + ar.inb)
    } else {
        let (host, _) = transfer::ps_dense_traffic(w, machines, gpus, false);
        let ar = transfer::ar_dense_traffic(w, machines, gpus);
        (host.out + host.inb, ar.out + ar.inb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::profile_from_parts;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::{VarId, VariableDef};

    fn graph() -> Graph {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [1000, 8], Init::Glorot))
            .unwrap();
        let _w = g
            .variable(VariableDef::new("w", [8, 8], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        g.add(Op::Gather { table: emb, ids }).unwrap();
        g
    }

    fn profile(alpha: f64) -> SparsityProfile {
        profile_from_parts(vec![
            (VarId::from_index(0), true, alpha, 1000, 8000),
            (VarId::from_index(1), false, 1.0, 8, 64),
        ])
    }

    #[test]
    fn hybrid_routes_by_kind() {
        let g = graph();
        let d = decide(&g, &profile(0.01), &ParallaxConfig::default(), 16).unwrap();
        assert!(matches!(d[0], SyncDecision::PsSparse { partitions: 16 }));
        assert!(matches!(d[1], SyncDecision::AllReduce));
    }

    #[test]
    fn near_dense_sparse_variable_goes_to_allreduce() {
        let g = graph();
        let d = decide(&g, &profile(0.99), &ParallaxConfig::default(), 16).unwrap();
        assert!(matches!(d[0], SyncDecision::AllReduce));
    }

    #[test]
    fn baselines_override_kind() {
        let g = graph();
        let ar = decide(&g, &profile(0.01), &ParallaxConfig::horovod_baseline(), 16).unwrap();
        assert!(ar.iter().all(|d| matches!(d, SyncDecision::AllReduce)));
        let ps = decide(&g, &profile(0.01), &ParallaxConfig::tf_ps_baseline(), 16).unwrap();
        assert!(matches!(ps[0], SyncDecision::PsSparse { .. }));
        assert!(matches!(ps[1], SyncDecision::PsDense));
    }

    #[test]
    fn predicted_bytes_favor_ps_for_sparse_ar_for_dense() {
        let (ps, ar) = predicted_bytes(4e6, 0.01, true, 8.0, 6.0);
        assert!(ps < ar, "sparse: PS should move fewer bytes");
        let (ps, ar) = predicted_bytes(4e6, 1.0, false, 8.0, 6.0);
        assert!(ar < ps, "dense: AR bottleneck is smaller than the PS host");
    }

    #[test]
    fn per_group_partition_overrides_apply() {
        let mut g = Graph::new();
        let g0 = g.open_partition_group();
        let g1 = g.open_partition_group();
        let a = g
            .variable_in_group(VariableDef::new("emb_a", [100, 4], Init::Glorot), g0)
            .unwrap();
        let b = g
            .variable_in_group(VariableDef::new("emb_b", [100, 4], Init::Glorot), g1)
            .unwrap();
        let c = g
            .variable(VariableDef::new("emb_c", [100, 4], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        for var in [a, b, c] {
            g.add(Op::Gather { table: var, ids }).unwrap();
        }
        let profile = profile_from_parts(vec![
            (a, true, 0.1, 100, 400),
            (b, true, 0.1, 100, 400),
            (c, true, 0.1, 100, 400),
        ]);
        let config = ParallaxConfig {
            group_partitions: vec![4, 32],
            ..ParallaxConfig::default()
        };
        let d = decide(&g, &profile, &config, 16).unwrap();
        assert!(matches!(d[0], SyncDecision::PsSparse { partitions: 4 }));
        assert!(matches!(d[1], SyncDecision::PsSparse { partitions: 32 }));
        // Ungrouped variables fall back to the global count.
        assert!(matches!(d[2], SyncDecision::PsSparse { partitions: 16 }));
    }

    #[test]
    fn decision_overrides_pin_variables_after_the_arch_rule() {
        let g = graph();
        let config = ParallaxConfig {
            decision_overrides: vec![
                (0, SyncDecision::PsSparse { partitions: 7 }),
                (1, SyncDecision::PsDense),
            ],
            ..ParallaxConfig::default()
        };
        let d = decide(&g, &profile(0.99), &config, 16).unwrap();
        // The alpha escape would send var 0 to AllReduce; the override wins.
        assert!(matches!(d[0], SyncDecision::PsSparse { partitions: 7 }));
        assert!(matches!(d[1], SyncDecision::PsDense));
    }

    #[test]
    fn invalid_overrides_are_rejected() {
        let g = graph();
        let reject = |overrides: Vec<(usize, SyncDecision)>, extra: fn(&mut ParallaxConfig)| {
            let mut config = ParallaxConfig {
                decision_overrides: overrides,
                ..ParallaxConfig::default()
            };
            extra(&mut config);
            decide(&g, &profile(0.01), &config, 4).unwrap_err()
        };
        // Out of range.
        reject(vec![(9, SyncDecision::AllReduce)], |_| {});
        // Duplicate.
        reject(
            vec![(0, SyncDecision::AllReduce), (0, SyncDecision::AllReduce)],
            |_| {},
        );
        // Sparse variable on the dense PS path.
        reject(vec![(0, SyncDecision::PsDense)], |_| {});
        // Dense variable on the sparse PS path.
        reject(vec![(1, SyncDecision::PsSparse { partitions: 2 })], |_| {});
        // Zero partitions.
        reject(vec![(0, SyncDecision::PsSparse { partitions: 0 })], |_| {});
        // Dense-on-PS with mismatched averaging flags.
        reject(vec![(1, SyncDecision::PsDense)], |c| {
            c.average_dense = false;
        });
    }

    #[test]
    fn profile_size_mismatch_rejected() {
        let g = graph();
        let short = profile_from_parts(vec![(VarId::from_index(0), true, 0.1, 10, 80)]);
        assert!(decide(&g, &short, &ParallaxConfig::default(), 4).is_err());
    }
}
