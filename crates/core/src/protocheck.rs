//! Protocol session checker: derives and verifies the wire-protocol
//! session machine of a verified plan (`C001`–`C008`).
//!
//! [`derive_session`] lifts the ad-hoc conventions connecting
//! `ps::protocol`, the PS client/server choreography and the runner's
//! collective schedule into one typed artifact: a
//! [`parallax_comm::protocheck::SessionSpec`] listing, for one
//! steady-state iteration, every message identity each link may carry —
//! with multiplicities derived from the *sender's* program (client
//! choreography, ring algebra) and cross-checkable against the
//! *receiver's* synchronization arithmetic (the server's
//! outstanding-message formula).
//!
//! [`check_session`] is the static pass, run from
//! [`crate::plancheck::build_verified_plan`] next to the plan passes:
//!
//! * `C001` — send/receive pairing: every event's sender-derived and
//!   receiver-derived multiplicities agree, and per-shard request
//!   totals match an independent re-derivation of the server's
//!   per-iteration quota;
//! * `C002` — reply obligations: every pull/read/fetch request is
//!   discharged by exactly one correctly-addressed response event, and
//!   synchronous shards notify every worker;
//! * `C003` — cross-phase leakage: no two events share a full wire
//!   identity (link + namespace + kind + variable + partition);
//! * `C004` — deadlock freedom: the per-iteration wait-for graph
//!   (program-order and reply edges) is acyclic;
//! * `C005` — dedup safety: non-idempotent request kinds are covered by
//!   the server's at-most-once guard and duplicated pulls are caught by
//!   the exact-count guard;
//! * `C006` — fault readiness: a fault plan that can drop messages or
//!   kill peers requires the receive deadline to be armed;
//! * `C007` — publish discipline: `FetchShard` only from the chief, only
//!   at checkpoint boundaries, ordered after update application;
//! * `C008` — well-formedness of the spec itself (rank/var/part ranges,
//!   self-loops, zero multiplicities, dangling references).
//!
//! The same spec compiles into a
//! [`parallax_comm::protocheck::SessionValidator`] that the runner
//! installs on every endpoint in debug builds (and whenever
//! `validate_protocol` is set), turning runtime protocol drift into a
//! typed `CommError::Protocol`.

use std::collections::{HashMap, HashSet};

use parallax_comm::protocheck::{
    MsgEvent, Phase, SessionSpec, WireKind, KIND_CHIEF_UPDATE, KIND_FETCH_SHARD, KIND_PULL_DENSE,
    KIND_PULL_SPARSE, KIND_PUSH_DENSE, KIND_PUSH_SPARSE, KIND_READ_AGG, KIND_UPDATE_DONE,
    MAX_HEADER_PARTS, MAX_HEADER_VARS,
};
use parallax_dataflow::verify::{DiagCode, Diagnostic, VerifyReport};
use parallax_dataflow::Graph;
use parallax_fault::{FaultAction, FaultPlan};
use parallax_ps::{PsTopology, VarPlacement};

use crate::config::ParallaxConfig;
use crate::plancheck::shard_coords;
use crate::transform::DistributedPlan;
use crate::{CoreError, Result};

/// The effective checkpoint/snapshot interval of a configuration:
/// `checkpoint_interval` when a checkpoint or serving-snapshot path is
/// configured under synchronous training, else 0 (disabled). The
/// runner's workers, the servers' barrier arithmetic and the session
/// machine's boundary events must all agree on this value, so they all
/// derive it from here.
pub(crate) fn effective_checkpoint_interval(config: &ParallaxConfig) -> usize {
    let persists = config.checkpoint_path.is_some() || config.snapshot_path.is_some();
    if persists && config.synchronous {
        config.checkpoint_interval
    } else {
        0
    }
}

/// All request kinds the server's `seen_once` guard deduplicates (every
/// non-pull kind; pulls are instead protected by the exact-count guard).
fn guarded_kinds() -> Vec<u8> {
    vec![
        KIND_PUSH_DENSE,
        KIND_PUSH_SPARSE,
        KIND_CHIEF_UPDATE,
        KIND_READ_AGG,
        KIND_FETCH_SHARD,
    ]
}

#[allow(clippy::too_many_arguments)] // every field of the event identity is load-bearing
fn base_event(
    phase: Phase,
    from: usize,
    to: usize,
    kind: WireKind,
    var: usize,
    part: usize,
    mult: u64,
    label: String,
) -> MsgEvent {
    MsgEvent {
        phase,
        from,
        to,
        kind,
        var,
        part,
        sends: mult,
        recvs: mult,
        tag_uses: 1,
        boundary_only: false,
        blocking: true,
        reply_of: None,
        deps: Vec::new(),
        label,
    }
}

/// Derives the per-iteration session machine of a verified plan: every
/// message identity the runner's workers and servers exchange in one
/// steady-state iteration, plus the checkpoint-boundary publish events.
///
/// The derivation walks the plan's placements and sync-op schedule the
/// way the runner's worker loop does (pull → exchange → local-agg →
/// push → trigger → notify → trace-read → publish), so the resulting
/// spec is exactly the allowed-set the live protocol inhabits.
pub fn derive_session(
    graph: &Graph,
    config: &ParallaxConfig,
    topo: &PsTopology,
    plan: &DistributedPlan,
) -> Result<SessionSpec> {
    let workers = topo.worker_ranks();
    let nworkers = workers.len();
    let machines = topo.num_machines();
    let chief = topo.chief();
    let servers: Vec<usize> = (0..machines).map(|m| topo.server_rank(m)).collect();
    let sync = config.synchronous;
    let local_agg = config.local_aggregation && sync;
    let chief_trig = config.chief_triggers_update && sync;
    let trace = config.trace_gradients && sync;
    let interval = effective_checkpoint_interval(config);
    let name_of = |var: usize| -> String {
        graph
            .variables()
            .get(var)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("#{var}"))
    };

    let mut events: Vec<MsgEvent> = Vec::new();
    // Dependency bookkeeping, keyed by rank or by shard coordinate
    // (server rank, var, part). Events are appended in worker program
    // order, so dependencies always point backwards and the derived
    // wait-for graph is acyclic by construction.
    let mut pull_resps: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut pull_reqs_of_shard: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    let mut coll_of: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut lagg_recv: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut push_of: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut push_to_shard: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    let mut trigger_of_shard: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut done_to: HashMap<usize, Vec<usize>> = HashMap::new();

    let ps_vars = plan.ps_vars();
    let ar_vars = plan.ar_vars();
    let gatherv: HashSet<usize> = plan.gatherv_vars().iter().map(|v| v.index()).collect();

    // ---- Pull phase ---------------------------------------------------
    for &var in &ps_vars {
        let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
        let v = var.index();
        match placement {
            VarPlacement::AllReduce => {}
            VarPlacement::PsDense { server } => {
                let srv = topo.server_rank(*server);
                for &w in &workers {
                    let req = base_event(
                        Phase::Pull,
                        w,
                        srv,
                        WireKind::Request(KIND_PULL_DENSE),
                        v,
                        0,
                        1,
                        format!("worker {w} pulls '{}'", name_of(v)),
                    );
                    events.push(req);
                    let req_idx = events.len() - 1;
                    pull_reqs_of_shard
                        .entry((srv, v, 0))
                        .or_default()
                        .push(req_idx);
                    let mut resp = base_event(
                        Phase::Pull,
                        srv,
                        w,
                        WireKind::Response(KIND_PULL_DENSE),
                        v,
                        0,
                        1,
                        format!("server {srv} serves '{}' to worker {w}", name_of(v)),
                    );
                    resp.reply_of = Some(req_idx);
                    resp.deps = vec![req_idx];
                    events.push(resp);
                    pull_resps.entry(w).or_default().push(events.len() - 1);
                }
            }
            VarPlacement::PsSparse { partition, servers } => {
                // One `PullSparse` per gather node per partition per
                // worker — the server counts `workers * gathers` into its
                // per-shard quota, empty id lists included. All requests
                // of one worker to one shard share the response tag, so
                // the reply event carries `tag_uses = gathers`.
                let gathers = graph.gather_nodes_of(var).len().max(1) as u64;
                for (p, &machine) in servers.iter().enumerate().take(partition.parts()) {
                    let srv = topo.server_rank(machine);
                    for &w in &workers {
                        let req = base_event(
                            Phase::Pull,
                            w,
                            srv,
                            WireKind::Request(KIND_PULL_SPARSE),
                            v,
                            p,
                            gathers,
                            format!("worker {w} pulls rows of '{}' part {p}", name_of(v)),
                        );
                        events.push(req);
                        let req_idx = events.len() - 1;
                        pull_reqs_of_shard
                            .entry((srv, v, p))
                            .or_default()
                            .push(req_idx);
                        let mut resp = base_event(
                            Phase::Pull,
                            srv,
                            w,
                            WireKind::Response(KIND_PULL_SPARSE),
                            v,
                            p,
                            gathers,
                            format!(
                                "server {srv} serves rows of '{}' part {p} to worker {w}",
                                name_of(v)
                            ),
                        );
                        resp.tag_uses = gathers;
                        resp.reply_of = Some(req_idx);
                        resp.deps = vec![req_idx];
                        events.push(resp);
                        pull_resps.entry(w).or_default().push(events.len() - 1);
                    }
                }
            }
        }
    }

    // ---- Exchange phase: ring collectives -----------------------------
    if nworkers > 1 {
        for &var in &ar_vars {
            let v = var.index();
            for i in 0..nworkers {
                let from = workers[i];
                let to = workers[(i + 1) % nworkers];
                // Ring AllReduce: 2(N-1) steps, every step each worker
                // sends one chunk to ring-next under one reused tag.
                let steps = 2 * (nworkers as u64 - 1);
                let mut e = base_event(
                    Phase::Exchange,
                    from,
                    to,
                    WireKind::Collective,
                    v,
                    0,
                    steps,
                    format!("AllReduce ring step for '{}'", name_of(v)),
                );
                e.tag_uses = steps;
                e.deps = pull_resps.get(&from).cloned().unwrap_or_default();
                events.push(e);
                coll_of.entry(from).or_default().push(events.len() - 1);
                if gatherv.contains(&v) {
                    // The same variable rides AllGatherv when its
                    // gradient arrives sparse (pure-AR mode): N-1 ring
                    // steps under the MPI-classified tag.
                    let steps = nworkers as u64 - 1;
                    let mut e = base_event(
                        Phase::Exchange,
                        from,
                        to,
                        WireKind::Gatherv,
                        v,
                        0,
                        steps,
                        format!("AllGatherv ring step for '{}'", name_of(v)),
                    );
                    e.tag_uses = steps;
                    e.deps = pull_resps.get(&from).cloned().unwrap_or_default();
                    events.push(e);
                    coll_of.entry(from).or_default().push(events.len() - 1);
                }
            }
        }
    }

    // ---- Local aggregation --------------------------------------------
    // Sparse variables only: dense PS gradients always push per worker
    // so the server can replay the ring fold order.
    if local_agg {
        for &var in &ps_vars {
            if !graph.is_sparse_variable(var) {
                continue;
            }
            let v = var.index();
            for m in 0..machines {
                let lchief = topo.local_chief(m);
                for &w in &topo.workers_of(m) {
                    if w == lchief {
                        continue;
                    }
                    let mut e = base_event(
                        Phase::LocalAgg,
                        w,
                        lchief,
                        WireKind::LocalAgg,
                        v,
                        0,
                        1,
                        format!("worker {w} ships '{}' to local chief {lchief}", name_of(v)),
                    );
                    let mut deps = pull_resps.get(&w).cloned().unwrap_or_default();
                    deps.extend(coll_of.get(&w).cloned().unwrap_or_default());
                    e.deps = deps;
                    events.push(e);
                    lagg_recv.entry(lchief).or_default().push(events.len() - 1);
                }
            }
        }
    }

    // ---- Push phase ---------------------------------------------------
    // Pusher set per variable: machine chiefs for locally-aggregated
    // (sparse) variables, every worker otherwise.
    let chief_pushers: Vec<usize> = (0..machines).map(|m| topo.local_chief(m)).collect();
    for &var in &ps_vars {
        let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
        let v = var.index();
        let kind = match placement {
            VarPlacement::PsDense { .. } => KIND_PUSH_DENSE,
            VarPlacement::PsSparse { .. } => KIND_PUSH_SPARSE,
            VarPlacement::AllReduce => continue,
        };
        let pushers: &[usize] = if local_agg && graph.is_sparse_variable(var) {
            &chief_pushers
        } else {
            &workers
        };
        for (m, p) in shard_coords(placement) {
            let srv = topo.server_rank(m);
            for &pusher in pushers {
                let mut e = base_event(
                    Phase::Push,
                    pusher,
                    srv,
                    WireKind::Request(kind),
                    v,
                    p,
                    1,
                    format!("rank {pusher} pushes '{}' part {p}", name_of(v)),
                );
                e.blocking = sync;
                let mut deps = pull_resps.get(&pusher).cloned().unwrap_or_default();
                deps.extend(coll_of.get(&pusher).cloned().unwrap_or_default());
                deps.extend(lagg_recv.get(&pusher).cloned().unwrap_or_default());
                e.deps = deps;
                events.push(e);
                let idx = events.len() - 1;
                push_of.entry(pusher).or_default().push(idx);
                push_to_shard.entry((srv, v, p)).or_default().push(idx);
            }
        }
    }

    // ---- Chief trigger ------------------------------------------------
    if chief_trig {
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            let v = var.index();
            for (m, p) in shard_coords(placement) {
                let srv = topo.server_rank(m);
                let mut e = base_event(
                    Phase::Trigger,
                    chief,
                    srv,
                    WireKind::Request(KIND_CHIEF_UPDATE),
                    v,
                    p,
                    1,
                    format!("chief triggers update of '{}' part {p}", name_of(v)),
                );
                e.deps = push_of.get(&chief).cloned().unwrap_or_default();
                events.push(e);
                trigger_of_shard.insert((srv, v, p), events.len() - 1);
            }
        }
    }

    // ---- Update notifications -----------------------------------------
    if sync {
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            let v = var.index();
            for (m, p) in shard_coords(placement) {
                let srv = topo.server_rank(m);
                // The server applies once its quota for the shard is met:
                // all pulls served, all pushes in, the chief trigger seen.
                let mut shard_deps: Vec<usize> = pull_reqs_of_shard
                    .get(&(srv, v, p))
                    .cloned()
                    .unwrap_or_default();
                shard_deps.extend(push_to_shard.get(&(srv, v, p)).cloned().unwrap_or_default());
                let trigger = trigger_of_shard.get(&(srv, v, p)).copied();
                shard_deps.extend(trigger);
                for &w in &workers {
                    let mut e = base_event(
                        Phase::Notify,
                        srv,
                        w,
                        WireKind::Response(KIND_UPDATE_DONE),
                        v,
                        p,
                        1,
                        format!("server {srv} notifies worker {w}: '{}' applied", name_of(v)),
                    );
                    e.reply_of = trigger;
                    e.deps = shard_deps.clone();
                    events.push(e);
                    done_to.entry(w).or_default().push(events.len() - 1);
                }
            }
        }
    }

    // ---- Trace reads --------------------------------------------------
    if trace {
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            let v = var.index();
            for (m, p) in shard_coords(placement) {
                let srv = topo.server_rank(m);
                for &w in &workers {
                    let mut req = base_event(
                        Phase::TraceRead,
                        w,
                        srv,
                        WireKind::Request(KIND_READ_AGG),
                        v,
                        p,
                        1,
                        format!("worker {w} reads aggregate of '{}' part {p}", name_of(v)),
                    );
                    req.deps = done_to.get(&w).cloned().unwrap_or_default();
                    events.push(req);
                    let req_idx = events.len() - 1;
                    let mut resp = base_event(
                        Phase::TraceRead,
                        srv,
                        w,
                        WireKind::Response(KIND_READ_AGG),
                        v,
                        p,
                        1,
                        format!(
                            "server {srv} serves aggregate of '{}' part {p} to worker {w}",
                            name_of(v)
                        ),
                    );
                    resp.reply_of = Some(req_idx);
                    resp.deps = vec![req_idx];
                    events.push(resp);
                }
            }
        }
    }

    // ---- Checkpoint-boundary publish ----------------------------------
    if interval > 0 {
        for &var in &ps_vars {
            let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
            let v = var.index();
            for (m, p) in shard_coords(placement) {
                let srv = topo.server_rank(m);
                let mut req = base_event(
                    Phase::Publish,
                    chief,
                    srv,
                    WireKind::Request(KIND_FETCH_SHARD),
                    v,
                    p,
                    1,
                    format!("chief fetches '{}' part {p} for checkpoint", name_of(v)),
                );
                req.boundary_only = true;
                req.deps = done_to.get(&chief).cloned().unwrap_or_default();
                events.push(req);
                let req_idx = events.len() - 1;
                // The server replies with the shard value and its
                // optimizer slot state: two messages FIFO-ordered under
                // one response tag, only after the update applied.
                let mut resp = base_event(
                    Phase::Publish,
                    srv,
                    chief,
                    WireKind::Response(KIND_FETCH_SHARD),
                    v,
                    p,
                    2,
                    format!("server {srv} ships '{}' part {p} to the chief", name_of(v)),
                );
                resp.boundary_only = true;
                resp.tag_uses = 2;
                resp.reply_of = Some(req_idx);
                let mut deps = vec![req_idx];
                deps.extend(
                    done_to
                        .get(&chief)
                        .into_iter()
                        .flatten()
                        .copied()
                        .filter(|&i| events[i].from == srv && events[i].var == v),
                );
                resp.deps = deps;
                events.push(resp);
            }
        }
    }

    Ok(SessionSpec {
        ranks: topo.num_endpoints(),
        chief,
        workers,
        servers,
        sync,
        checkpoint_interval: interval,
        deadline_armed: config.recv_deadline.is_some(),
        pull_exact_count: true,
        dedup_guarded: guarded_kinds(),
        events,
    })
}

/// Independent re-derivation of the server's per-iteration request
/// quota: for each shard `(server rank, kind, var, part)`, how many
/// requests the server's synchronization arithmetic counts into its
/// barrier. This intentionally mirrors `ps::server`'s outstanding
/// formula — not the client's send loops — so `C001` cross-checks the
/// two sides of the protocol against each other.
fn expected_server_requests(
    graph: &Graph,
    config: &ParallaxConfig,
    topo: &PsTopology,
    plan: &DistributedPlan,
) -> Result<HashMap<(usize, u8, usize, usize), u64>> {
    let workers = topo.num_workers() as u64;
    let machines = topo.num_machines() as u64;
    let sync = config.synchronous;
    let local_agg = config.local_aggregation && sync;
    let chief_trig = config.chief_triggers_update && sync;
    let trace = config.trace_gradients && sync;
    let interval = effective_checkpoint_interval(config);
    let mut expected = HashMap::new();
    for &var in &plan.ps_vars() {
        let placement = plan.plan.placement(var).map_err(CoreError::Ps)?;
        let v = var.index();
        let sparse = matches!(placement, VarPlacement::PsSparse { .. });
        let gathers = graph.gather_nodes_of(var).len().max(1) as u64;
        let pulls = if sparse { workers * gathers } else { workers };
        let pull_kind = if sparse {
            KIND_PULL_SPARSE
        } else {
            KIND_PULL_DENSE
        };
        let push_kind = if sparse {
            KIND_PUSH_SPARSE
        } else {
            KIND_PUSH_DENSE
        };
        // Local aggregation is sparse-only: dense shards always take one
        // push per worker (ring-ordered accumulator).
        let pushes = if local_agg && graph.is_sparse_variable(var) {
            machines
        } else {
            workers
        };
        for (m, p) in shard_coords(placement) {
            let srv = topo.server_rank(m);
            expected.insert((srv, pull_kind, v, p), pulls);
            expected.insert((srv, push_kind, v, p), pushes);
            if chief_trig {
                expected.insert((srv, KIND_CHIEF_UPDATE, v, p), 1);
            }
            if trace {
                expected.insert((srv, KIND_READ_AGG, v, p), workers);
            }
            if interval > 0 {
                expected.insert((srv, KIND_FETCH_SHARD, v, p), 1);
            }
        }
    }
    Ok(expected)
}

/// Statically verifies a session spec against the plan it claims to
/// describe. Emits `C001`–`C008`; pure analysis, never panics on a
/// malformed spec.
pub fn check_session(
    graph: &Graph,
    config: &ParallaxConfig,
    topo: &PsTopology,
    plan: &DistributedPlan,
    spec: &SessionSpec,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    let n = spec.events.len();

    // ---- C008: well-formedness ----------------------------------------
    let mut malformed = vec![false; n];
    for (i, e) in spec.events.iter().enumerate() {
        let mut bad = |msg: String| {
            report.push(Diagnostic::error(DiagCode::C008, msg).for_var(e.var));
            malformed[i] = true;
        };
        if e.from >= spec.ranks || e.to >= spec.ranks {
            bad(format!(
                "event [{i}] '{}' uses rank {} -> {} outside the session's {} ranks",
                e.label, e.from, e.to, spec.ranks
            ));
        }
        if e.from == e.to {
            bad(format!("event [{i}] '{}' is a self-loop", e.label));
        }
        if e.var > MAX_HEADER_VARS || e.part > MAX_HEADER_PARTS {
            bad(format!(
                "event [{i}] '{}' targets var {} part {} beyond the wire header's \
                 {MAX_HEADER_VARS}/{MAX_HEADER_PARTS} capacity",
                e.label, e.var, e.part
            ));
        }
        if e.sends == 0 || e.recvs == 0 || e.tag_uses == 0 {
            bad(format!(
                "event [{i}] '{}' has zero multiplicity (sends {}, recvs {}, tag uses {})",
                e.label, e.sends, e.recvs, e.tag_uses
            ));
        }
        if let Some(r) = e.reply_of {
            if r >= n || r == i {
                bad(format!(
                    "event [{i}] '{}' replies to nonexistent event {r}",
                    e.label
                ));
            }
        }
        if e.deps.iter().any(|&d| d >= n) {
            bad(format!(
                "event [{i}] '{}' depends on a nonexistent event",
                e.label
            ));
        }
    }

    // ---- C003: cross-phase leakage ------------------------------------
    let mut by_identity: HashMap<(usize, usize, WireKind, usize, usize), Vec<usize>> =
        HashMap::new();
    for (i, e) in spec.events.iter().enumerate() {
        by_identity.entry(e.identity()).or_default().push(i);
    }
    for (identity, idxs) in &by_identity {
        if idxs.len() > 1 {
            let labels: Vec<&str> = idxs
                .iter()
                .map(|&i| spec.events[i].label.as_str())
                .collect();
            report.push(
                Diagnostic::error(
                    DiagCode::C003,
                    format!(
                        "{} distinct events share wire identity {} -> {} {} var {} part {} \
                         ({labels:?}): messages of one would be accepted as the other",
                        idxs.len(),
                        identity.0,
                        identity.1,
                        identity.2.describe(),
                        identity.3,
                        identity.4
                    ),
                )
                .for_var(identity.3),
            );
        }
    }

    // ---- C001: send/recv pairing --------------------------------------
    for (i, e) in spec.events.iter().enumerate() {
        if malformed[i] {
            continue;
        }
        if e.sends != e.recvs {
            report.push(
                Diagnostic::error(
                    DiagCode::C001,
                    format!(
                        "event [{i}] '{}': the sender's program sends {} message(s) per \
                         iteration but the receiver accounts for {}",
                        e.label, e.sends, e.recvs
                    ),
                )
                .for_var(e.var),
            );
        }
    }
    match expected_server_requests(graph, config, topo, plan) {
        Ok(expected) => {
            let mut actual: HashMap<(usize, u8, usize, usize), u64> = HashMap::new();
            for e in &spec.events {
                if let WireKind::Request(k) = e.kind {
                    *actual.entry((e.to, k, e.var, e.part)).or_insert(0) += e.sends;
                }
            }
            for (key, &want) in &expected {
                let got = actual.get(key).copied().unwrap_or(0);
                if got != want {
                    report.push(
                        Diagnostic::error(
                            DiagCode::C001,
                            format!(
                                "server {} expects {want} {} request(s) for var {} part {} per \
                                 iteration, but the session sends {got}",
                                key.0,
                                WireKind::Request(key.1).describe(),
                                key.2,
                                key.3
                            ),
                        )
                        .for_var(key.2),
                    );
                }
            }
            for (key, &got) in &actual {
                if !expected.contains_key(key) && spec.servers.contains(&key.0) {
                    report.push(
                        Diagnostic::error(
                            DiagCode::C001,
                            format!(
                                "the session sends {got} {} request(s) for var {} part {} to \
                                 server {}, which counts none into its barrier",
                                WireKind::Request(key.1).describe(),
                                key.2,
                                key.3,
                                key.0
                            ),
                        )
                        .for_var(key.2),
                    );
                }
            }
        }
        Err(e) => {
            report.push(Diagnostic::error(
                DiagCode::C001,
                format!("server quota cannot be re-derived: {e}"),
            ));
        }
    }

    // ---- C002: reply obligations --------------------------------------
    let mut replies_to: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, e) in spec.events.iter().enumerate() {
        if let Some(r) = e.reply_of {
            if r < n {
                replies_to.entry(r).or_default().push(i);
            }
        }
    }
    for (i, e) in spec.events.iter().enumerate() {
        if malformed[i] {
            continue;
        }
        let WireKind::Request(k) = e.kind else {
            // A response that discharges nothing (and is not an
            // UpdateDone broadcast, which replies to pushes collectively)
            // is drift: nobody is waiting for it.
            if let WireKind::Response(rk) = e.kind {
                if e.reply_of.is_none() && rk != KIND_UPDATE_DONE {
                    report.push(
                        Diagnostic::error(
                            DiagCode::C002,
                            format!(
                                "event [{i}] '{}' is a response that discharges no request",
                                e.label
                            ),
                        )
                        .for_var(e.var),
                    );
                }
            }
            continue;
        };
        if !matches!(
            k,
            KIND_PULL_DENSE | KIND_PULL_SPARSE | KIND_READ_AGG | KIND_FETCH_SHARD
        ) {
            continue;
        }
        let replies = replies_to.get(&i).cloned().unwrap_or_default();
        if replies.len() != 1 {
            report.push(
                Diagnostic::error(
                    DiagCode::C002,
                    format!(
                        "request [{i}] '{}' obliges exactly one reply; the session has {}",
                        e.label,
                        replies.len()
                    ),
                )
                .for_var(e.var),
            );
            continue;
        }
        let r = &spec.events[replies[0]];
        let want_kind = WireKind::Response(k);
        if r.from != e.to
            || r.to != e.from
            || r.kind != want_kind
            || r.var != e.var
            || r.part != e.part
        {
            report.push(
                Diagnostic::error(
                    DiagCode::C002,
                    format!(
                        "reply '{}' is mis-paired with request [{i}] '{}': expected {} \
                         {} -> {} var {} part {}, got {} {} -> {} var {} part {}",
                        r.label,
                        e.label,
                        want_kind.describe(),
                        e.to,
                        e.from,
                        e.var,
                        e.part,
                        r.kind.describe(),
                        r.from,
                        r.to,
                        r.var,
                        r.part
                    ),
                )
                .for_var(e.var),
            );
        }
        if k == KIND_FETCH_SHARD && r.tag_uses != 2 {
            report.push(
                Diagnostic::error(
                    DiagCode::C002,
                    format!(
                        "FetchShard reply '{}' must carry two messages under one tag (value + \
                         optimizer state), but models {}",
                        r.label, r.tag_uses
                    ),
                )
                .for_var(e.var),
            );
        }
    }
    // Synchronous shards must notify every worker, or `await_update_done`
    // blocks forever.
    if spec.sync {
        let mut done_counts: HashMap<(usize, usize, usize), HashSet<usize>> = HashMap::new();
        let mut shards: HashSet<(usize, usize, usize)> = HashSet::new();
        for e in &spec.events {
            match e.kind {
                WireKind::Request(KIND_PUSH_DENSE | KIND_PUSH_SPARSE) => {
                    shards.insert((e.to, e.var, e.part));
                }
                WireKind::Response(KIND_UPDATE_DONE) => {
                    done_counts
                        .entry((e.from, e.var, e.part))
                        .or_default()
                        .insert(e.to);
                }
                _ => {}
            }
        }
        for shard in &shards {
            let notified = done_counts.get(shard).map(HashSet::len).unwrap_or(0);
            if notified != spec.workers.len() {
                report.push(
                    Diagnostic::error(
                        DiagCode::C002,
                        format!(
                            "synchronous shard var {} part {} on server {} notifies \
                             {notified}/{} workers: the rest block forever in \
                             await_update_done",
                            shard.1,
                            shard.2,
                            shard.0,
                            spec.workers.len()
                        ),
                    )
                    .for_var(shard.1),
                );
            }
        }
    }

    // ---- C004: deadlock freedom ---------------------------------------
    if let Some(cycle) = find_cycle(spec) {
        let path: Vec<String> = cycle
            .iter()
            .map(|&i| format!("[{i}] {}", spec.events[i].label))
            .collect();
        report.push(Diagnostic::error(
            DiagCode::C004,
            format!(
                "the per-iteration wait-for graph has a cycle — every participant waits on \
                 the next: {}",
                path.join(" -> ")
            ),
        ));
    }

    // ---- C005: dedup safety -------------------------------------------
    let mut flagged: HashSet<u8> = HashSet::new();
    for e in &spec.events {
        if let Some(k) = e.kind.non_idempotent_request() {
            if !spec.dedup_guarded.contains(&k) && flagged.insert(k) {
                report.push(
                    Diagnostic::error(
                        DiagCode::C005,
                        format!(
                            "{} is not idempotent and not covered by the server's \
                             at-most-once guard: a duplicated message would double-apply",
                            e.kind.describe()
                        ),
                    )
                    .for_var(e.var),
                );
            }
        }
    }
    if !spec.pull_exact_count
        && spec.events.iter().any(|e| {
            matches!(
                e.kind,
                WireKind::Request(KIND_PULL_DENSE) | WireKind::Request(KIND_PULL_SPARSE)
            )
        })
    {
        report.push(Diagnostic::error(
            DiagCode::C005,
            "the exact pull-count guard is disabled: a duplicated pull would silently skew \
             the server's synchronization barrier instead of raising a typed error"
                .to_string(),
        ));
    }

    // ---- C005/C006 under the configured fault plan --------------------
    report.merge(check_fault_plan(spec, &config.fault_plan));

    // ---- C007: publish discipline -------------------------------------
    for (i, e) in spec.events.iter().enumerate() {
        if malformed[i] {
            continue;
        }
        let is_fetch_req = e.kind == WireKind::Request(KIND_FETCH_SHARD);
        let is_fetch_resp = e.kind == WireKind::Response(KIND_FETCH_SHARD);
        if !is_fetch_req && !is_fetch_resp {
            continue;
        }
        if spec.checkpoint_interval == 0 {
            report.push(
                Diagnostic::error(
                    DiagCode::C007,
                    format!(
                        "event [{i}] '{}' publishes artifacts, but the session has no \
                         checkpoint interval",
                        e.label
                    ),
                )
                .for_var(e.var),
            );
            continue;
        }
        if !e.boundary_only {
            report.push(
                Diagnostic::error(
                    DiagCode::C007,
                    format!(
                        "event [{i}] '{}' is a shard fetch not gated on checkpoint-boundary \
                         iterations: servers would count an unexpected message into every \
                         iteration's barrier",
                        e.label
                    ),
                )
                .for_var(e.var),
            );
        }
        if is_fetch_req && e.from != spec.chief {
            report.push(
                Diagnostic::error(
                    DiagCode::C007,
                    format!(
                        "event [{i}] '{}': only the chief (rank {}) publishes artifacts, \
                         but rank {} sends FetchShard",
                        e.label, spec.chief, e.from
                    ),
                )
                .for_var(e.var),
            );
        }
        if is_fetch_req && spec.sync {
            let ordered = e
                .deps
                .iter()
                .any(|&d| d < n && spec.events[d].phase == Phase::Notify);
            if !ordered {
                report.push(
                    Diagnostic::error(
                        DiagCode::C007,
                        format!(
                            "event [{i}] '{}' is not ordered after update application \
                             (no UpdateDone dependency): it could snapshot pre-update values",
                            e.label
                        ),
                    )
                    .for_var(e.var),
                );
            }
        }
    }

    report
}

/// Fault-plan-specific session analysis, also folded into
/// [`check_session`]:
///
/// * `C005` — a `DuplicateMessage` fault on a link whose events reuse
///   one tag for multiple messages (ring steps, multi-message replies)
///   silently corrupts the FIFO stream: the receiver cannot tell the
///   duplicate from the next legitimate message;
/// * `C006` — a fault plan that can drop messages or kill peers with the
///   receive deadline disarmed converts every such fault into an
///   undetectable hang instead of a typed, recoverable error.
pub fn check_fault_plan(spec: &SessionSpec, faults: &FaultPlan) -> VerifyReport {
    let mut report = VerifyReport::new();
    let mut lossy = false;
    for action in faults.actions() {
        match action {
            FaultAction::DropMessage { .. }
            | FaultAction::KillWorker { .. }
            | FaultAction::KillServer { .. } => {
                lossy = true;
            }
            FaultAction::DuplicateMessage { from, to, .. } => {
                if let Some(e) = spec
                    .events
                    .iter()
                    .find(|e| e.from == *from && e.to == *to && e.tag_uses > 1)
                {
                    report.push(
                        Diagnostic::error(
                            DiagCode::C005,
                            format!(
                                "the fault plan duplicates a message on link {from} -> {to}, \
                                 whose event '{}' reuses one tag for {} messages: the \
                                 duplicate would merge into the FIFO stream undetected",
                                e.label, e.tag_uses
                            ),
                        )
                        .for_var(e.var),
                    );
                }
            }
            _ => {}
        }
    }
    if lossy && !spec.deadline_armed {
        report.push(Diagnostic::error(
            DiagCode::C006,
            "the fault plan can drop messages or kill peers, but the receive deadline is \
             disarmed: blocked receivers would hang forever instead of surfacing a typed, \
             recoverable failure"
                .to_string(),
        ));
    }
    report
}

/// Finds a cycle in the wait-for graph (dep and reply edges), if any.
/// Returns the events along one cycle, in order.
fn find_cycle(spec: &SessionSpec) -> Option<Vec<usize>> {
    let n = spec.events.len();
    let edges: Vec<Vec<usize>> = spec
        .events
        .iter()
        .map(|e| {
            let mut out: Vec<usize> = e.deps.iter().copied().filter(|&d| d < n).collect();
            if let Some(r) = e.reply_of {
                if r < n {
                    out.push(r);
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    // Iterative three-color DFS; a back edge to a gray node is a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = Color::Gray;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            if *cursor < edges[node].len() {
                let next = edges[node][*cursor];
                *cursor += 1;
                match color[next] {
                    Color::White => {
                        color[next] = Color::Gray;
                        parent[next] = Some(node);
                        stack.push((next, 0));
                    }
                    Color::Gray => {
                        // Unwind the parent chain from `node` back to
                        // `next` to render the cycle.
                        let mut cycle = vec![next];
                        let mut cur = node;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[cur].expect("gray nodes have parents on the stack");
                        }
                        cycle.push(next);
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchChoice;
    use crate::sparsity::profile_from_parts;
    use crate::transform::transform;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::{NodeId, VariableDef};

    fn model() -> (Graph, NodeId, crate::sparsity::SparsityProfile) {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [12, 4], Init::Glorot))
            .unwrap();
        let w = g
            .variable(VariableDef::new("w", [4, 2], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        let gathered = g.add(Op::Gather { table: emb, ids }).unwrap();
        let wn = g.add(Op::Variable(w)).unwrap();
        let h = g.add(Op::MatMul(gathered, wn)).unwrap();
        let loss = g.add(Op::MeanAll(h)).unwrap();
        let profile = profile_from_parts(vec![(emb, true, 0.25, 12, 48), (w, false, 1.0, 4, 8)]);
        (g, loss, profile)
    }

    fn derive(config: &ParallaxConfig) -> (Graph, PsTopology, DistributedPlan, SessionSpec) {
        let (g, _loss, profile) = model();
        let topo = PsTopology::uniform(2, 2).unwrap();
        let plan = transform(&g, &profile, config, 2, 4, 2).unwrap();
        let spec = derive_session(&g, config, &topo, &plan).unwrap();
        (g, topo, plan, spec)
    }

    #[test]
    fn hybrid_session_checks_cleanly() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, spec) = derive(&config);
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(!report.has_errors(), "{}", report.render());
        // The hybrid model has both collective and PS traffic.
        assert!(spec.events.iter().any(|e| e.kind == WireKind::Collective));
        assert!(spec
            .events
            .iter()
            .any(|e| matches!(e.kind, WireKind::Request(_))));
    }

    #[test]
    fn pure_ar_session_checks_cleanly() {
        let config = ParallaxConfig::horovod_baseline();
        let (g, topo, plan, spec) = derive(&config);
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(!report.has_errors(), "{}", report.render());
        assert!(spec
            .events
            .iter()
            .all(|e| !matches!(e.kind, WireKind::Request(_))));
        assert!(spec.events.iter().any(|e| e.kind == WireKind::Gatherv));
    }

    #[test]
    fn boundary_session_includes_gated_fetches() {
        let config = ParallaxConfig {
            checkpoint_path: Some(std::path::PathBuf::from("/tmp/ck.bin")),
            checkpoint_interval: 2,
            ..ParallaxConfig::default()
        };
        let (g, topo, plan, spec) = derive(&config);
        assert_eq!(spec.checkpoint_interval, 2);
        let fetches: Vec<_> = spec
            .events
            .iter()
            .filter(|e| e.kind == WireKind::Request(KIND_FETCH_SHARD))
            .collect();
        assert!(!fetches.is_empty());
        assert!(fetches
            .iter()
            .all(|e| e.boundary_only && e.from == spec.chief));
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn async_session_has_no_sync_choreography() {
        let config = ParallaxConfig {
            synchronous: false,
            arch: ArchChoice::PsOnly { optimized: false },
            local_aggregation: false,
            chief_triggers_update: false,
            ..ParallaxConfig::tf_ps_baseline()
        };
        let (g, topo, plan, spec) = derive(&config);
        assert!(!spec
            .events
            .iter()
            .any(|e| matches!(e.kind, WireKind::Response(KIND_UPDATE_DONE))));
        assert!(!spec
            .events
            .iter()
            .any(|e| e.kind == WireKind::Request(KIND_CHIEF_UPDATE)));
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn tampered_multiplicity_is_c001() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, mut spec) = derive(&config);
        let idx = spec
            .events
            .iter()
            .position(|e| matches!(e.kind, WireKind::Request(KIND_PUSH_SPARSE)))
            .expect("hybrid plan pushes sparse gradients");
        spec.events_mut()[idx].sends += 1;
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C001), "{}", report.render());
    }

    #[test]
    fn dropped_reply_is_c002() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, mut spec) = derive(&config);
        let idx = spec
            .events
            .iter()
            .position(|e| matches!(e.kind, WireKind::Response(KIND_PULL_SPARSE)))
            .expect("sparse pulls are replied to");
        spec.events_mut().remove(idx);
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C002), "{}", report.render());
    }

    #[test]
    fn dependency_cycle_is_c004() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, mut spec) = derive(&config);
        // Make the first event wait on the last: the last already
        // (transitively) waits on the first.
        let last = spec.events().len() - 1;
        spec.events_mut()[0].deps.push(last);
        spec.events_mut()[last].deps.push(0);
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C004), "{}", report.render());
    }

    #[test]
    fn unguarded_push_is_c005() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, mut spec) = derive(&config);
        spec.tamper_unguard(KIND_PUSH_SPARSE);
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C005), "{}", report.render());
    }

    #[test]
    fn duplicate_fault_on_ring_link_is_c005() {
        let config = ParallaxConfig::default();
        let (_g, _topo, _plan, spec) = derive(&config);
        let ring = spec
            .events
            .iter()
            .find(|e| e.kind == WireKind::Collective)
            .expect("hybrid plan has ring traffic");
        let faults = FaultPlan::new().with(FaultAction::DuplicateMessage {
            from: ring.from,
            to: ring.to,
            nth: 0,
        });
        let report = check_fault_plan(&spec, &faults);
        assert!(report.has_code(DiagCode::C005), "{}", report.render());
        // The same duplicate on a dedup-guarded request link is safe.
        let req = spec
            .events
            .iter()
            .find(|e| matches!(e.kind, WireKind::Request(_)))
            .unwrap();
        let faults = FaultPlan::new().with(FaultAction::DuplicateMessage {
            from: req.from,
            to: req.to,
            nth: 0,
        });
        let report = check_fault_plan(&spec, &faults);
        assert!(!report.has_code(DiagCode::C005), "{}", report.render());
    }

    #[test]
    fn lossy_faults_with_disarmed_deadline_are_c006() {
        let config = ParallaxConfig::default();
        let (_g, _topo, _plan, mut spec) = derive(&config);
        spec.tamper_disarm_deadline();
        let faults = FaultPlan::new().with(FaultAction::DropMessage {
            from: spec.workers[0],
            to: spec.servers[0],
            nth: 0,
        });
        let report = check_fault_plan(&spec, &faults);
        assert!(report.has_code(DiagCode::C006), "{}", report.render());
    }

    #[test]
    fn out_of_phase_publish_is_c007() {
        let config = ParallaxConfig {
            checkpoint_path: Some(std::path::PathBuf::from("/tmp/ck.bin")),
            checkpoint_interval: 2,
            ..ParallaxConfig::default()
        };
        let (g, topo, plan, mut spec) = derive(&config);
        let idx = spec
            .events
            .iter()
            .position(|e| e.kind == WireKind::Request(KIND_FETCH_SHARD))
            .unwrap();
        spec.events_mut()[idx].boundary_only = false;
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C007), "{}", report.render());
    }

    #[test]
    fn malformed_event_is_c008() {
        let config = ParallaxConfig::default();
        let (g, topo, plan, mut spec) = derive(&config);
        spec.events_mut()[0].to = spec.events_mut()[0].from;
        let report = check_session(&g, &config, &topo, &plan, &spec);
        assert!(report.has_code(DiagCode::C008), "{}", report.render());
    }

    #[test]
    fn validator_compiled_from_derived_spec_accepts_the_protocol() {
        use parallax_comm::protocheck::SessionValidator;
        use parallax_ps::protocol::{self, ReqKind};
        let config = ParallaxConfig::default();
        let (_g, topo, _plan, spec) = derive(&config);
        let v = SessionValidator::from_spec(&spec);
        // A real pull request from worker rank to its variable's server,
        // as the client would send it (the hybrid plan serves the sparse
        // embedding from the PS).
        let pull = spec
            .events
            .iter()
            .find(|e| e.kind == WireKind::Request(KIND_PULL_SPARSE))
            .expect("sparse PS pulls exist");
        let header = protocol::pack(ReqKind::PullSparse, pull.var, pull.part, 3);
        v.check(pull.from, pull.to, protocol::request_tag(3), Some(header))
            .unwrap();
        // Drift: the same request from a server rank.
        assert!(v
            .check(
                topo.server_rank(0),
                pull.to,
                protocol::request_tag(3),
                Some(header)
            )
            .is_err());
    }

    #[test]
    fn sessions_stay_within_var_id_capacity() {
        let (g, _loss, _profile) = model();
        assert!(g.variables().len() <= MAX_HEADER_VARS);
    }

    #[test]
    fn gatherv_tags_classify_as_gatherv() {
        use parallax_comm::protocheck::{classify_tag, TagClass};
        // The AllGatherv tag is minted in this crate (`runner::mpi_tag`),
        // so its agreement with the comm-side classifier is pinned here.
        assert_eq!(
            classify_tag(crate::runner::mpi_tag(5, 9)),
            TagClass::Gatherv { var: 5, iter: 9 }
        );
    }
}
