//! Loom model check for the compute pool's batch completion gate: the
//! owner's `wait` must not return until every worker `arrive`d, in
//! every interleaving — the memory-safety linchpin of `run_batch`'s
//! lifetime-erased dispatch (workers hold raw pointers into the
//! owner's stack frame until the gate opens).
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p parallax-tensor
//! --test loom_pool`.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use parallax_tensor::pool::BatchGate;

/// `wait` returns only after both workers arrived: at that point every
/// chunk's side effects are visible to the owner.
#[test]
fn gate_opens_only_after_every_arrival() {
    loom::model(|| {
        let gate = Arc::new(BatchGate::new(2));
        let work = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let work = Arc::clone(&work);
                thread::spawn(move || {
                    // The "chunk body" runs strictly before the arrival.
                    work.fetch_add(1, Ordering::SeqCst);
                    gate.arrive();
                })
            })
            .collect();
        gate.wait();
        // If any schedule let wait() return early, this read would see
        // a partial count — i.e. a worker still using the batch.
        assert_eq!(work.load(Ordering::SeqCst), 2);
        for w in workers {
            w.join().unwrap();
        }
    });
}

/// A gate with no outstanding arrivals never blocks (the single-chunk
/// fast path of `run_batch`).
#[test]
fn empty_gate_never_blocks() {
    loom::model(|| {
        BatchGate::new(0).wait();
    });
}
