//! Property tests for the blocked/pooled compute kernels.
//!
//! Two invariants, both *bitwise*:
//!
//! 1. The blocked + vectorized kernels produce exactly the same bits as
//!    the scalar reference kernels (`ops::matmul::naive`), for random
//!    shapes including ones that are not multiples of the register tile.
//! 2. The worker pool changes only wall-clock time: running a kernel at
//!    any thread count yields exactly the serial result, because work is
//!    only ever split over disjoint output rows.

use proptest::prelude::*;

use parallax_tensor::ops::{self, matmul::naive};
use parallax_tensor::{pool, DetRng, Tensor};

fn tensor_from(seed: u64, rows: usize, cols: usize) -> Tensor {
    Tensor::randn([rows, cols], 1.0, &mut DetRng::seed(seed))
}

/// Bitwise equality (not tolerance-based): the kernels keep a single
/// accumulator per output element and add in ascending-k order, so the
/// blocked path must reproduce the reference exactly.
fn assert_bits_eq(a: &Tensor, b: &Tensor) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Blocked kernels == scalar reference kernels, bit for bit, on
    /// shapes straddling the MR x NR register tile.
    #[test]
    fn blocked_kernels_match_naive_bitwise(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        pool::configure_threads(1);
        let a = tensor_from(seed, m, k);
        let b = tensor_from(seed + 1, k, n);
        assert_bits_eq(
            &ops::matmul(&a, &b).unwrap(),
            &naive::matmul(&a, &b).unwrap(),
        )?;

        let at = tensor_from(seed + 2, k, m);
        assert_bits_eq(
            &ops::matmul_at_b(&at, &b).unwrap(),
            &naive::matmul_at_b(&at, &b).unwrap(),
        )?;

        let bt = tensor_from(seed + 3, n, k);
        assert_bits_eq(
            &ops::matmul_a_bt(&a, &bt).unwrap(),
            &naive::matmul_a_bt(&a, &bt).unwrap(),
        )?;

        assert_bits_eq(
            &ops::transpose(&a).unwrap(),
            &naive::transpose(&a).unwrap(),
        )?;
    }

    /// Pooled execution is a pure wall-clock optimization: every thread
    /// count produces the serial result exactly.
    #[test]
    fn pooled_kernels_are_thread_count_invariant(
        m in 1usize..64,
        k in 1usize..16,
        n in 1usize..32,
        seed in 0u64..1000,
    ) {
        let a = tensor_from(seed, m, k);
        let b = tensor_from(seed + 1, k, n);
        let at = tensor_from(seed + 2, k, m);

        pool::configure_threads(1);
        let serial_ab = ops::matmul(&a, &b).unwrap();
        let serial_atb = ops::matmul_at_b(&at, &b).unwrap();

        for threads in [2usize, 3, 7] {
            pool::configure_threads(threads);
            assert_bits_eq(&ops::matmul(&a, &b).unwrap(), &serial_ab)?;
            assert_bits_eq(&ops::matmul_at_b(&at, &b).unwrap(), &serial_atb)?;
        }
        pool::configure_threads(1);
    }
}
