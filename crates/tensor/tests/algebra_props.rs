//! Algebraic property tests over the tensor kernels.

use proptest::collection::vec;
use proptest::prelude::*;

use parallax_tensor::{ops, DetRng, Tensor};

fn tensor_from(seed: u64, rows: usize, cols: usize) -> Tensor {
    Tensor::randn([rows, cols], 1.0, &mut DetRng::seed(seed))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Matmul distributes over addition: `A (B + C) == A B + A C`.
    #[test]
    fn matmul_distributes_over_add(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = tensor_from(seed, m, k);
        let b = tensor_from(seed + 1, k, n);
        let c = tensor_from(seed + 2, k, n);
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &ops::matmul(&a, &b).unwrap(),
            &ops::matmul(&a, &c).unwrap(),
        )
        .unwrap();
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    /// `(A B)^T == B^T A^T`, and the fused transpose kernels agree with
    /// materialized transposes.
    #[test]
    fn transpose_of_product(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = tensor_from(seed, m, k);
        let b = tensor_from(seed + 7, k, n);
        let ab_t = ops::transpose(&ops::matmul(&a, &b).unwrap()).unwrap();
        let bt_at = ops::matmul(
            &ops::transpose(&b).unwrap(),
            &ops::transpose(&a).unwrap(),
        )
        .unwrap();
        prop_assert!(close(&ab_t, &bt_at, 1e-3));

        let fused = ops::matmul_a_bt(&a, &ops::transpose(&b).unwrap()).unwrap();
        let plain = ops::matmul(&a, &b).unwrap();
        prop_assert!(close(&fused, &plain, 1e-3));
    }

    /// Softmax rows are invariant to a constant shift of the logits.
    #[test]
    fn softmax_shift_invariance(
        rows in 1usize..4,
        cols in 1usize..6,
        shift in -5.0f32..5.0,
        seed in 0u64..1000,
    ) {
        let x = tensor_from(seed, rows, cols);
        let shifted = ops::scale(&ops::add(&x, &Tensor::full([rows, cols], shift)).unwrap(), 1.0);
        let a = ops::softmax_rows(&x).unwrap();
        let b = ops::softmax_rows(&shifted).unwrap();
        prop_assert!(close(&a, &b, 1e-4));
    }

    /// Gathering every row in order is the identity; gather then re-gather
    /// with inverse indices round-trips a permutation.
    #[test]
    fn gather_permutation_roundtrip(
        rows in 1usize..12,
        cols in 1usize..4,
        seed in 0u64..1000,
    ) {
        let table = tensor_from(seed, rows, cols);
        let identity: Vec<usize> = (0..rows).collect();
        prop_assert_eq!(ops::gather_rows(&table, &identity).unwrap(), table.clone());

        let mut perm = identity.clone();
        DetRng::seed(seed + 3).shuffle(&mut perm);
        let mut inverse = vec![0usize; rows];
        for (pos, &p) in perm.iter().enumerate() {
            inverse[p] = pos;
        }
        let shuffled = ops::gather_rows(&table, &perm).unwrap();
        let restored = ops::gather_rows(&shuffled, &inverse).unwrap();
        prop_assert_eq!(restored, table);
    }

    /// Concat/split of arbitrary column widths round-trips.
    #[test]
    fn concat_split_arbitrary_widths(
        rows in 1usize..5,
        widths in vec(1usize..4, 1..5),
        seed in 0u64..1000,
    ) {
        let parts: Vec<Tensor> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| tensor_from(seed + i as u64, rows, w))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let joined = ops::concat_cols(&refs).unwrap();
        let split = ops::split_cols(&joined, &widths).unwrap();
        prop_assert_eq!(split, parts);
    }

    /// The fused softmax-cross-entropy gradient sums to zero per row and
    /// its loss is minimized by one-hot-correct logits.
    #[test]
    fn xent_gradient_rows_sum_to_zero(
        rows in 1usize..4,
        cols in 2usize..6,
        seed in 0u64..1000,
    ) {
        let logits = tensor_from(seed, rows, cols);
        let labels: Vec<usize> = (0..rows).map(|r| (r + seed as usize) % cols).collect();
        let (loss, grad) = ops::softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss.is_finite() && loss > 0.0);
        for r in 0..rows {
            let s: f32 = grad.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }
}
