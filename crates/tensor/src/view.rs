//! Borrowed tensors: a shape over externally owned `f32` memory.
//!
//! A [`TensorView`] is the zero-copy counterpart of [`Tensor`]: it
//! carries a [`Shape`] and a borrowed element slice instead of a
//! `Vec<f32>`. The serving path mmaps a model snapshot and exposes each
//! variable as a view over the mapped bytes — reading weights never
//! deserializes or copies them; only explicitly requested rows are
//! materialized (the gather) or the whole value on an explicit
//! [`TensorView::to_tensor`].

use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// An immutable tensor view over borrowed element storage.
/// Views keep the shape by reference too, so constructing one
/// allocates nothing (`Shape` owns a `Vec<usize>` of dims).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorView<'a> {
    shape: &'a Shape,
    data: &'a [f32],
}

impl<'a> TensorView<'a> {
    /// Wraps `data` as a tensor of `shape`. The element count must
    /// match the shape's volume.
    pub fn new(shape: &'a Shape, data: &'a [f32]) -> Result<Self> {
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(TensorView { shape, data })
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The borrowed element slice, row-major. The returned slice lives
    /// as long as the underlying storage, not the view value itself.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Row `r` of a matrix-shaped view (borrowed, no copy).
    pub fn row(&self, r: usize) -> Result<&'a [f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: rows,
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Materializes the view into an owned [`Tensor`] (the one explicit
    /// copy on the zero-copy load path).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::new(self.shape.clone(), self.data.to_vec()).expect("view invariant: volume == len")
    }

    /// Gathers rows `ids` into an owned `[ids.len(), cols]` tensor —
    /// bitwise identical to [`crate::ops::gather_rows`] on an owned
    /// tensor holding the same data.
    pub fn gather_rows(&self, ids: &[usize]) -> Result<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut data = Vec::with_capacity(ids.len() * cols);
        for &id in ids {
            if id >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: id,
                    bound: rows,
                });
            }
            data.extend_from_slice(&self.data[id * cols..(id + 1) * cols]);
        }
        Tensor::new([ids.len(), cols], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn view_borrows_without_copying() {
        let shape = Shape::new([2, 3]);
        let data = vec![0., 1., 2., 10., 11., 12.];
        let view = TensorView::new(&shape, &data).unwrap();
        assert_eq!(view.len(), 6);
        // Same memory, not a copy.
        assert!(std::ptr::eq(view.data().as_ptr(), data.as_ptr()));
        assert_eq!(view.row(1).unwrap(), &[10., 11., 12.]);
        assert!(view.row(2).is_err());
    }

    #[test]
    fn volume_mismatch_rejected() {
        let shape = Shape::new([2, 3]);
        let data = vec![0.0; 5];
        assert!(TensorView::new(&shape, &data).is_err());
    }

    #[test]
    fn gather_matches_owned_gather_bitwise() {
        let t = Tensor::new([4, 2], (0..8).map(|i| i as f32 * 0.5).collect::<Vec<_>>()).unwrap();
        let view = TensorView::new(t.shape(), t.data()).unwrap();
        let ids = [3usize, 0, 3, 1];
        let from_view = view.gather_rows(&ids).unwrap();
        let from_tensor = ops::gather_rows(&t, &ids).unwrap();
        assert_eq!(from_view, from_tensor);
        assert!(view.gather_rows(&[4]).is_err());
    }

    #[test]
    fn to_tensor_roundtrips() {
        let t = Tensor::new([3, 1], vec![1., 2., 3.]).unwrap();
        let view = TensorView::new(t.shape(), t.data()).unwrap();
        assert_eq!(view.to_tensor(), t);
    }
}
