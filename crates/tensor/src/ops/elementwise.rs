//! Elementwise kernels.

use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Elementwise `a + b` for identical shapes.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.shape().ensure_same(b.shape(), "add")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::new(a.shape().clone(), data)
}

/// Elementwise `a - b` for identical shapes.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.shape().ensure_same(b.shape(), "sub")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Tensor::new(a.shape().clone(), data)
}

/// Elementwise product (Hadamard) for identical shapes.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.shape().ensure_same(b.shape(), "hadamard")?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::new(a.shape().clone(), data)
}

/// Scales every element by `factor`.
pub fn scale(a: &Tensor, factor: f32) -> Tensor {
    let data = a.data().iter().map(|x| x * factor).collect();
    Tensor::new(a.shape().clone(), data).expect("same shape, same length")
}

/// Adds a length-`cols` bias vector to every row of a matrix-viewed tensor
/// (the broadcast used by fully-connected layers).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_matrix()?;
    if bias.len() != cols {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias",
            lhs: a.shape().dims().to_vec(),
            rhs: bias.shape().dims().to_vec(),
        });
    }
    let mut data = Vec::with_capacity(a.len());
    for r in 0..rows {
        for c in 0..cols {
            data.push(a.data()[r * cols + c] + bias.data()[c]);
        }
    }
    Tensor::new(a.shape().clone(), data)
}

/// Scales each row of a matrix-viewed tensor by the matching entry of a
/// single-column (or rank-1) tensor `s` — the broadcast behind attention
/// read-out.
pub fn scale_rows(x: &Tensor, s: &Tensor) -> Result<Tensor> {
    let (rows, cols) = x.shape().as_matrix()?;
    if s.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "scale_rows",
            lhs: x.shape().dims().to_vec(),
            rhs: s.shape().dims().to_vec(),
        });
    }
    let mut data = Vec::with_capacity(x.len());
    for r in 0..rows {
        let factor = s.data()[r];
        data.extend(
            x.data()[r * cols..(r + 1) * cols]
                .iter()
                .map(|v| v * factor),
        );
    }
    Tensor::new(x.shape().clone(), data)
}

/// In-place AXPY: `y += alpha * x`, the hot loop of gradient application.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    x.shape().ensure_same(y.shape(), "axpy")?;
    for (yi, xi) in y.data_mut().iter_mut().zip(x.data()) {
        *yi += alpha * xi;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let b = t(&[2, 2], &[4., 3., 2., 1.]);
        let s = add(&a, &b).unwrap();
        assert_eq!(s.data(), &[5., 5., 5., 5.]);
        let d = sub(&s, &b).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = t(&[2], &[1., 2.]);
        let b = t(&[3], &[1., 2., 3.]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn hadamard_multiplies_pointwise() {
        let a = t(&[3], &[1., 2., 3.]);
        let b = t(&[3], &[2., 2., 2.]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[2., 4., 6.]);
    }

    #[test]
    fn scale_multiplies_all() {
        let a = t(&[2], &[1., -2.]);
        assert_eq!(scale(&a, -0.5).data(), &[-0.5, 1.0]);
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let a = t(&[2, 3], &[0., 0., 0., 1., 1., 1.]);
        let b = t(&[3], &[1., 2., 3.]);
        let out = add_bias(&a, &b).unwrap();
        assert_eq!(out.data(), &[1., 2., 3., 2., 3., 4.]);
    }

    #[test]
    fn add_bias_rejects_wrong_width() {
        let a = t(&[2, 3], &[0.; 6]);
        let b = t(&[2], &[1., 2.]);
        assert!(add_bias(&a, &b).is_err());
    }

    #[test]
    fn scale_rows_broadcasts_column() {
        let x = t(&[2, 3], &[1., 1., 1., 2., 2., 2.]);
        let s = t(&[2], &[10., -1.]);
        let y = scale_rows(&x, &s).unwrap();
        assert_eq!(y.data(), &[10., 10., 10., -2., -2., -2.]);
        let bad = t(&[3], &[0.; 3]);
        assert!(scale_rows(&x, &bad).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(&[2], &[1., 2.]);
        let mut y = t(&[2], &[10., 10.]);
        axpy(-2.0, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[8., 6.]);
    }
}
