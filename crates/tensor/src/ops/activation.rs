//! Activation kernels and their derivatives.

use crate::tensor::Tensor;
use crate::{ops::elementwise::hadamard, Result};

fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = a.data().iter().map(|&x| f(x)).collect();
    Tensor::new(a.shape().clone(), data).expect("same length")
}

/// Logistic sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(a: &Tensor) -> Tensor {
    map(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Backward of sigmoid given the *output* `y`: `dy * y * (1 - y)`.
pub fn sigmoid_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let local = map(y, |v| v * (1.0 - v));
    hadamard(dy, &local)
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    map(a, f32::tanh)
}

/// Backward of tanh given the *output* `y`: `dy * (1 - y^2)`.
pub fn tanh_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let local = map(y, |v| 1.0 - v * v);
    hadamard(dy, &local)
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0))
}

/// Backward of ReLU given the *input* `x`: `dy * [x > 0]`.
pub fn relu_grad(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let mask = map(x, |v| if v > 0.0 { 1.0 } else { 0.0 });
    hadamard(dy, &mask)
}

/// Row-wise, numerically-stabilized softmax of a matrix-viewed tensor.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_matrix()?;
    let mut out = Vec::with_capacity(a.len());
    for r in 0..rows {
        let row = &a.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        out.extend(exps.into_iter().map(|e| e / z));
    }
    Tensor::new(a.shape().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn sigmoid_known_points() {
        let s = sigmoid(&t(&[3], &[0.0, 100.0, -100.0]));
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!((s.data()[1] - 1.0).abs() < 1e-6);
        assert!(s.data()[2].abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let y = tanh(&t(&[2], &[0.7, -0.7]));
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn relu_clamps_negatives() {
        let y = relu(&t(&[3], &[-1.0, 0.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_grad_masks() {
        let x = t(&[3], &[-1.0, 0.5, 0.0]);
        let dy = t(&[3], &[10.0, 10.0, 10.0]);
        assert_eq!(relu_grad(&x, &dy).unwrap().data(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn sigmoid_grad_matches_numeric() {
        let x = t(&[1], &[0.3]);
        let y = sigmoid(&x);
        let dy = t(&[1], &[1.0]);
        let analytic = sigmoid_grad(&y, &dy).unwrap().data()[0];
        let eps = 1e-3f32;
        let fp = sigmoid(&t(&[1], &[0.3 + eps])).data()[0];
        let fm = sigmoid(&t(&[1], &[0.3 - eps])).data()[0];
        let numeric = (fp - fm) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-3);
    }

    #[test]
    fn tanh_grad_matches_numeric() {
        let x0 = -0.4f32;
        let y = tanh(&t(&[1], &[x0]));
        let dy = t(&[1], &[1.0]);
        let analytic = tanh_grad(&y, &dy).unwrap().data()[0];
        let eps = 1e-3f32;
        let numeric = ((x0 + eps).tanh() - (x0 - eps).tanh()) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let s = softmax_rows(&t(&[2, 3], &[1., 2., 3., 1000., 1000., 1000.])).unwrap();
        let row0: f32 = s.data()[0..3].iter().sum();
        let row1: f32 = s.data()[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-5);
        assert!((row1 - 1.0).abs() < 1e-5);
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
        assert!(s.all_finite());
    }
}
