//! Matrix multiplication, transpose and row-gather kernels.

use crate::sparse::IndexedSlices;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

fn matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    t.shape()
        .as_matrix()
        .map_err(|_| TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        })
}

/// `A (m x k) * B (k x n) -> (m x n)`, plain ikj loop with a hoisted scalar.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = matrix(a, "matmul lhs")?;
    let (k2, n) = matrix(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
    Tensor::new([m, n], out)
}

/// `A^T (k x m)^T * B (k x n) -> (m x n)`; used for weight gradients
/// (`dW = X^T * dY`) without materializing the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = matrix(a, "matmul_at_b lhs")?;
    let (k2, n) = matrix(b, "matmul_at_b rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::new([m, n], out)
}

/// `A (m x k) * B^T (n x k)^T -> (m x n)`; used for input gradients
/// (`dX = dY * W^T`) without materializing the transpose.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = matrix(a, "matmul_a_bt lhs")?;
    let (n, k2) = matrix(b, "matmul_a_bt rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::new([m, n], out)
}

/// Matrix transpose.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = matrix(a, "transpose")?;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::new([n, m], out)
}

/// Gathers rows `ids` of `table` into an `[ids.len(), cols]` tensor — the
/// embedding lookup whose gradient is sparse.
pub fn gather_rows(table: &Tensor, ids: &[usize]) -> Result<Tensor> {
    let (rows, cols) = matrix(table, "gather_rows")?;
    let mut data = Vec::with_capacity(ids.len() * cols);
    for &id in ids {
        if id >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: id,
                bound: rows,
            });
        }
        data.extend_from_slice(&table.data()[id * cols..(id + 1) * cols]);
    }
    Tensor::new([ids.len(), cols], data)
}

/// The backward of [`gather_rows`]: upstream gradient rows become an
/// [`IndexedSlices`] against the table.
pub fn gather_rows_grad(
    upstream: &Tensor,
    ids: &[usize],
    table_rows: usize,
) -> Result<IndexedSlices> {
    IndexedSlices::new(ids.to_vec(), upstream.clone(), table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = t(&[2, 3], &[0.; 6]);
        let b = t(&[2, 2], &[0.; 4]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_equals_transpose_then_matmul() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let direct = matmul_at_b(&a, &b).unwrap();
        let via = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn a_bt_equals_matmul_with_transpose() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[4, 3], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let direct = matmul_a_bt(&a, &b).unwrap();
        let via = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn gather_picks_rows_with_repeats() {
        let table = t(&[3, 2], &[0., 1., 10., 11., 20., 21.]);
        let g = gather_rows(&table, &[2, 0, 2]).unwrap();
        assert_eq!(g.data(), &[20., 21., 0., 1., 20., 21.]);
        assert!(gather_rows(&table, &[3]).is_err());
    }

    #[test]
    fn gather_grad_is_sparse_scatter() {
        let up = t(&[2, 2], &[1., 1., 2., 2.]);
        let g = gather_rows_grad(&up, &[1, 1], 4).unwrap();
        let dense = g.to_dense();
        assert_eq!(dense.data(), &[0., 0., 3., 3., 0., 0., 0., 0.]);
    }
}
