//! Matrix multiplication, transpose and row-gather kernels.
//!
//! The multiply kernels are cache-blocked: outputs are computed in
//! `MR x NR` register tiles, with the B panel for a column block kept
//! hot in L1 while every row tile streams past it. Within one output
//! element the reduction over `p` runs ascending into a single
//! accumulator — exactly the order the scalar reference kernels use —
//! so blocked results match [`naive`] element-for-element, and the
//! worker pool (which only splits disjoint output row ranges, see
//! [`crate::pool`]) leaves results bit-for-bit identical to serial
//! execution at any thread count.

use crate::pool;
use crate::sparse::IndexedSlices;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Register-tile height (output rows per microkernel step).
const MR: usize = 4;
/// Register-tile width (output columns per microkernel step).
const NR: usize = 16;
/// Row count below which a matmul is not worth splitting across the pool.
const MIN_ROWS_PER_CHUNK: usize = 8;
/// Product count (`m * k * n`) below which the packed kernels lose to a
/// plain loop: packing writes `m * k + k * NR` floats and performs two
/// heap allocations per call, which dominates tiny problems (measured
/// crossover on the dev box; see `DESIGN.md`).
const SMALL_PRODUCTS: usize = 128 * 1024;

fn matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    t.shape()
        .as_matrix()
        .map_err(|_| TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        })
}

/// Dispatches [`matmul_rows_inner`] to an AVX2-compiled copy when the
/// CPU supports it. The wide copy runs the identical per-lane operation
/// sequence (no FMA contraction), so results match the portable path
/// bit-for-bit.
fn matmul_rows(ad: &[f32], bd: &[f32], chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        return unsafe { matmul_rows_avx2(ad, bd, chunk, row0, k, n) };
    }
    matmul_rows_inner(ad, bd, chunk, row0, k, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_inner(ad, bd, chunk, row0, k, n);
}

/// Plain-loop fallback for tiny `A * B` problems, where the packed
/// kernels' per-call allocations and packing writes dominate. Every
/// output element still accumulates over `p` ascending into a single
/// f32, so results are bit-for-bit identical to the packed kernel.
fn small_matmul(ad: &[f32], bd: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Tiny-problem fallback for `A^T * B` (A laid out `[p][i]`); same
/// ascending-`p` per-element order as the packed kernel.
fn small_matmul_at_b(ad: &[f32], bd: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Tiny-problem fallback for `A * B^T`: row-by-row dot products, again
/// reducing over `p` ascending, with no transposed scratch buffer.
fn small_matmul_a_bt(ad: &[f32], bd: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Packs the `NR`-wide B column panel starting at `j0` into `bpack`
/// (`bpack[p * NR + c] = B[p][j0 + c]`), zero-padding columns past `jw`.
/// Padded lanes feed accumulator columns that are never stored, so they
/// cannot affect results.
#[inline(always)]
fn pack_b_panel(bd: &[f32], bpack: &mut [f32], j0: usize, jw: usize, k: usize, n: usize) {
    for p in 0..k {
        let dst = &mut bpack[p * NR..p * NR + NR];
        dst[..jw].copy_from_slice(&bd[p * n + j0..p * n + j0 + jw]);
        for z in dst[jw..].iter_mut() {
            *z = 0.0;
        }
    }
}

/// The register microkernel: a full `MR x NR` output tile over packed
/// operands (`apack[p * MR + r]`, `bpack[p * NR + c]`), accumulating `p`
/// ascending into one accumulator per element — the same per-element
/// operation order as the scalar reference kernels.
#[inline(always)]
fn microkernel(apack: &[f32], bpack: &[f32], k: usize) -> [[f32; NR]; MR] {
    #[inline(always)]
    fn step(acc: &mut [[f32; NR]; MR], apack: &[f32], bpack: &[f32], p: usize) {
        let at: &[f32; MR] = apack[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bpack[p * NR..p * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let av = at[r];
            for c in 0..NR {
                acc[r][c] += av * bv[c];
            }
        }
    }
    let mut acc = [[0.0f32; NR]; MR];
    // Unrolled by two: halves loop overhead and lets the second step's
    // loads issue while the first step's adds retire.
    let mut p = 0;
    while p + 2 <= k {
        step(&mut acc, apack, bpack, p);
        step(&mut acc, apack, bpack, p + 1);
        p += 2;
    }
    if p < k {
        step(&mut acc, apack, bpack, p);
    }
    acc
}

/// Stores the live `iw x jw` corner of an accumulator tile into `chunk`.
#[inline(always)]
fn store_tile(
    chunk: &mut [f32],
    acc: &[[f32; NR]; MR],
    i: usize,
    j0: usize,
    iw: usize,
    jw: usize,
    n: usize,
) {
    for r in 0..iw {
        chunk[(i + r) * n + j0..(i + r) * n + j0 + jw].copy_from_slice(&acc[r][..jw]);
    }
}

/// Computes rows `[row0, row0 + chunk_rows)` of `A (m x k) * B (k x n)`
/// into `chunk`. Each `NR`-wide column panel of B is packed contiguously
/// once and stays L1-resident while every `MR`-row tile of A streams
/// past it; A tiles are packed transposed so the microkernel reads both
/// operands sequentially.
#[inline(always)]
fn matmul_rows_inner(ad: &[f32], bd: &[f32], chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    let nrows = chunk.len() / n;
    let tiles = nrows.div_ceil(MR);
    // Pack every A tile once, transposed and zero-padded: tile t holds
    // apack[t*k*MR + p*MR + r] = A[row0 + t*MR + r][p]. Padded rows feed
    // accumulators that are never stored.
    let mut apack = vec![0.0f32; tiles * k * MR];
    for t in 0..tiles {
        let i = t * MR;
        let iw = MR.min(nrows - i);
        let blk = &mut apack[t * k * MR..(t + 1) * k * MR];
        for r in 0..iw {
            let arow = &ad[(row0 + i + r) * k..(row0 + i + r + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                blk[p * MR + r] = av;
            }
        }
    }
    let mut bpack = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b_panel(bd, &mut bpack, j0, jw, k, n);
        for t in 0..tiles {
            let i = t * MR;
            let iw = MR.min(nrows - i);
            let acc = microkernel(&apack[t * k * MR..(t + 1) * k * MR], &bpack, k);
            store_tile(chunk, &acc, i, j0, iw, jw, n);
        }
        j0 += jw;
    }
}

/// AVX2/portable dispatcher for [`matmul_at_b_rows_inner`]; see
/// [`matmul_rows`] for why the result is identical either way.
fn matmul_at_b_rows(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        return unsafe { matmul_at_b_rows_avx2(ad, bd, chunk, row0, k, m, n) };
    }
    matmul_at_b_rows_inner(ad, bd, chunk, row0, k, m, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_at_b_rows_avx2(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    matmul_at_b_rows_inner(ad, bd, chunk, row0, k, m, n);
}

/// Computes rows `[row0, row0 + chunk_rows)` of `A^T (k x m)^T * B (k x n)`
/// into `chunk`. A is already laid out `[p][i]`, so the A tile packs
/// with contiguous reads and no transpose is materialized.
#[inline(always)]
fn matmul_at_b_rows_inner(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    let nrows = chunk.len() / n;
    let tiles = nrows.div_ceil(MR);
    // apack[t*k*MR + p*MR + r] = A[p][row0 + t*MR + r]; contiguous source.
    let mut apack = vec![0.0f32; tiles * k * MR];
    for t in 0..tiles {
        let i = t * MR;
        let iw = MR.min(nrows - i);
        let blk = &mut apack[t * k * MR..(t + 1) * k * MR];
        for p in 0..k {
            blk[p * MR..p * MR + iw].copy_from_slice(&ad[p * m + row0 + i..p * m + row0 + i + iw]);
        }
    }
    let mut bpack = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b_panel(bd, &mut bpack, j0, jw, k, n);
        for t in 0..tiles {
            let i = t * MR;
            let iw = MR.min(nrows - i);
            let acc = microkernel(&apack[t * k * MR..(t + 1) * k * MR], &bpack, k);
            store_tile(chunk, &acc, i, j0, iw, jw, n);
        }
        j0 += jw;
    }
}

/// Cache-blocked transpose of an `m x n` row-major buffer into `out`
/// (which becomes `n x m`). Square blocks keep both the read and write
/// streams within a few cache lines at a time.
fn transpose_into(ad: &[f32], out: &mut [f32], m: usize, n: usize) {
    const TB: usize = 32;
    let mut ii = 0;
    while ii < m {
        let ih = (ii + TB).min(m);
        let mut jj = 0;
        while jj < n {
            let jh = (jj + TB).min(n);
            for i in ii..ih {
                let arow = &ad[i * n..i * n + n];
                for j in jj..jh {
                    out[j * m + i] = arow[j];
                }
            }
            jj = jh;
        }
        ii = ih;
    }
}

/// `A (m x k) * B (k x n) -> (m x n)`, cache-blocked and parallelized
/// over disjoint output row ranges.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = matrix(a, "matmul lhs")?;
    let (k2, n) = matrix(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m > 0 && n > 0 {
        let ad = a.data();
        let bd = b.data();
        if m * k * n <= SMALL_PRODUCTS {
            small_matmul(ad, bd, &mut out, m, k, n);
        } else {
            pool::parallel_rows(&mut out, m, MIN_ROWS_PER_CHUNK, |row0, chunk| {
                matmul_rows(ad, bd, chunk, row0, k, n);
            });
        }
    }
    Tensor::new([m, n], out)
}

/// `A^T (k x m)^T * B (k x n) -> (m x n)`; used for weight gradients
/// (`dW = X^T * dY`) without materializing the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = matrix(a, "matmul_at_b lhs")?;
    let (k2, n) = matrix(b, "matmul_at_b rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m > 0 && n > 0 {
        let ad = a.data();
        let bd = b.data();
        if m * k * n <= SMALL_PRODUCTS {
            small_matmul_at_b(ad, bd, &mut out, k, m, n);
        } else {
            pool::parallel_rows(&mut out, m, MIN_ROWS_PER_CHUNK, |row0, chunk| {
                matmul_at_b_rows(ad, bd, chunk, row0, k, m, n);
            });
        }
    }
    Tensor::new([m, n], out)
}

/// `A (m x k) * B^T (n x k)^T -> (m x n)`; used for input gradients
/// (`dX = dY * W^T`). B is transposed once into a scratch buffer so the
/// multiply runs the column-contiguous blocked kernel; the reduction
/// order per output element is unchanged.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = matrix(a, "matmul_a_bt lhs")?;
    let (n, k2) = matrix(b, "matmul_a_bt rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m > 0 && n > 0 {
        let ad = a.data();
        let bd = b.data();
        if m * k * n <= SMALL_PRODUCTS {
            small_matmul_a_bt(ad, bd, &mut out, m, k, n);
        } else {
            let mut bt = vec![0.0f32; k * n];
            transpose_into(bd, &mut bt, n, k);
            pool::parallel_rows(&mut out, m, MIN_ROWS_PER_CHUNK, |row0, chunk| {
                matmul_rows(ad, &bt, chunk, row0, k, n);
            });
        }
    }
    Tensor::new([m, n], out)
}

/// Cache-blocked matrix transpose.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = matrix(a, "transpose")?;
    let mut out = vec![0.0f32; m * n];
    transpose_into(a.data(), &mut out, m, n);
    Tensor::new([n, m], out)
}

/// Gathers rows `ids` of `table` into an `[ids.len(), cols]` tensor — the
/// embedding lookup whose gradient is sparse.
pub fn gather_rows(table: &Tensor, ids: &[usize]) -> Result<Tensor> {
    let (rows, cols) = matrix(table, "gather_rows")?;
    let mut data = Vec::with_capacity(ids.len() * cols);
    for &id in ids {
        if id >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: id,
                bound: rows,
            });
        }
        data.extend_from_slice(&table.data()[id * cols..(id + 1) * cols]);
    }
    Tensor::new([ids.len(), cols], data)
}

/// The backward of [`gather_rows`]: upstream gradient rows become an
/// [`IndexedSlices`] against the table.
pub fn gather_rows_grad(
    upstream: &Tensor,
    ids: &[usize],
    table_rows: usize,
) -> Result<IndexedSlices> {
    IndexedSlices::new(ids.to_vec(), upstream.clone(), table_rows)
}

/// Scalar reference kernels: the original straight-line loops, kept as
/// the oracle for property tests and for before/after throughput
/// measurements (`repro kernels`). Not compiled into release builds
/// unless the `reference-kernels` feature is on.
#[cfg(any(test, feature = "reference-kernels"))]
pub mod naive {
    use super::matrix;
    use crate::tensor::Tensor;
    use crate::{Result, TensorError};

    /// Reference `A (m x k) * B (k x n)`: plain ikj loop with a hoisted
    /// scalar and a zero-skip.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = matrix(a, "matmul lhs")?;
        let (k2, n) = matrix(b, "matmul rhs")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: a.shape().dims().to_vec(),
                rhs: b.shape().dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        let ad = a.data();
        let bd = b.data();
        for i in 0..m {
            for p in 0..k {
                let aip = ad[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
        Tensor::new([m, n], out)
    }

    /// Reference `A^T * B`: p-outer axpy loops.
    pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (k, m) = matrix(a, "matmul_at_b lhs")?;
        let (k2, n) = matrix(b, "matmul_at_b rhs")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_at_b",
                lhs: a.shape().dims().to_vec(),
                rhs: b.shape().dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        let ad = a.data();
        let bd = b.data();
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::new([m, n], out)
    }

    /// Reference `A * B^T`: scalar dot products.
    pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = matrix(a, "matmul_a_bt lhs")?;
        let (n, k2) = matrix(b, "matmul_a_bt rhs")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_a_bt",
                lhs: a.shape().dims().to_vec(),
                rhs: b.shape().dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        let ad = a.data();
        let bd = b.data();
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::new([m, n], out)
    }

    /// Reference transpose: element-at-a-time.
    pub fn transpose(a: &Tensor) -> Result<Tensor> {
        let (m, n) = matrix(a, "transpose")?;
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a.data()[i * n + j];
            }
        }
        Tensor::new([n, m], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(dims, data.to_vec()).unwrap()
    }

    fn random(rng: &mut DetRng, rows: usize, cols: usize) -> Tensor {
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.normal() * 0.5).collect();
        Tensor::new([rows, cols], data).unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = t(&[2, 3], &[0.; 6]);
        let b = t(&[2, 2], &[0.; 4]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_equals_transpose_then_matmul() {
        let a = t(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let direct = matmul_at_b(&a, &b).unwrap();
        let via = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn a_bt_equals_matmul_with_transpose() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[4, 3], &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let direct = matmul_a_bt(&a, &b).unwrap();
        let via = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn blocked_kernels_match_naive_on_awkward_shapes() {
        // Shapes straddling the MR/NR tile boundaries, including exact
        // multiples and off-by-one remainders.
        let mut rng = DetRng::seed(11);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (13, 1, 29),
            (16, 32, 8),
            (33, 17, 9),
        ] {
            let a = random(&mut rng, m, k);
            let b = random(&mut rng, k, n);
            assert_eq!(matmul(&a, &b).unwrap(), naive::matmul(&a, &b).unwrap());

            let at = random(&mut rng, k, m);
            assert_eq!(
                matmul_at_b(&at, &b).unwrap(),
                naive::matmul_at_b(&at, &b).unwrap()
            );

            let bt = random(&mut rng, n, k);
            assert_eq!(
                matmul_a_bt(&a, &bt).unwrap(),
                naive::matmul_a_bt(&a, &bt).unwrap()
            );

            assert_eq!(transpose(&a).unwrap(), naive::transpose(&a).unwrap());
        }
    }

    #[test]
    fn gather_picks_rows_with_repeats() {
        let table = t(&[3, 2], &[0., 1., 10., 11., 20., 21.]);
        let g = gather_rows(&table, &[2, 0, 2]).unwrap();
        assert_eq!(g.data(), &[20., 21., 0., 1., 20., 21.]);
        assert!(gather_rows(&table, &[3]).is_err());
    }

    #[test]
    fn gather_grad_is_sparse_scatter() {
        let up = t(&[2, 2], &[1., 1., 2., 2.]);
        let g = gather_rows_grad(&up, &[1, 1], 4).unwrap();
        let dense = g.to_dense();
        assert_eq!(dense.data(), &[0., 0., 3., 3., 0., 0., 0., 0.]);
    }
}
