//! Reductions, loss kernels, and column concat/split.

use crate::ops::activation::softmax_rows;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Mean of all elements as a scalar tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.mean())
}

/// Column sums of a matrix-viewed tensor (rank-1 result of length `cols`);
/// this is the bias-gradient reduction.
pub fn sum_cols(a: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_matrix()?;
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for (slot, &v) in out.iter_mut().zip(&a.data()[r * cols..(r + 1) * cols]) {
            *slot += v;
        }
    }
    Tensor::new([cols], out)
}

/// Row sums of a matrix-viewed tensor (rank-1 result of length `rows`).
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_matrix()?;
    let mut out = vec![0.0f32; rows];
    for (r, slot) in out.iter_mut().enumerate() {
        *slot = a.data()[r * cols..(r + 1) * cols].iter().sum();
    }
    Tensor::new([rows], out)
}

/// Softmax cross-entropy against integer labels.
///
/// Returns `(mean loss, dlogits)` where `dlogits = (softmax - onehot) / rows`
/// — the fused kernel every model's output layer uses.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (rows, cols) = logits.shape().as_matrix()?;
    if labels.len() != rows {
        return Err(TensorError::LengthMismatch {
            expected: rows,
            actual: labels.len(),
        });
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        if label >= cols {
            return Err(TensorError::IndexOutOfBounds {
                index: label,
                bound: cols,
            });
        }
        let p = probs.data()[r * cols + label].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[r * cols + label] -= 1.0;
    }
    let inv = 1.0 / rows as f32;
    for g in grad.data_mut() {
        *g *= inv;
    }
    Ok(((loss / rows as f64) as f32, grad))
}

/// Concatenates matrices horizontally (same row count).
pub fn concat_cols(parts: &[&Tensor]) -> Result<Tensor> {
    let first = parts
        .first()
        .ok_or_else(|| TensorError::InvalidArgument("concat_cols of nothing".into()))?;
    let (rows, _) = first.shape().as_matrix()?;
    let mut widths = Vec::with_capacity(parts.len());
    for p in parts {
        let (r, c) = p.shape().as_matrix()?;
        if r != rows {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: first.shape().dims().to_vec(),
                rhs: p.shape().dims().to_vec(),
            });
        }
        widths.push(c);
    }
    let total: usize = widths.iter().sum();
    let mut out = Vec::with_capacity(rows * total);
    for r in 0..rows {
        for (p, &w) in parts.iter().zip(&widths) {
            out.extend_from_slice(&p.data()[r * w..(r + 1) * w]);
        }
    }
    Tensor::new([rows, total], out)
}

/// Splits a matrix into column blocks of the given widths (inverse of
/// [`concat_cols`]).
pub fn split_cols(a: &Tensor, widths: &[usize]) -> Result<Vec<Tensor>> {
    let (rows, cols) = a.shape().as_matrix()?;
    let total: usize = widths.iter().sum();
    if total != cols {
        return Err(TensorError::LengthMismatch {
            expected: cols,
            actual: total,
        });
    }
    let mut outs: Vec<Vec<f32>> = widths
        .iter()
        .map(|&w| Vec::with_capacity(rows * w))
        .collect();
    for r in 0..rows {
        let mut off = 0usize;
        for (slot, &w) in widths.iter().enumerate() {
            outs[slot].extend_from_slice(&a.data()[r * cols + off..r * cols + off + w]);
            off += w;
        }
    }
    outs.into_iter()
        .zip(widths)
        .map(|(data, &w)| Tensor::new([rows, w], data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn sums() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(sum_cols(&a).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(sum_rows(&a).unwrap().data(), &[6., 15.]);
        assert_eq!(mean_all(&a).scalar_value().unwrap(), 3.5);
    }

    #[test]
    fn xent_loss_decreases_toward_correct_label() {
        let bad = t(&[1, 3], &[2.0, 0.0, 0.0]);
        let good = t(&[1, 3], &[0.0, 0.0, 4.0]);
        let (l_bad, _) = softmax_cross_entropy(&bad, &[2]).unwrap();
        let (l_good, _) = softmax_cross_entropy(&good, &[2]).unwrap();
        assert!(l_good < l_bad);
    }

    #[test]
    fn xent_grad_rows_sum_to_zero() {
        let logits = t(&[2, 4], &[0.1, -0.3, 2.0, 0.7, 1.0, 1.0, 1.0, 1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for r in 0..2 {
            let s: f32 = grad.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn xent_grad_matches_numeric() {
        let logits = t(&[1, 3], &[0.5, -0.2, 0.1]);
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut up = logits.clone();
            up.data_mut()[j] += eps;
            let mut dn = logits.clone();
            dn.data_mut()[j] -= eps;
            let (lu, _) = softmax_cross_entropy(&up, &labels).unwrap();
            let (ld, _) = softmax_cross_entropy(&dn, &labels).unwrap();
            let numeric = (lu - ld) / (2.0 * eps);
            assert!((grad.data()[j] - numeric).abs() < 1e-2, "dim {j}");
        }
    }

    #[test]
    fn xent_rejects_bad_label() {
        let logits = t(&[1, 2], &[0.0, 0.0]);
        assert!(softmax_cross_entropy(&logits, &[2]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let b = t(&[2, 3], &[5., 6., 7., 8., 9., 10.]);
        let joined = concat_cols(&[&a, &b]).unwrap();
        assert_eq!(joined.shape().dims(), &[2, 5]);
        assert_eq!(joined.row(0).unwrap(), &[1., 2., 5., 6., 7.]);
        let parts = split_cols(&joined, &[2, 3]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_rejects_row_mismatch() {
        let a = t(&[2, 2], &[0.; 4]);
        let b = t(&[3, 2], &[0.; 6]);
        assert!(concat_cols(&[&a, &b]).is_err());
    }
}
