//! Fused LSTM-cell kernel.
//!
//! One call computes a whole LSTM step: the `[x | h_prev]` concatenation
//! is packed once into a scratch buffer, multiplied against the fused
//! `[input+hidden, 4*hidden]` kernel with the cache-blocked
//! [`super::matmul::matmul`] path, and the bias add, gate activations
//! and cell update run as a single pass over each output row. The
//! unfused graph spells the same step as ~13 ops, each allocating an
//! intermediate tensor; the fused kernel allocates three buffers total
//! (concat, pre-activations, output).
//!
//! Every output element is produced by the *same scalar expression* the
//! unfused op chain evaluates — the matmul reduces over `p` ascending
//! into one accumulator, the bias add / sigmoid / tanh / cell update
//! are the literal per-element formulas of `add_bias`, `sigmoid`,
//! `tanh`, `Hadamard` and `Add` — so the fused result is bit-for-bit
//! identical to the unfused composition, and (the fused row pass being
//! elementwise per row) identical at any worker-pool thread count.
//!
//! Output layout: `[batch, 6*hidden]` rows of `[h | c | i | f | g | o]`.
//! Exposing the post-activation gates alongside `h` and `c` lets the
//! backward pass run without recomputing the matmul or any activation.

use crate::pool;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Row count below which the fused row pass is not worth splitting
/// across the pool (matches the matmul kernels' threshold).
const MIN_ROWS_PER_CHUNK: usize = 8;

/// The logistic sigmoid, spelled exactly as the `sigmoid` activation
/// kernel spells it so fused and unfused paths agree bit-for-bit.
#[inline(always)]
fn sig(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    t.shape()
        .as_matrix()
        .map_err(|_| TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        })
}

#[allow(clippy::too_many_arguments)]
fn check_shapes(
    x: &Tensor,
    h_prev: &Tensor,
    c_prev: &Tensor,
    w: &Tensor,
    b: &Tensor,
    hidden: usize,
) -> Result<(usize, usize)> {
    let (batch, in_dim) = matrix(x, "lstm_cell_fused x")?;
    let (hb, hc) = matrix(h_prev, "lstm_cell_fused h_prev")?;
    let (cb, cc) = matrix(c_prev, "lstm_cell_fused c_prev")?;
    let (wr, wc) = matrix(w, "lstm_cell_fused w")?;
    let bad = hidden == 0
        || hb != batch
        || cb != batch
        || hc != hidden
        || cc != hidden
        || wr != in_dim + hidden
        || wc != 4 * hidden
        || b.len() != 4 * hidden;
    if bad {
        return Err(TensorError::ShapeMismatch {
            op: "lstm_cell_fused",
            lhs: x.shape().dims().to_vec(),
            rhs: w.shape().dims().to_vec(),
        });
    }
    Ok((batch, in_dim))
}

/// Packs `[x | h_prev]` row-major into one `[batch, in_dim + hidden]`
/// tensor — the same values `concat_cols` would produce.
fn pack_concat(x: &Tensor, h_prev: &Tensor, batch: usize, in_dim: usize, hidden: usize) -> Tensor {
    let k = in_dim + hidden;
    let mut data = Vec::with_capacity(batch * k);
    for r in 0..batch {
        data.extend_from_slice(&x.data()[r * in_dim..(r + 1) * in_dim]);
        data.extend_from_slice(&h_prev.data()[r * hidden..(r + 1) * hidden]);
    }
    Tensor::new([batch, k], data).expect("packed concat shape")
}

/// The fused per-row epilogue: bias add, gate activations and cell
/// update for rows `[row0, row0 + chunk_rows)`, writing `[h|c|i|f|g|o]`
/// rows into `chunk`. Purely elementwise per row, so any row split
/// yields bitwise-identical results.
fn cell_rows(z: &[f32], bias: &[f32], cp: &[f32], chunk: &mut [f32], row0: usize, hidden: usize) {
    let zw = 4 * hidden;
    let ow = 6 * hidden;
    let nrows = chunk.len() / ow;
    let (bi, brest) = bias.split_at(hidden);
    let (bf, brest) = brest.split_at(hidden);
    let (bg, bo) = brest.split_at(hidden);
    for r in 0..nrows {
        let zrow = &z[(row0 + r) * zw..(row0 + r + 1) * zw];
        let crow = &cp[(row0 + r) * hidden..(row0 + r + 1) * hidden];
        let orow = &mut chunk[r * ow..(r + 1) * ow];
        let (zi, zrest) = zrow.split_at(hidden);
        let (zf, zrest) = zrest.split_at(hidden);
        let (zg, zo) = zrest.split_at(hidden);
        let (hband, orest) = orow.split_at_mut(hidden);
        let (cband, orest) = orest.split_at_mut(hidden);
        let (iband, orest) = orest.split_at_mut(hidden);
        let (fband, orest) = orest.split_at_mut(hidden);
        let (gband, oband) = orest.split_at_mut(hidden);
        // One contiguous pass per gate band, mirroring the unfused
        // kernels' sequential sweeps: a single read and a single write
        // stream per loop keeps the transcendental calls pipelined
        // instead of interleaving ten strided streams per element.
        for ((dst, &zv), &bv) in iband.iter_mut().zip(zi).zip(bi) {
            *dst = sig(zv + bv);
        }
        for ((dst, &zv), &bv) in fband.iter_mut().zip(zf).zip(bf) {
            *dst = sig(zv + bv);
        }
        for ((dst, &zv), &bv) in gband.iter_mut().zip(zg).zip(bg) {
            *dst = (zv + bv).tanh();
        }
        for ((dst, &zv), &bv) in oband.iter_mut().zip(zo).zip(bo) {
            *dst = sig(zv + bv);
        }
        // c = f (.) c_prev + i (.) g, as the unfused Hadamard/Add
        // chain evaluates it: two products, then one add.
        for (j, dst) in cband.iter_mut().enumerate() {
            let fc = fband[j] * crow[j];
            let ig = iband[j] * gband[j];
            *dst = fc + ig;
        }
        for ((dst, &ov), &cv) in hband.iter_mut().zip(&*oband).zip(&*cband) {
            *dst = ov * cv.tanh();
        }
    }
}

/// One fused LSTM step.
///
/// `x` is `[batch, in_dim]`, `h_prev`/`c_prev` are `[batch, hidden]`,
/// `w` is the fused `[in_dim + hidden, 4*hidden]` kernel (gate order
/// `i, f, g, o`), `b` is `[4*hidden]`. Returns `[batch, 6*hidden]` rows
/// of `[h | c | i | f | g | o]`.
pub fn lstm_cell_fused(
    x: &Tensor,
    h_prev: &Tensor,
    c_prev: &Tensor,
    w: &Tensor,
    b: &Tensor,
    hidden: usize,
) -> Result<Tensor> {
    let (batch, in_dim) = check_shapes(x, h_prev, c_prev, w, b, hidden)?;
    let concat = pack_concat(x, h_prev, batch, in_dim, hidden);
    let z = super::matmul::matmul(&concat, w)?;
    let mut out = vec![0.0f32; batch * 6 * hidden];
    if batch > 0 {
        let zd = z.data();
        let bd = b.data();
        let cd = c_prev.data();
        pool::parallel_rows(&mut out, batch, MIN_ROWS_PER_CHUNK, |row0, chunk| {
            cell_rows(zd, bd, cd, chunk, row0, hidden);
        });
    }
    Tensor::new([batch, 6 * hidden], out)
}

/// Exact backward of [`lstm_cell_fused`].
///
/// `y` is the forward output (`[batch, 6*hidden]`), `upstream` the
/// gradient against it — bands beyond `h` and `c` participate too, so
/// graphs that slice gates out directly still differentiate correctly.
/// Returns `(dx, dh_prev, dc_prev, dw, db)`.
///
/// The gate/cell chain runs the same per-element derivative formulas as
/// the unfused op chain (`sigmoid_grad`'s `dy * y * (1 - y)`,
/// `tanh_grad`'s `dy * (1 - y^2)`), and the weight/input gradients
/// reuse the blocked `matmul_at_b` / `matmul_a_bt` kernels.
pub fn lstm_cell_fused_grad(
    y: &Tensor,
    upstream: &Tensor,
    x: &Tensor,
    h_prev: &Tensor,
    c_prev: &Tensor,
    w: &Tensor,
    hidden: usize,
) -> Result<(Tensor, Tensor, Tensor, Tensor, Tensor)> {
    let (batch, in_dim) = matrix(x, "lstm_cell_fused_grad x")?;
    let ow = 6 * hidden;
    if y.shape().dims() != [batch, ow] || upstream.shape().dims() != [batch, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "lstm_cell_fused_grad",
            lhs: y.shape().dims().to_vec(),
            rhs: upstream.shape().dims().to_vec(),
        });
    }
    let zw = 4 * hidden;
    let mut dz = vec![0.0f32; batch * zw];
    let mut dcp = vec![0.0f32; batch * hidden];
    let yd = y.data();
    let ud = upstream.data();
    let cpd = c_prev.data();
    for r in 0..batch {
        let yrow = &yd[r * ow..(r + 1) * ow];
        let urow = &ud[r * ow..(r + 1) * ow];
        let zrow = &mut dz[r * zw..(r + 1) * zw];
        let crow = &mut dcp[r * hidden..(r + 1) * hidden];
        for j in 0..hidden {
            let c = yrow[hidden + j];
            let i = yrow[2 * hidden + j];
            let f = yrow[3 * hidden + j];
            let g = yrow[4 * hidden + j];
            let o = yrow[5 * hidden + j];
            let dh = urow[j];
            let tanh_c = c.tanh();
            let d_o = urow[5 * hidden + j] + dh * tanh_c;
            let dc = urow[hidden + j] + (dh * o) * (1.0 - tanh_c * tanh_c);
            let di = urow[2 * hidden + j] + dc * g;
            let df = urow[3 * hidden + j] + dc * cpd[r * hidden + j];
            let dg = urow[4 * hidden + j] + dc * i;
            crow[j] = dc * f;
            zrow[j] = di * (i * (1.0 - i));
            zrow[hidden + j] = df * (f * (1.0 - f));
            zrow[2 * hidden + j] = dg * (1.0 - g * g);
            zrow[3 * hidden + j] = d_o * (o * (1.0 - o));
        }
    }
    let dz = Tensor::new([batch, zw], dz)?;
    let db = super::reduce::sum_cols(&dz)?;
    let concat = pack_concat(x, h_prev, batch, in_dim, hidden);
    let dw = super::matmul::matmul_at_b(&concat, &dz)?;
    let dconcat = super::matmul::matmul_a_bt(&dz, w)?;
    let k = in_dim + hidden;
    let mut dx = vec![0.0f32; batch * in_dim];
    let mut dh = vec![0.0f32; batch * hidden];
    for r in 0..batch {
        let row = &dconcat.data()[r * k..(r + 1) * k];
        dx[r * in_dim..(r + 1) * in_dim].copy_from_slice(&row[..in_dim]);
        dh[r * hidden..(r + 1) * hidden].copy_from_slice(&row[in_dim..]);
    }
    Ok((
        Tensor::new([batch, in_dim], dx)?,
        Tensor::new([batch, hidden], dh)?,
        Tensor::new([batch, hidden], dcp)?,
        dw,
        db,
    ))
}

/// Scalar reference kernel: the straight-line per-element LSTM step,
/// kept as the oracle for property tests and `repro compress`'s
/// fused-vs-unfused timing baseline.
#[cfg(any(test, feature = "reference-kernels"))]
pub mod naive {
    use super::{check_shapes, pack_concat, sig};
    use crate::ops::matmul::naive::matmul as naive_matmul;
    use crate::tensor::Tensor;
    use crate::Result;

    /// Reference fused step: naive matmul plus a plain per-element loop.
    pub fn lstm_cell_fused(
        x: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
        w: &Tensor,
        b: &Tensor,
        hidden: usize,
    ) -> Result<Tensor> {
        let (batch, in_dim) = check_shapes(x, h_prev, c_prev, w, b, hidden)?;
        let concat = pack_concat(x, h_prev, batch, in_dim, hidden);
        let z = naive_matmul(&concat, w)?;
        let mut out = vec![0.0f32; batch * 6 * hidden];
        for r in 0..batch {
            for j in 0..hidden {
                let zat = |gate: usize| z.data()[r * 4 * hidden + gate * hidden + j];
                let i = sig(zat(0) + b.data()[j]);
                let f = sig(zat(1) + b.data()[hidden + j]);
                let g = (zat(2) + b.data()[2 * hidden + j]).tanh();
                let o = sig(zat(3) + b.data()[3 * hidden + j]);
                let fc = f * c_prev.data()[r * hidden + j];
                let ig = i * g;
                let c = fc + ig;
                let orow = &mut out[r * 6 * hidden..(r + 1) * 6 * hidden];
                orow[j] = o * c.tanh();
                orow[hidden + j] = c;
                orow[2 * hidden + j] = i;
                orow[3 * hidden + j] = f;
                orow[4 * hidden + j] = g;
                orow[5 * hidden + j] = o;
            }
        }
        Tensor::new([batch, 6 * hidden], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::rng::DetRng;

    fn inputs(batch: usize, in_dim: usize, hidden: usize, seed: u64) -> [Tensor; 5] {
        let mut rng = DetRng::seed(seed);
        [
            Tensor::randn([batch, in_dim], 0.8, &mut rng),
            Tensor::randn([batch, hidden], 0.8, &mut rng),
            Tensor::randn([batch, hidden], 0.8, &mut rng),
            Tensor::randn([in_dim + hidden, 4 * hidden], 0.5, &mut rng),
            Tensor::randn([4 * hidden], 0.5, &mut rng),
        ]
    }

    /// The unfused op composition, spelled with the public kernels.
    fn unfused(x: &Tensor, h: &Tensor, c: &Tensor, w: &Tensor, b: &Tensor, hid: usize) -> Tensor {
        let concat = ops::concat_cols(&[x, h]).unwrap();
        let pre = ops::add_bias(&ops::matmul(&concat, w).unwrap(), b).unwrap();
        let parts = ops::split_cols(&pre, &[hid, hid, hid, hid]).unwrap();
        let i = ops::sigmoid(&parts[0]);
        let f = ops::sigmoid(&parts[1]);
        let g = ops::tanh(&parts[2]);
        let o = ops::sigmoid(&parts[3]);
        let cc = ops::add(
            &ops::hadamard(&f, c).unwrap(),
            &ops::hadamard(&i, &g).unwrap(),
        )
        .unwrap();
        let hh = ops::hadamard(&o, &ops::tanh(&cc)).unwrap();
        ops::concat_cols(&[&hh, &cc, &i, &f, &g, &o]).unwrap()
    }

    #[test]
    fn fused_matches_unfused_composition_bitwise() {
        for &(batch, in_dim, hidden) in &[(1, 1, 1), (2, 3, 5), (7, 9, 4), (33, 16, 24)] {
            let [x, h, c, w, b] = inputs(batch, in_dim, hidden, 42 + batch as u64);
            let fused = lstm_cell_fused(&x, &h, &c, &w, &b, hidden).unwrap();
            assert_eq!(fused, unfused(&x, &h, &c, &w, &b, hidden));
        }
    }

    #[test]
    fn fused_matches_naive_oracle_bitwise_at_any_thread_count() {
        let [x, h, c, w, b] = inputs(19, 12, 48, 7);
        let reference = naive::lstm_cell_fused(&x, &h, &c, &w, &b, 48).unwrap();
        for threads in [1, 2, 3, 4] {
            pool::configure_threads(threads);
            let fused = lstm_cell_fused(&x, &h, &c, &w, &b, 48).unwrap();
            assert_eq!(fused, reference, "threads={threads}");
        }
        pool::configure_threads(1);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let [x, h, c, w, b] = inputs(2, 3, 5, 1);
        assert!(lstm_cell_fused(&x, &h, &c, &w, &b, 4).is_err());
        assert!(lstm_cell_fused(&h, &x, &c, &w, &b, 5).is_err());
        let short_b = Tensor::zeros([3]);
        assert!(lstm_cell_fused(&x, &h, &c, &w, &short_b, 5).is_err());
    }

    #[test]
    fn grad_matches_numeric_differences() {
        let hidden = 4;
        let [x, h, c, w, b] = inputs(3, 2, hidden, 11);
        let y = lstm_cell_fused(&x, &h, &c, &w, &b, hidden).unwrap();
        // Loss = sum of the h and c bands: upstream ones there, zeros on
        // the gate bands.
        let mut up = vec![0.0f32; y.len()];
        for r in 0..3 {
            for j in 0..2 * hidden {
                up[r * 6 * hidden + j] = 1.0;
            }
        }
        let upstream = Tensor::new(y.shape().clone(), up).unwrap();
        let (dx, dh, dcp, dw, db) =
            lstm_cell_fused_grad(&y, &upstream, &x, &h, &c, &w, hidden).unwrap();

        let loss = |x: &Tensor, h: &Tensor, c: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            let y = lstm_cell_fused(x, h, c, w, b, hidden).unwrap();
            let mut sum = 0.0f32;
            for r in 0..3 {
                for j in 0..2 * hidden {
                    sum += y.data()[r * 6 * hidden + j];
                }
            }
            sum
        };
        let eps = 1e-2f32;
        let check = |analytic: &Tensor, which: usize| {
            let n = analytic.len();
            for idx in (0..n).step_by(n.div_ceil(9).max(1)) {
                let bump = |delta: f32| -> f32 {
                    let mut xs = [x.clone(), h.clone(), c.clone(), w.clone(), b.clone()];
                    xs[which].data_mut()[idx] += delta;
                    loss(&xs[0], &xs[1], &xs[2], &xs[3], &xs[4])
                };
                let numeric = (bump(eps) - bump(-eps)) / (2.0 * eps);
                let got = analytic.data()[idx];
                assert!(
                    (numeric - got).abs() < 3e-2,
                    "input {which} elem {idx}: numeric {numeric} vs analytic {got}"
                );
            }
        };
        check(&dx, 0);
        check(&dh, 1);
        check(&dcp, 2);
        check(&dw, 3);
        check(&db, 4);
    }
}
