//! Tensor kernels.
//!
//! Free functions over [`crate::Tensor`]; the dataflow layer dispatches
//! graph operations onto these. Kernels validate shapes and return typed
//! errors rather than panicking.

pub mod activation;
pub mod elementwise;
pub mod lstm;
pub mod matmul;
pub mod reduce;

pub use activation::{relu, relu_grad, sigmoid, sigmoid_grad, softmax_rows, tanh, tanh_grad};
pub use elementwise::{add, add_bias, axpy, hadamard, scale, scale_rows, sub};
pub use lstm::{lstm_cell_fused, lstm_cell_fused_grad};
pub use matmul::{gather_rows, gather_rows_grad, matmul, matmul_a_bt, matmul_at_b, transpose};
pub use reduce::{concat_cols, mean_all, softmax_cross_entropy, split_cols, sum_cols, sum_rows};
