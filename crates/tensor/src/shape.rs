//! Shape arithmetic for dense tensors.

use crate::{Result, TensorError};

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Rank 0 (scalar) is represented by an empty dimension list and has
/// volume 1, matching TensorFlow semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`; shapes are validated at graph-construction
    /// time so an out-of-range axis here is a programming error.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Interprets the shape as a matrix `(rows, cols)`.
    ///
    /// Rank-1 shapes are viewed as a single row; higher ranks collapse all
    /// leading dimensions into rows, which is how the dataflow layer feeds
    /// batched activations into matmul kernels.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        match self.0.len() {
            0 => Err(TensorError::RankMismatch {
                op: "as_matrix",
                expected: 2,
                actual: 0,
            }),
            1 => Ok((1, self.0[0])),
            _ => {
                let cols = *self.0.last().expect("non-empty dims");
                let rows = self.0[..self.0.len() - 1].iter().product();
                Ok((rows, cols))
            }
        }
    }

    /// Checks that two shapes are identical, producing a typed error when not.
    pub fn ensure_same(&self, other: &Shape, op: &'static str) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                op,
                lhs: self.0.clone(),
                rhs: other.0.clone(),
            })
        }
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_volume_one() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn volume_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).volume(), 24);
        assert_eq!(Shape::from([7]).volume(), 7);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
    }

    #[test]
    fn offset_round_trips() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        assert_eq!(Shape::from([2, 3]).as_matrix().unwrap(), (2, 3));
        assert_eq!(Shape::from([2, 3, 4]).as_matrix().unwrap(), (6, 4));
        assert_eq!(Shape::from([5]).as_matrix().unwrap(), (1, 5));
        assert!(Shape::scalar().as_matrix().is_err());
    }

    #[test]
    fn ensure_same_reports_op() {
        let a = Shape::from([1, 2]);
        let b = Shape::from([2, 1]);
        let err = a.ensure_same(&b, "add").unwrap_err();
        assert!(err.to_string().contains("add"));
    }
}
