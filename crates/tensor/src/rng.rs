//! Deterministic random number generation.
//!
//! Every stochastic component in the reproduction (weight initialization,
//! Zipfian data sampling, data sharding shuffles) draws from a [`DetRng`]
//! seeded explicitly, so that experiments are replayable bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, explicitly seeded random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per worker replica.
    ///
    /// The derivation mixes the stream id so that different children never
    /// share a sequence even for adjacent ids.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base: u64 = self.inner.gen();
        DetRng::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)) // Weyl constant.
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        // Box-Muller transform; reject u1 == 0 to keep ln finite.
        let mut u1 = self.uniform();
        while u1 <= f32::EPSILON {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// An arbitrary `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut parent1 = DetRng::seed(42);
        let mut parent2 = DetRng::seed(42);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = DetRng::seed(42);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = DetRng::seed(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = DetRng::seed(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
