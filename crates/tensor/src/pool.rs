//! A small shared compute-worker pool for data-parallel kernels.
//!
//! Kernels split work across **disjoint output row ranges** only, so the
//! per-element accumulation order never depends on the thread count and
//! pooled results are bit-for-bit identical to serial execution (the
//! distributed-runner tests rely on bitwise reproducibility against
//! sequential SGD).
//!
//! Workers are spawned lazily on first use and shared process-wide; a
//! kernel call dispatches its chunks to the pool and runs the first
//! chunk on the calling thread. Pool workers never re-enter the pool
//! (nested calls run inline), which rules out dispatch deadlocks.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// The batch completion gate compiles against loom's primitives under
// `--cfg loom` so the dispatch protocol can be model-checked
// exhaustively (tests/loom_pool.rs); ordinary builds use std.
#[cfg(loom)]
use loom::sync::{Condvar, Mutex as GateMutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex as GateMutex};

/// Requested worker count; 0 means "use the default".
static DESIRED: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of compute threads kernels may use (including the
/// calling thread). `1` forces fully serial execution. Results are
/// identical for every setting; only wall-clock time changes.
pub fn configure_threads(n: usize) {
    DESIRED.store(n.max(1), Ordering::Relaxed);
}

/// The number of compute threads kernels currently use: the configured
/// value, or the machine's available parallelism by default.
pub fn effective_threads() -> usize {
    match DESIRED.load(Ordering::Relaxed) {
        0 => default_parallelism(),
        n => n,
    }
}

/// `available_parallelism()` probed once and cached: the std call reads
/// procfs/cgroup files on Linux (~10us), which would otherwise tax every
/// kernel dispatch on the hot path.
fn default_parallelism() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

struct Shared {
    tx: Sender<Task>,
    rx: Receiver<Task>,
    spawned: Mutex<usize>,
}

/// One chunk of a dispatched batch. The pointer stays valid because the
/// dispatching call blocks until every chunk has completed.
#[derive(Clone, Copy)]
struct Task {
    batch: *const Batch,
    index: usize,
}

// SAFETY: the Batch behind the pointer is Sync and outlives the task
// (see `run_batch`: the owner waits for `remaining == 0` on every path,
// including unwinding).
unsafe impl Send for Task {}

/// Completion gate for one dispatched batch: the owner [`wait`]s until
/// every outstanding chunk has [`arrive`]d. This is the whole
/// synchronization protocol between `run_batch` and the pool workers,
/// factored out so the loom suite can model-check it (all
/// interleavings of N arrivals against one waiter) in isolation.
///
/// [`wait`]: BatchGate::wait
/// [`arrive`]: BatchGate::arrive
#[doc(hidden)]
pub struct BatchGate {
    remaining: GateMutex<usize>,
    done: Condvar,
}

impl BatchGate {
    /// A gate that opens after `n` arrivals.
    pub fn new(n: usize) -> Self {
        BatchGate {
            remaining: GateMutex::new(n),
            done: Condvar::new(),
        }
    }

    /// Records one chunk completion; the arrival that brings the count
    /// to zero wakes the waiting owner.
    pub fn arrive(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every arrival has been recorded. The count can only
    /// decrease, so a wakeup observed at zero is final — there is no
    /// window where the owner returns while a worker still holds a
    /// reference to the batch.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Batch {
    /// Lifetime-erased chunk body; valid for the duration of the batch.
    f: *const (dyn Fn(usize) + Sync),
    gate: BatchGate,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: all interior state is behind Mutex/Condvar; `f` points at a
// Sync closure.
unsafe impl Sync for Batch {}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let (tx, rx) = unbounded();
        Shared {
            tx,
            rx,
            spawned: Mutex::new(0),
        }
    })
}

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn ensure_workers(n: usize) {
    let s = shared();
    let mut spawned = s.spawned.lock().unwrap_or_else(|e| e.into_inner());
    while *spawned < n {
        let rx = s.rx.clone();
        std::thread::Builder::new()
            .name(format!("parallax-compute-{spawned}"))
            .spawn(move || {
                IS_WORKER.set(true);
                while let Ok(task) = rx.recv() {
                    run_task(task);
                }
            })
            .expect("spawn compute worker");
        *spawned += 1;
    }
}

fn run_task(task: Task) {
    // SAFETY: the batch outlives the task (run_batch blocks on the gate
    // until every chunk arrived before returning).
    let batch = unsafe { &*task.batch };
    // SAFETY: `f` points at a closure borrowed for the whole batch; the
    // same gate keeps the borrow alive until after the last arrival.
    let f = unsafe { &*batch.f };
    let result = catch_unwind(AssertUnwindSafe(|| f(task.index)));
    if let Err(payload) = result {
        let mut slot = batch.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }
    batch.gate.arrive();
}

/// Runs `f(0), f(1), …, f(chunks - 1)`, possibly concurrently on pool
/// workers. Chunk 0 executes on the calling thread. Returns (or
/// resumes a chunk's panic) only after every chunk finished; bodies
/// must therefore partition their output so chunks never overlap.
pub fn run_batch(chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 || IS_WORKER.get() {
        for i in 0..chunks {
            f(i);
        }
        return;
    }
    ensure_workers(chunks - 1);
    // SAFETY: erase the borrow's lifetime to store it in Batch; the
    // batch is dropped (after all chunks finish) before `f` goes away.
    let f_erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync + '_)) };
    let batch = Batch {
        f: f_erased,
        gate: BatchGate::new(chunks - 1),
        panic: Mutex::new(None),
    };
    let s = shared();
    for index in 1..chunks {
        s.tx.send(Task {
            batch: &batch,
            index,
        })
        .expect("compute pool channel closed");
    }
    let mine = catch_unwind(AssertUnwindSafe(|| f(0)));
    batch.gate.wait();
    if let Err(payload) = mine {
        resume_unwind(payload);
    }
    let worker_panic = batch.panic.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Splits `out` (a `rows x row_len` buffer) into contiguous row chunks
/// and runs `body(first_row, chunk)` for each, in parallel when the
/// pool has threads to spare. Chunks are disjoint, so any `body` that
/// derives a row's value only from `first_row` and read-only inputs
/// produces bitwise-identical output at every thread count.
pub fn parallel_rows(
    out: &mut [f32],
    rows: usize,
    min_rows_per_chunk: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    if rows == 0 {
        return;
    }
    let row_len = out.len() / rows;
    debug_assert_eq!(out.len(), rows * row_len, "out must be rows x row_len");
    let chunks = effective_threads()
        .min(rows / min_rows_per_chunk.max(1))
        .max(1);
    if chunks == 1 {
        body(0, out);
        return;
    }
    // Even split with the remainder spread over the first chunks.
    let base_rows = rows / chunks;
    let extra = rows % chunks;
    let start_row = |c: usize| c * base_rows + c.min(extra);
    // The chunks are disjoint row ranges of `out`; share the base
    // pointer as an address so the dispatch closure stays Sync.
    let base_addr = out.as_mut_ptr() as usize;
    run_batch(chunks, &|c| {
        let (lo, hi) = (start_row(c), start_row(c + 1));
        // SAFETY: [lo, hi) ranges are disjoint across chunks and lie
        // within `out`, which outlives the batch.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                (base_addr as *mut f32).add(lo * row_len),
                (hi - lo) * row_len,
            )
        };
        body(lo, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_batch_covers_every_chunk() {
        configure_threads(3);
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        run_batch(8, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn parallel_rows_partitions_exactly() {
        configure_threads(4);
        let rows = 37;
        let row_len = 3;
        let mut out = vec![0.0f32; rows * row_len];
        parallel_rows(&mut out, rows, 1, |first_row, chunk| {
            for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row {
                    *v = (first_row + r) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(out[r * row_len + c], r as f32);
            }
        }
    }

    #[test]
    fn panics_propagate_to_caller() {
        configure_threads(2);
        let result = catch_unwind(|| {
            run_batch(4, &|i| {
                if i == 3 {
                    panic!("chunk boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool stays usable after a panic.
        run_batch(2, &|_| {});
    }
}
