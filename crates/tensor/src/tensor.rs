//! The dense [`Tensor`] type.

use crate::rng::DetRng;
use crate::shape::Shape;
use crate::{Result, TensorError};

/// A dense, row-major, `f32` tensor.
///
/// This is the unit of computation and of communication: AllReduce
/// operates on flattened tensor buffers, and Parameter Server shards hold
/// row ranges of 2-D tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// A tensor with i.i.d. normal entries scaled by `stddev`.
    pub fn randn(shape: impl Into<Shape>, stddev: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.volume()).map(|_| rng.normal() * stddev).collect();
        Tensor { shape, data }
    }

    /// Glorot/Xavier uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn glorot(shape: impl Into<Shape>, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let dims = shape.dims();
        let (fan_in, fan_out) = match dims.len() {
            0 => (1, 1),
            1 => (dims[0], dims[0]),
            _ => (dims[0], dims[dims.len() - 1]),
        };
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..shape.volume())
            .map(|_| rng.uniform_range(-limit, limit))
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The size of this tensor in bytes when serialized on the wire.
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Value of a scalar tensor.
    pub fn scalar_value(&self) -> Result<f32> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::InvalidArgument(format!(
                "scalar_value on tensor with {} elements",
                self.data.len()
            )))
        }
    }

    /// Reshapes in place to a shape of the same volume.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Returns row `r` of a matrix-viewed tensor.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: rows,
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Mutable row `r` of a matrix-viewed tensor.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: rows,
            });
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// # Examples
    ///
    /// ```
    /// use parallax_tensor::Tensor;
    /// let t = Tensor::new([3, 2], vec![0., 1., 2., 3., 4., 5.]).unwrap();
    /// let mid = t.slice_rows(1, 2).unwrap();
    /// assert_eq!(mid.data(), &[2., 3.]);
    /// ```
    /// Extracts the row range `[start, end)` of a matrix-viewed tensor as a
    /// new tensor. Used by Parameter Server sharding.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds {
                index: end,
                bound: rows + 1,
            });
        }
        Tensor::new(
            [end - start, cols],
            self.data[start * cols..end * cols].to_vec(),
        )
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (rows, cols) = self.shape.as_matrix()?;
        if cols == 0 {
            return Err(TensorError::InvalidArgument(
                "argmax over empty rows".into(),
            ));
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// True when all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.shape.ensure_same(&other.shape, "max_abs_diff")?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        assert!(Tensor::new([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::new([2, 2], vec![1.0; 3]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([3, 2]);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full([3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn row_access() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[4., 5., 6.]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn slice_rows_extracts_contiguous_range() {
        let t = Tensor::new([4, 2], (0..8).map(|x| x as f32).collect()).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.data(), &[2., 3., 4., 5.]);
        let empty = t.slice_rows(2, 2).unwrap();
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.data()[3], 4.0);
        assert!(r.reshape([5]).is_err());
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::new([2, 3], vec![0., 5., 5., 9., 1., 2.]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn glorot_is_bounded() {
        let mut rng = DetRng::seed(1);
        let t = Tensor::glorot([64, 64], &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn l2_norm_matches_manual() {
        let t = Tensor::new([2], vec![3.0, 4.0]).unwrap();
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn byte_size_is_four_per_element() {
        assert_eq!(Tensor::zeros([10, 10]).byte_size(), 400);
    }

    #[test]
    fn scalar_value_checks_len() {
        assert_eq!(Tensor::scalar(3.0).scalar_value().unwrap(), 3.0);
        assert!(Tensor::zeros([2]).scalar_value().is_err());
    }
}
