//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// The left-hand shape, as a dimension list.
        lhs: Vec<usize>,
        /// The right-hand shape, as a dimension list.
        rhs: Vec<usize>,
    },
    /// The number of data elements did not match the shape volume.
    LengthMismatch {
        /// Expected number of elements (shape volume).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A row or element index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must be below.
        bound: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = TensorError::LengthMismatch {
            expected: 4,
            actual: 2,
        };
        let b = TensorError::LengthMismatch {
            expected: 4,
            actual: 2,
        };
        assert_eq!(a, b);
    }
}
