//! Sparse gradients: the `IndexedSlices` representation.
//!
//! Mirrors TensorFlow's `IndexedSlices`: a gradient of an embedding-like
//! variable touches only a subset of rows, so it is stored as a list of row
//! indices plus a dense `[n, cols]` value block. The per-variable sparsity
//! ratio `alpha` from the paper (Section 2.2) is the ratio of *distinct*
//! rows touched in a step to the total number of rows.

use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Returns the entry slots sorted by `(row index, slot)`: groups of
/// equal row indices are contiguous and, within a group, slots keep
/// their original order. One sorted permutation serves both duplicate
/// merging ([`IndexedSlices::coalesce`]) and distinct-row counting
/// ([`IndexedSlices::alpha`]).
fn sorted_slot_order(indices: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..indices.len()).collect();
    order.sort_unstable_by_key(|&slot| (indices[slot], slot));
    order
}

/// A sparse update/gradient for a 2-D variable: `values[i]` applies to row
/// `indices[i]` of the variable. Indices may repeat (e.g. the same word
/// occurring twice in a batch); [`IndexedSlices::coalesce`] merges them.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedSlices {
    indices: Vec<usize>,
    values: Tensor,
    /// Number of rows in the full (dense) variable this slices into.
    dense_rows: usize,
}

impl IndexedSlices {
    /// Creates a sparse slice set.
    pub fn new(indices: Vec<usize>, values: Tensor, dense_rows: usize) -> Result<Self> {
        let (rows, _cols) = values.shape().as_matrix()?;
        if rows != indices.len() {
            return Err(TensorError::LengthMismatch {
                expected: indices.len(),
                actual: rows,
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= dense_rows) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                bound: dense_rows,
            });
        }
        Ok(IndexedSlices {
            indices,
            values,
            dense_rows,
        })
    }

    /// An empty slice set for a variable with `dense_rows` rows and
    /// `cols` columns.
    pub fn empty(dense_rows: usize, cols: usize) -> Self {
        IndexedSlices {
            indices: Vec::new(),
            values: Tensor::zeros([0, cols]),
            dense_rows,
        }
    }

    /// The row indices (possibly with duplicates).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The `[n, cols]` value block.
    pub fn values(&self) -> &Tensor {
        &self.values
    }

    /// Number of rows in the dense variable.
    pub fn dense_rows(&self) -> usize {
        self.dense_rows
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.values.shape().as_matrix().map(|(_, c)| c).unwrap_or(0)
    }

    /// Number of (index, value-row) entries.
    pub fn nnz_rows(&self) -> usize {
        self.indices.len()
    }

    /// Bytes on the wire: values plus 8-byte indices. The paper's analysis
    /// neglects index bytes; we carry them so the accounting is honest, and
    /// the analytic formulas remain a close approximation (cols >> 2).
    pub fn byte_size(&self) -> u64 {
        self.values.byte_size() + (self.indices.len() * std::mem::size_of::<u64>()) as u64
    }

    /// The sparsity ratio `alpha`: distinct rows touched / total rows.
    pub fn alpha(&self) -> f64 {
        if self.dense_rows == 0 {
            return 0.0;
        }
        let order = sorted_slot_order(&self.indices);
        let mut distinct = 0usize;
        let mut prev = usize::MAX;
        for &slot in &order {
            let idx = self.indices[slot];
            if distinct == 0 || idx != prev {
                distinct += 1;
                prev = idx;
            }
        }
        distinct as f64 / self.dense_rows as f64
    }

    /// # Examples
    ///
    /// ```
    /// use parallax_tensor::{IndexedSlices, Tensor};
    /// let s = IndexedSlices::new(
    ///     vec![3, 1, 3],
    ///     Tensor::new([3, 1], vec![1.0, 2.0, 4.0]).unwrap(),
    ///     5,
    /// )
    /// .unwrap();
    /// let c = s.coalesce();
    /// assert_eq!(c.indices(), &[1, 3]);
    /// assert_eq!(c.values().data(), &[2.0, 5.0]);
    /// ```
    /// Merges duplicate indices by summing their value rows, producing a
    /// canonical (sorted, unique-index) slice set.
    ///
    /// This is the "gradient aggregation for sparse variables requires
    /// iterating through nonzero indices one by one" operation whose cost
    /// partitioning parallelizes (Section 3.2).
    /// Sort-based: one index permutation, two exact-size output buffers,
    /// no per-row allocations. Duplicates accumulate in original slot
    /// order within each index group, matching a slot-order hash-merge
    /// exactly.
    pub fn coalesce(&self) -> IndexedSlices {
        let cols = self.cols();
        let vals = self.values.data();
        let order = sorted_slot_order(&self.indices);
        let mut indices: Vec<usize> = Vec::with_capacity(order.len());
        let mut data: Vec<f32> = Vec::with_capacity(vals.len());
        for &slot in &order {
            let idx = self.indices[slot];
            let row = &vals[slot * cols..(slot + 1) * cols];
            if indices.last() == Some(&idx) {
                let base = data.len() - cols;
                for (a, &b) in data[base..].iter_mut().zip(row) {
                    *a += b;
                }
            } else {
                indices.push(idx);
                data.extend_from_slice(row);
            }
        }
        let values =
            Tensor::new([indices.len(), cols], data).expect("coalesce shape is consistent");
        IndexedSlices {
            indices,
            values,
            dense_rows: self.dense_rows,
        }
    }

    /// Coalesces the logical concatenation of several slice sets without
    /// materializing it: equivalent to `concat(parts)?.coalesce()` (the
    /// release path of the sparse gradient accumulator), with value rows
    /// read in place from each part.
    pub fn coalesce_parts<'a>(
        parts: impl IntoIterator<Item = &'a IndexedSlices>,
    ) -> Result<IndexedSlices> {
        let parts: Vec<&IndexedSlices> = parts.into_iter().collect();
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("coalesce of zero IndexedSlices".into()))?;
        let cols = first.cols();
        let dense_rows = first.dense_rows;
        let mut total = 0usize;
        for p in &parts {
            if p.cols() != cols || p.dense_rows != dense_rows {
                return Err(TensorError::ShapeMismatch {
                    op: "IndexedSlices::coalesce_parts",
                    lhs: vec![dense_rows, cols],
                    rhs: vec![p.dense_rows, p.cols()],
                });
            }
            total += p.indices.len();
        }
        // Global slots ordered as in concat: (part, local slot) ascending.
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
        for (pi, p) in parts.iter().enumerate() {
            order.extend((0..p.indices.len()).map(|s| (pi, s)));
        }
        order.sort_unstable_by_key(|&(pi, s)| (parts[pi].indices[s], pi, s));
        let mut indices: Vec<usize> = Vec::with_capacity(total);
        let mut data: Vec<f32> = Vec::with_capacity(total * cols);
        for &(pi, slot) in &order {
            let part = parts[pi];
            let idx = part.indices[slot];
            let row = &part.values.data()[slot * cols..(slot + 1) * cols];
            if indices.last() == Some(&idx) {
                let base = data.len() - cols;
                for (a, &b) in data[base..].iter_mut().zip(row) {
                    *a += b;
                }
            } else {
                indices.push(idx);
                data.extend_from_slice(row);
            }
        }
        let values = Tensor::new([indices.len(), cols], data)?;
        Ok(IndexedSlices {
            indices,
            values,
            dense_rows,
        })
    }

    /// The canonical two-level (machine-blocked) coalesce: parts whose
    /// `group_of` entries match coalesce first, in slot order; the
    /// per-group subtotals then coalesce in group order. `group_of` must
    /// be non-decreasing (parts arranged group-major).
    ///
    /// This is the one association every aggregator — Parameter Server
    /// accumulators, AllGatherv workers, local-aggregation chiefs —
    /// folds sparse gradients in, so placement never changes the bits.
    /// A flat [`IndexedSlices::coalesce_parts`] over the same parts
    /// differs whenever a non-leading group contributes two slices to
    /// one row; pre-aggregated group subtotals are sorted-unique, on
    /// which coalescing is idempotent, so they pass through the inner
    /// level unchanged.
    pub fn coalesce_grouped(parts: &[IndexedSlices], group_of: &[usize]) -> Result<IndexedSlices> {
        if parts.len() != group_of.len() {
            return Err(TensorError::InvalidArgument(format!(
                "coalesce_grouped: {} parts but {} group ids",
                parts.len(),
                group_of.len()
            )));
        }
        if group_of.windows(2).any(|w| w[0] > w[1]) {
            return Err(TensorError::InvalidArgument(
                "coalesce_grouped: parts must be group-major".into(),
            ));
        }
        let mut subtotals: Vec<IndexedSlices> = Vec::new();
        let mut start = 0;
        while start < parts.len() {
            let group = group_of[start];
            let mut end = start + 1;
            while end < parts.len() && group_of[end] == group {
                end += 1;
            }
            subtotals.push(IndexedSlices::coalesce_parts(&parts[start..end])?);
            start = end;
        }
        IndexedSlices::coalesce_parts(&subtotals)
    }

    /// Concatenates several slice sets (the `AllGatherv` aggregation of the
    /// AR architecture): indices and values are appended in argument order.
    ///
    /// Accepts any borrowable parts (`&[IndexedSlices]`,
    /// `&[Arc<IndexedSlices>]`, …) so shared buffers coming off the
    /// transport concatenate without materializing owned copies first.
    pub fn concat<S: std::borrow::Borrow<IndexedSlices>>(parts: &[S]) -> Result<IndexedSlices> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero IndexedSlices".into()))?
            .borrow();
        let cols = first.cols();
        let dense_rows = first.dense_rows;
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for p in parts {
            let p = p.borrow();
            if p.cols() != cols || p.dense_rows != dense_rows {
                return Err(TensorError::ShapeMismatch {
                    op: "IndexedSlices::concat",
                    lhs: vec![dense_rows, cols],
                    rhs: vec![p.dense_rows, p.cols()],
                });
            }
            indices.extend_from_slice(&p.indices);
            data.extend_from_slice(p.values.data());
        }
        let values = Tensor::new([indices.len(), cols], data)?;
        IndexedSlices::new(indices, values, dense_rows)
    }

    /// Expands to a dense `[dense_rows, cols]` tensor, accumulating
    /// duplicate indices.
    pub fn to_dense(&self) -> Tensor {
        let cols = self.cols();
        let mut out = Tensor::zeros([self.dense_rows, cols]);
        for (slot, &idx) in self.indices.iter().enumerate() {
            let src = &self.values.data()[slot * cols..(slot + 1) * cols];
            let dst = &mut out.data_mut()[idx * cols..(idx + 1) * cols];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        out
    }

    /// Scales all values by a constant (gradient averaging).
    pub fn scale(&self, factor: f32) -> IndexedSlices {
        let mut values = self.values.clone();
        for v in values.data_mut() {
            *v *= factor;
        }
        IndexedSlices {
            indices: self.indices.clone(),
            values,
            dense_rows: self.dense_rows,
        }
    }

    /// Splits the slice set by a row-partitioning function: entry `i` goes
    /// to bucket `route(indices[i])` with its index rebased by the bucket's
    /// row offset. Used to scatter sparse pushes across PS partitions.
    pub fn split_by<F>(&self, buckets: usize, route: F) -> Vec<IndexedSlices>
    where
        F: Fn(usize) -> (usize, usize),
    {
        let cols = self.cols();
        // Counting-sort style: route once, then fill exactly-sized
        // buffers in slot order (identical output to repeated pushes,
        // without amortized-growth reallocations).
        let routed: Vec<(usize, usize)> = self.indices.iter().map(|&idx| route(idx)).collect();
        let mut counts: Vec<usize> = vec![0; buckets];
        let mut rows_parts: Vec<usize> = vec![0; buckets];
        for &(bucket, local) in &routed {
            counts[bucket] += 1;
            // Each bucket's dense_rows must cover its largest local
            // index; the caller re-labels with true partition sizes, so
            // use a safe bound.
            rows_parts[bucket] = rows_parts[bucket].max(local + 1);
        }
        let mut idx_parts: Vec<Vec<usize>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let mut val_parts: Vec<Vec<f32>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c * cols))
            .collect();
        for (slot, &(bucket, local)) in routed.iter().enumerate() {
            idx_parts[bucket].push(local);
            val_parts[bucket]
                .extend_from_slice(&self.values.data()[slot * cols..(slot + 1) * cols]);
        }
        idx_parts
            .into_iter()
            .zip(val_parts)
            .zip(rows_parts)
            .map(|((indices, data), rows)| {
                let n = indices.len();
                IndexedSlices {
                    indices,
                    values: Tensor::new([n, cols], data).expect("split shape consistent"),
                    dense_rows: rows,
                }
            })
            .collect()
    }
}

/// Either a dense or a sparse gradient — the discriminator Parallax uses to
/// classify variables (Section 5, "Identifying the sparsity of a variable").
#[derive(Debug, Clone, PartialEq)]
pub enum Grad {
    /// Gradient with every element present.
    Dense(Tensor),
    /// Gradient touching a subset of rows.
    Sparse(IndexedSlices),
}

impl Grad {
    /// True if this is a sparse gradient.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Grad::Sparse(_))
    }

    /// Bytes on the wire for this gradient.
    pub fn byte_size(&self) -> u64 {
        match self {
            Grad::Dense(t) => t.byte_size(),
            Grad::Sparse(s) => s.byte_size(),
        }
    }

    /// Densifies (sparse gradients accumulate duplicates).
    pub fn to_dense(&self) -> Tensor {
        match self {
            Grad::Dense(t) => t.clone(),
            Grad::Sparse(s) => s.to_dense(),
        }
    }

    /// Scales the gradient by a constant.
    pub fn scale(&self, factor: f32) -> Grad {
        match self {
            Grad::Dense(t) => {
                let mut t = t.clone();
                for v in t.data_mut() {
                    *v *= factor;
                }
                Grad::Dense(t)
            }
            Grad::Sparse(s) => Grad::Sparse(s.scale(factor)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slices(indices: Vec<usize>, rows_data: Vec<Vec<f32>>, dense_rows: usize) -> IndexedSlices {
        let cols = rows_data[0].len();
        let flat: Vec<f32> = rows_data.concat();
        IndexedSlices::new(
            indices.clone(),
            Tensor::new([indices.len(), cols], flat).unwrap(),
            dense_rows,
        )
        .unwrap()
    }

    #[test]
    fn new_validates_bounds_and_len() {
        let vals = Tensor::zeros([2, 3]);
        assert!(IndexedSlices::new(vec![0, 9], vals.clone(), 10).is_ok());
        assert!(IndexedSlices::new(vec![0, 10], vals.clone(), 10).is_err());
        assert!(IndexedSlices::new(vec![0], vals, 10).is_err());
    }

    #[test]
    fn alpha_counts_distinct_rows() {
        let s = slices(vec![1, 1, 3], vec![vec![1.0], vec![2.0], vec![3.0]], 10);
        assert!((s.alpha() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn coalesce_sums_duplicates_and_sorts() {
        let s = slices(
            vec![3, 1, 3],
            vec![vec![1.0, 0.0], vec![2.0, 2.0], vec![4.0, 1.0]],
            5,
        );
        let c = s.coalesce();
        assert_eq!(c.indices(), &[1, 3]);
        assert_eq!(c.values().data(), &[2.0, 2.0, 5.0, 1.0]);
    }

    #[test]
    fn to_dense_accumulates() {
        let s = slices(vec![0, 0, 2], vec![vec![1.0], vec![1.0], vec![7.0]], 3);
        let d = s.to_dense();
        assert_eq!(d.data(), &[2.0, 0.0, 7.0]);
    }

    #[test]
    fn coalesce_then_densify_equals_densify() {
        let s = slices(
            vec![4, 0, 4, 2, 0],
            vec![
                vec![1., 2.],
                vec![3., 4.],
                vec![5., 6.],
                vec![7., 8.],
                vec![9., 10.],
            ],
            6,
        );
        let direct = s.to_dense();
        let via = s.coalesce().to_dense();
        assert_eq!(direct, via);
    }

    #[test]
    fn coalesce_parts_matches_concat_then_coalesce() {
        let a = slices(
            vec![4, 1, 4],
            vec![vec![1., 2.], vec![3., 4.], vec![5., 6.]],
            6,
        );
        let b = slices(vec![1, 0], vec![vec![7., 8.], vec![9., 10.]], 6);
        let fused = IndexedSlices::coalesce_parts([&a, &b]).unwrap();
        let via = IndexedSlices::concat(&[a, b]).unwrap().coalesce();
        assert_eq!(fused, via);
        assert!(IndexedSlices::coalesce_parts([]).is_err());
    }

    #[test]
    fn concat_appends_in_order() {
        let a = slices(vec![1], vec![vec![1.0]], 4);
        let b = slices(vec![3, 0], vec![vec![2.0], vec![3.0]], 4);
        let c = IndexedSlices::concat(&[a, b]).unwrap();
        assert_eq!(c.indices(), &[1, 3, 0]);
        assert_eq!(c.values().data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_rejects_mismatched_width() {
        let a = slices(vec![0], vec![vec![1.0]], 4);
        let b = slices(vec![0], vec![vec![1.0, 2.0]], 4);
        assert!(IndexedSlices::concat(&[a, b]).is_err());
    }

    #[test]
    fn split_by_routes_rows() {
        // Partition rows 0..6 into [0..3) and [3..6).
        let s = slices(
            vec![0, 4, 2, 5],
            vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            6,
        );
        let parts = s.split_by(2, |r| if r < 3 { (0, r) } else { (1, r - 3) });
        assert_eq!(parts[0].indices(), &[0, 2]);
        assert_eq!(parts[0].values().data(), &[1.0, 3.0]);
        assert_eq!(parts[1].indices(), &[1, 2]);
        assert_eq!(parts[1].values().data(), &[2.0, 4.0]);
    }

    #[test]
    fn grad_byte_size_includes_indices() {
        let s = slices(vec![0, 1], vec![vec![1.0, 1.0], vec![1.0, 1.0]], 4);
        // 4 values * 4 bytes + 2 indices * 8 bytes.
        assert_eq!(Grad::Sparse(s).byte_size(), 16 + 16);
    }

    #[test]
    fn grad_scale_dense_and_sparse() {
        let d = Grad::Dense(Tensor::full([2], 2.0)).scale(0.5);
        assert_eq!(d.to_dense().data(), &[1.0, 1.0]);
        let s = Grad::Sparse(slices(vec![1], vec![vec![4.0]], 2)).scale(0.25);
        assert_eq!(s.to_dense().data(), &[0.0, 1.0]);
    }
}
