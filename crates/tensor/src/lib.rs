#![warn(missing_docs)]

//! Dense and sparse tensor primitives for the Parallax reproduction.
//!
//! This crate plays the role of TensorFlow's tensor layer in the original
//! system: a dense [`Tensor`] abstraction plus the [`IndexedSlices`]
//! sparse-gradient representation that Parallax's sparsity analysis is
//! built around. All math is `f32` on the host; simulated GPUs in the
//! upper layers execute these kernels on worker threads.

pub mod error;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod sparse;
pub mod tensor;
pub mod view;

pub use error::TensorError;
pub use rng::DetRng;
pub use shape::Shape;
pub use sparse::IndexedSlices;
pub use tensor::Tensor;
pub use view::TensorView;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, TensorError>;
