//! Communication errors.

use std::fmt;

/// Errors produced by the transport and collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank does not exist.
    UnknownRank(usize),
    /// The channel to a peer is closed (peer thread exited).
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// A received payload had an unexpected kind.
    PayloadKind {
        /// What the receiver expected.
        expected: &'static str,
    },
    /// Collective participants disagreed on buffer lengths.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        actual: usize,
    },
    /// Invalid collective configuration (e.g. zero participants).
    InvalidConfig(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            CommError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            CommError::PayloadKind { expected } => {
                write!(f, "unexpected payload kind, expected {expected}")
            }
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "collective length mismatch: expected {expected}, got {actual}"
                )
            }
            CommError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}
