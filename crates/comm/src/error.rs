//! Communication errors.

use std::fmt;

/// Errors produced by the transport and collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank does not exist.
    UnknownRank(usize),
    /// The channel to a peer is closed (peer thread exited).
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// A received payload had an unexpected kind.
    PayloadKind {
        /// What the receiver expected.
        expected: &'static str,
    },
    /// Collective participants disagreed on buffer lengths.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        actual: usize,
    },
    /// Invalid collective configuration (e.g. zero participants).
    InvalidConfig(String),
    /// A receive deadline expired with no message from the peer (which
    /// may still be alive but slow). `peer` is `usize::MAX` for
    /// `recv_any`, which waits on all ranks at once.
    PeerTimeout {
        /// The rank being waited on (`usize::MAX` = any rank).
        peer: usize,
        /// How long the receiver waited before giving up.
        waited_ms: u64,
    },
    /// A receive deadline expired and the peer is registered dead in the
    /// router's health registry — a detected failure, not mere slowness.
    PeerDead {
        /// The dead rank.
        peer: usize,
    },
    /// A routed message was rejected by the installed session-machine
    /// validator ([`crate::protocheck::SessionValidator`]): the link is
    /// not allowed to carry this (namespace, kind, variable, partition)
    /// at this point of the schedule. Protocol drift surfaces here as a
    /// typed error instead of a hang on the receiving side.
    Protocol {
        /// Sending rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// The offending wire tag.
        tag: u64,
        /// Human-readable rejection reason.
        reason: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            CommError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            CommError::PayloadKind { expected } => {
                write!(f, "unexpected payload kind, expected {expected}")
            }
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "collective length mismatch: expected {expected}, got {actual}"
                )
            }
            CommError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CommError::PeerTimeout { peer, waited_ms } => {
                if *peer == usize::MAX {
                    write!(f, "timed out after {waited_ms}ms waiting on any peer")
                } else {
                    write!(f, "timed out after {waited_ms}ms waiting on peer {peer}")
                }
            }
            CommError::PeerDead { peer } => write!(f, "peer {peer} is dead"),
            CommError::Protocol {
                from,
                to,
                tag,
                reason,
            } => {
                write!(
                    f,
                    "protocol violation on link {from} -> {to} (tag {tag:#018x}): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}
