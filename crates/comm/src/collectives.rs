//! Collective communication: ring AllReduce, AllGatherv, broadcast,
//! reduce and barrier.
//!
//! Every participant calls the same function concurrently with its own
//! endpoint and the same participant list and tag. Ring collectives only
//! ever receive from the ring predecessor under a single tag, so FIFO
//! channel ordering guarantees step alignment without per-step tags.
//!
//! Costs match the paper's Section 3.1 analysis: ring AllReduce moves
//! `w/N` bytes per worker per step for `2(N-1)` steps; AllGatherv moves
//! each worker's full contribution for `N-1` steps.

use std::sync::Arc;

use parallax_tensor::{IndexedSlices, Tensor};
use parallax_trace::{span, SpanCat};

use crate::transport::{unwrap_shared, Endpoint, Payload};
use crate::wire::{PackedSlices, WireFormat};
use crate::{CommError, Result};

/// Position of this endpoint within the participant list.
fn position(ep: &Endpoint, ranks: &[usize]) -> Result<usize> {
    if ranks.is_empty() {
        return Err(CommError::InvalidConfig("empty participant list".into()));
    }
    ranks
        .iter()
        .position(|&r| r == ep.rank())
        .ok_or_else(|| CommError::InvalidConfig(format!("rank {} not in group", ep.rank())))
}

/// The element range of chunk `i` when `len` elements are cut into `n`
/// near-equal chunks. Shared with the static traffic predictor
/// (`crate::predict`) so the replayed ring schedule cannot drift from
/// the executed one.
pub(crate) fn chunk_range(len: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let rem = len % n;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    start..start + size
}

/// The exact sum [`ring_allreduce`] produces, computed locally from the
/// per-participant contributions (indexed by ring position).
///
/// The ring fixes the fold association per chunk: chunk `c` starts at
/// position `c` and accumulates `w_c + w_{c+1} + … + w_{c+n-1}` in
/// ascending position order (wrapping mod `n`). Any aggregator that
/// must be bitwise interchangeable with the ring — in particular the
/// Parameter Server's dense accumulator — replays that exact schedule
/// through this function instead of summing in arrival order.
pub fn ring_reduce_reference(parts: &[&[f32]]) -> Result<Vec<f32>> {
    let n = parts.len();
    if n == 0 {
        return Err(CommError::InvalidConfig("empty participant list".into()));
    }
    let len = parts[0].len();
    for p in parts {
        if p.len() != len {
            return Err(CommError::LengthMismatch {
                expected: len,
                actual: p.len(),
            });
        }
    }
    let mut out = vec![0.0f32; len];
    for c in 0..n {
        let range = chunk_range(len, n, c);
        let acc = &mut out[range.clone()];
        acc.copy_from_slice(&parts[c][range.clone()]);
        for k in 1..n {
            for (a, d) in acc.iter_mut().zip(&parts[(c + k) % n][range.clone()]) {
                *a += *d;
            }
        }
    }
    Ok(out)
}

/// Ring AllReduce (sum) in place: after the call every participant's
/// `data` holds the elementwise sum over all participants.
pub fn ring_allreduce(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    data: &mut [f32],
) -> Result<()> {
    let _span = span(SpanCat::Collective, "allreduce");
    let pos = position(ep, ranks)?;
    let n = ranks.len();
    if n == 1 {
        return Ok(());
    }
    let next = ranks[(pos + 1) % n];
    let prev = ranks[(pos + n - 1) % n];
    let len = data.len();

    // The chunk travelling the ring lives in `send_buf` and rotates:
    // every hop *moves* it into the router (no per-step copy — only the
    // entry copy of the first outgoing chunk below), adds the local
    // contribution into the incoming buffer, and sends that next.
    //
    // Reduce-scatter: after step s the travelling chunk (pos - s - 1)
    // holds the partial sum of s + 2 contributions; after N-1 steps rank
    // `pos` owns the fully reduced chunk (pos + 1) mod N. `data` itself
    // stays untouched during this phase: every chunk index is received
    // exactly once, so `data[recv_range]` is always the original local
    // contribution, and partial sums never need to be written back
    // (the allgather phase overwrites those ranges anyway).
    let mut send_buf = data[chunk_range(len, n, pos)].to_vec();
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allreduce.reduce_scatter");
        let recv_idx = (pos + n - step - 1) % n;
        ep.send(next, tag, Payload::Floats(Arc::new(send_buf)))?;
        let mut incoming = ep.recv(prev, tag)?.into_floats()?;
        let recv_range = chunk_range(len, n, recv_idx);
        if incoming.len() != recv_range.len() {
            return Err(CommError::LengthMismatch {
                expected: recv_range.len(),
                actual: incoming.len(),
            });
        }
        // partial + local: f32 addition is commutative, so this is
        // bitwise identical to adding incoming into the local chunk.
        for (x, d) in incoming.iter_mut().zip(&data[recv_range]) {
            *x += *d;
        }
        send_buf = incoming;
    }
    // The rotation ends holding this rank's fully reduced chunk.
    data[chunk_range(len, n, (pos + 1) % n)].copy_from_slice(&send_buf);
    // Allgather: circulate the reduced chunks, forwarding each received
    // buffer on the next hop. The first outgoing chunk (pos + 1) mod N
    // is exactly what `send_buf` already holds.
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allreduce.allgather");
        let recv_idx = (pos + n - step) % n;
        ep.send(next, tag, Payload::Floats(Arc::new(send_buf)))?;
        let incoming = ep.recv(prev, tag)?.into_floats()?;
        let recv_range = chunk_range(len, n, recv_idx);
        if incoming.len() != recv_range.len() {
            return Err(CommError::LengthMismatch {
                expected: recv_range.len(),
                actual: incoming.len(),
            });
        }
        data[recv_range].copy_from_slice(&incoming);
        send_buf = incoming;
    }
    Ok(())
}

/// Ring AllReduce over a tensor's buffer.
pub fn ring_allreduce_tensor(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    tensor: &mut Tensor,
) -> Result<()> {
    ring_allreduce(ep, ranks, tag, tensor.data_mut())
}

/// Ring AllReduce with a selectable [`WireFormat`]: chunks travel as
/// 16-bit wire words under f16/bf16, halving dense exchange bytes.
///
/// Accumulation stays in f32 on every hop (decode → add local f32 →
/// re-encode), so the reduction order is the fixed ring order and the
/// result is deterministic. The reduced chunk is encoded *once* by its
/// ring owner; the owner keeps the decode of that exact encoding and
/// forwards the same words verbatim around the allgather ring, so every
/// rank decodes identical bytes and all replicas stay bitwise
/// identical — the invariant the distributed-runner tests assert.
pub fn ring_allreduce_wire(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    data: &mut [f32],
    wire: WireFormat,
) -> Result<()> {
    if !wire.compresses() {
        return ring_allreduce(ep, ranks, tag, data);
    }
    let _span = span(SpanCat::Collective, "allreduce");
    let pos = position(ep, ranks)?;
    let n = ranks.len();
    if n == 1 {
        // Nothing crosses the wire, so nothing is quantized.
        return Ok(());
    }
    let next = ranks[(pos + 1) % n];
    let prev = ranks[(pos + n - 1) % n];
    let len = data.len();

    // Same rotation as `ring_allreduce`; the travelling chunk is held
    // in f32 between hops and encoded only at the send boundary.
    let mut send_f32 = data[chunk_range(len, n, pos)].to_vec();
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allreduce.reduce_scatter");
        let recv_idx = (pos + n - step - 1) % n;
        ep.send(
            next,
            tag,
            Payload::Words(Arc::new(wire.encode_vec(&send_f32))),
        )?;
        let incoming = ep.recv(prev, tag)?.into_shared_words()?;
        let recv_range = chunk_range(len, n, recv_idx);
        if incoming.len() != recv_range.len() {
            return Err(CommError::LengthMismatch {
                expected: recv_range.len(),
                actual: incoming.len(),
            });
        }
        let mut acc = wire.decode_vec(&incoming);
        for (x, d) in acc.iter_mut().zip(&data[recv_range]) {
            *x += *d;
        }
        send_f32 = acc;
    }
    // The owner encodes the fully reduced chunk once; both its own copy
    // and every forwarded copy decode those same words.
    let mut send_words = Arc::new(wire.encode_vec(&send_f32));
    wire.decode_into(&send_words, &mut data[chunk_range(len, n, (pos + 1) % n)]);
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allreduce.allgather");
        let recv_idx = (pos + n - step) % n;
        ep.send(next, tag, Payload::Words(Arc::clone(&send_words)))?;
        let incoming = ep.recv(prev, tag)?.into_shared_words()?;
        let recv_range = chunk_range(len, n, recv_idx);
        if incoming.len() != recv_range.len() {
            return Err(CommError::LengthMismatch {
                expected: recv_range.len(),
                actual: incoming.len(),
            });
        }
        wire.decode_into(&incoming, &mut data[recv_range]);
        send_words = incoming;
    }
    Ok(())
}

/// [`ring_allreduce_wire`] over a tensor's buffer.
pub fn ring_allreduce_tensor_wire(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    tensor: &mut Tensor,
    wire: WireFormat,
) -> Result<()> {
    ring_allreduce_wire(ep, ranks, tag, tensor.data_mut(), wire)
}

/// Ring AllGatherv: every participant contributes a variable-length float
/// buffer; everyone receives all contributions, ordered by group position.
///
/// Parts are returned behind [`Arc`]s: a forwarded buffer is shared by
/// reference count instead of cloned per hop, so each contribution is
/// allocated once ring-wide no matter how many participants relay it.
pub fn allgatherv(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    local: Vec<f32>,
) -> Result<Vec<Arc<Vec<f32>>>> {
    let _span = span(SpanCat::Collective, "allgatherv");
    let pos = position(ep, ranks)?;
    let n = ranks.len();
    let mut parts: Vec<Option<Arc<Vec<f32>>>> = vec![None; n];
    parts[pos] = Some(Arc::new(local));
    if n == 1 {
        return Ok(parts
            .into_iter()
            .map(|p| p.expect("own part set"))
            .collect());
    }
    let next = ranks[(pos + 1) % n];
    let prev = ranks[(pos + n - 1) % n];
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allgatherv.step");
        let send_idx = (pos + n - step) % n;
        let recv_idx = (pos + n - step - 1) % n;
        let outgoing = Arc::clone(parts[send_idx].as_ref().expect("forwarding a filled slot"));
        ep.send(next, tag, Payload::Floats(outgoing))?;
        parts[recv_idx] = Some(ep.recv(prev, tag)?.into_shared_floats()?);
    }
    Ok(parts
        .into_iter()
        .map(|p| p.expect("all slots filled"))
        .collect())
}

/// Ring AllGatherv over [`IndexedSlices`], returning the per-participant
/// contributions in group-position order instead of concatenating them.
///
/// Callers that need a machine-blocked aggregation order (the canonical
/// two-level sparse fold shared with the Parameter Server accumulators)
/// group these parts themselves; [`allgatherv_slices`] is the
/// concatenating convenience wrapper.
pub fn allgatherv_slices_parts(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    local: IndexedSlices,
) -> Result<Vec<Arc<IndexedSlices>>> {
    let _span = span(SpanCat::Collective, "allgatherv_slices");
    let pos = position(ep, ranks)?;
    let n = ranks.len();
    let mut parts: Vec<Option<Arc<IndexedSlices>>> = vec![None; n];
    parts[pos] = Some(Arc::new(local));
    if n > 1 {
        let next = ranks[(pos + 1) % n];
        let prev = ranks[(pos + n - 1) % n];
        for step in 0..n - 1 {
            let _step = span(SpanCat::Collective, "allgatherv_slices.step");
            let send_idx = (pos + n - step) % n;
            let recv_idx = (pos + n - step - 1) % n;
            // Forward by reference count — the slice set is allocated
            // once ring-wide, not once per relaying hop.
            let outgoing = Arc::clone(parts[send_idx].as_ref().expect("forwarding a filled slot"));
            ep.send(next, tag, Payload::Slices(outgoing))?;
            parts[recv_idx] = Some(ep.recv(prev, tag)?.into_shared_slices()?);
        }
    }
    Ok(parts.into_iter().map(|p| p.expect("all filled")).collect())
}

/// Ring AllGatherv over [`IndexedSlices`] — the sparse-gradient exchange of
/// the AR architecture (Figure 2(d)): every participant ends up with the
/// concatenation of all contributions in group order.
pub fn allgatherv_slices(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    local: IndexedSlices,
) -> Result<IndexedSlices> {
    let shared = allgatherv_slices_parts(ep, ranks, tag, local)?;
    IndexedSlices::concat(&shared).map_err(|_| CommError::LengthMismatch {
        expected: 0,
        actual: 0,
    })
}

/// [`allgatherv_slices`] with a selectable [`WireFormat`]: under
/// f16/bf16 the slice *indices* travel as zigzag-delta varints
/// ([`PackedSlices`]) while values stay f32, so the exchange is
/// lossless and the result is bitwise identical to the raw format.
/// Each contribution is packed once at its source and forwarded by
/// reference count, exactly like the raw path.
pub fn allgatherv_slices_wire(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    local: IndexedSlices,
    wire: WireFormat,
) -> Result<IndexedSlices> {
    let parts = allgatherv_slices_parts_wire(ep, ranks, tag, local, wire)?;
    IndexedSlices::concat(&parts).map_err(|_| CommError::LengthMismatch {
        expected: 0,
        actual: 0,
    })
}

/// [`allgatherv_slices_parts`] with a selectable [`WireFormat`]; the
/// per-participant parts come back in group-position order and the index
/// packing is lossless, so results are bitwise identical to the raw
/// format.
pub fn allgatherv_slices_parts_wire(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    local: IndexedSlices,
    wire: WireFormat,
) -> Result<Vec<IndexedSlices>> {
    if !wire.compresses() {
        return Ok(allgatherv_slices_parts(ep, ranks, tag, local)?
            .into_iter()
            .map(unwrap_shared)
            .collect());
    }
    let _span = span(SpanCat::Collective, "allgatherv_slices");
    let pos = position(ep, ranks)?;
    let n = ranks.len();
    if n == 1 {
        return Ok(vec![local]);
    }
    let mut parts: Vec<Option<Arc<PackedSlices>>> = vec![None; n];
    parts[pos] = Some(Arc::new(PackedSlices::pack(&local)));
    let next = ranks[(pos + 1) % n];
    let prev = ranks[(pos + n - 1) % n];
    for step in 0..n - 1 {
        let _step = span(SpanCat::Collective, "allgatherv_slices.step");
        let send_idx = (pos + n - step) % n;
        let recv_idx = (pos + n - step - 1) % n;
        let outgoing = Arc::clone(parts[send_idx].as_ref().expect("forwarding a filled slot"));
        ep.send(next, tag, Payload::Packed(outgoing))?;
        parts[recv_idx] = Some(ep.recv(prev, tag)?.into_shared_packed()?);
    }
    Ok(parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            if i == pos {
                // Own contribution needs no decode roundtrip (the codec
                // is lossless anyway; this just skips the work).
                local.clone()
            } else {
                p.expect("all filled").unpack()
            }
        })
        .collect())
}

/// Broadcast from `root`: the root's tensor is delivered to every
/// participant (used to seed replicas with identical initial variables).
pub fn broadcast(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    root: usize,
    value: Option<Tensor>,
) -> Result<Tensor> {
    let _span = span(SpanCat::Collective, "broadcast");
    position(ep, ranks)?;
    if ep.rank() == root {
        let t = value
            .ok_or_else(|| CommError::InvalidConfig("broadcast root must supply a value".into()))?;
        // One shared allocation for every peer instead of a copy each;
        // the root pays at most one clone when unwrapping at the end.
        let shared = Arc::new(t);
        for &r in ranks {
            if r != root {
                ep.send(r, tag, Payload::Tensor(Arc::clone(&shared)))?;
            }
        }
        Ok(unwrap_shared(shared))
    } else {
        ep.recv(root, tag)?.into_tensor()
    }
}

/// Reduce (sum) to `root`: the root returns the elementwise sum of all
/// contributions, others return `None`. This is the primitive behind
/// Parallax's *local aggregation* — a machine's local chief sums its
/// workers' gradients before anything leaves the machine.
pub fn reduce_to(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    root: usize,
    data: Vec<f32>,
) -> Result<Option<Vec<f32>>> {
    let _span = span(SpanCat::Collective, "reduce_to");
    position(ep, ranks)?;
    if ep.rank() == root {
        let mut acc = data;
        for &r in ranks {
            if r == root {
                continue;
            }
            let incoming = ep.recv(r, tag)?.into_floats()?;
            if incoming.len() != acc.len() {
                return Err(CommError::LengthMismatch {
                    expected: acc.len(),
                    actual: incoming.len(),
                });
            }
            for (a, x) in acc.iter_mut().zip(incoming) {
                *a += x;
            }
        }
        Ok(Some(acc))
    } else {
        ep.send(root, tag, Payload::Floats(Arc::new(data)))?;
        Ok(None)
    }
}

/// Gathers [`IndexedSlices`] to `root` and concatenates them there (sparse
/// local aggregation); non-roots return `None`.
pub fn gather_slices_to(
    ep: &mut Endpoint,
    ranks: &[usize],
    tag: u64,
    root: usize,
    data: IndexedSlices,
) -> Result<Option<IndexedSlices>> {
    let _span = span(SpanCat::Collective, "gather_slices_to");
    position(ep, ranks)?;
    if ep.rank() == root {
        let mut parts = vec![data];
        for &r in ranks {
            if r == root {
                continue;
            }
            parts.push(ep.recv(r, tag)?.into_slices()?);
        }
        let joined = IndexedSlices::concat(&parts).map_err(|_| CommError::LengthMismatch {
            expected: 0,
            actual: 0,
        })?;
        Ok(Some(joined))
    } else {
        ep.send(root, tag, Payload::Slices(Arc::new(data)))?;
        Ok(None)
    }
}

/// Barrier across the participant list (star through the first rank).
pub fn barrier(ep: &mut Endpoint, ranks: &[usize], tag: u64) -> Result<()> {
    let _span = span(SpanCat::Collective, "barrier");
    position(ep, ranks)?;
    let hub = ranks[0];
    if ep.rank() == hub {
        for &r in &ranks[1..] {
            ep.recv(r, tag)?.into_control()?;
        }
        for &r in &ranks[1..] {
            ep.send(r, tag, Payload::Control(0))?;
        }
    } else {
        ep.send(hub, tag, Payload::Control(0))?;
        ep.recv(hub, tag)?.into_control()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::transport::Router;

    /// Runs `f` on every endpoint concurrently, collecting results by rank.
    fn run_all<T: Send>(
        topo: Topology,
        f: impl Fn(&mut Endpoint, &[usize]) -> T + Sync,
    ) -> (Vec<T>, crate::traffic::TrafficSnapshot) {
        let n = topo.num_workers();
        let ranks: Vec<usize> = (0..n).collect();
        let (eps, traffic) = Router::build(topo);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for mut ep in eps {
                let ranks = &ranks;
                let f = &f;
                handles.push(s.spawn(move || (ep.rank(), f(&mut ep, ranks))));
            }
            for h in handles {
                let (rank, val) = h.join().expect("worker thread panicked");
                out[rank] = Some(val);
            }
        });
        (
            out.into_iter().map(|v| v.expect("all ranks ran")).collect(),
            traffic.snapshot(),
        )
    }

    #[test]
    fn allreduce_matches_sequential_sum() {
        for machines in [1, 2, 4] {
            let topo = Topology::uniform(machines, 2).unwrap();
            let n = topo.num_workers();
            let len = 10;
            let (results, _) = run_all(topo, |ep, ranks| {
                let mut data: Vec<f32> = (0..len).map(|i| (ep.rank() * 100 + i) as f32).collect();
                ring_allreduce(ep, ranks, 1, &mut data).unwrap();
                data
            });
            let expected: Vec<f32> = (0..len)
                .map(|i| (0..n).map(|r| (r * 100 + i) as f32).sum())
                .collect();
            for r in &results {
                assert_eq!(r, &expected);
            }
        }
    }

    #[test]
    fn allreduce_handles_len_not_divisible_by_n() {
        let topo = Topology::uniform(3, 1).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let mut data = vec![ep.rank() as f32 + 1.0; 7];
            ring_allreduce(ep, ranks, 1, &mut data).unwrap();
            data
        });
        for r in &results {
            assert_eq!(r, &vec![6.0; 7]);
        }
    }

    #[test]
    fn allreduce_single_worker_is_identity() {
        let topo = Topology::uniform(1, 1).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let mut data = vec![3.0, 4.0];
            ring_allreduce(ep, ranks, 1, &mut data).unwrap();
            data
        });
        assert_eq!(results[0], vec![3.0, 4.0]);
    }

    #[test]
    fn allreduce_network_bytes_match_ring_formula() {
        // One worker per machine: every ring hop crosses the network, so
        // per machine out-bytes = 2(N-1) * (w/N) * 4 bytes (Table 3, AR
        // dense row: 4 w (N-1)/N total for send+recv).
        let n = 4usize;
        let len = 8usize; // Divisible by N for an exact formula.
        let topo = Topology::uniform(n, 1).unwrap();
        let (_, traffic) = run_all(topo, |ep, ranks| {
            let mut data = vec![1.0f32; len];
            ring_allreduce(ep, ranks, 1, &mut data).unwrap();
        });
        let per_machine_out = 2 * (n as u64 - 1) * (len as u64 / n as u64) * 4;
        for m in 0..n {
            assert_eq!(traffic.out_bytes[m], per_machine_out);
            assert_eq!(traffic.in_bytes[m], per_machine_out);
        }
    }

    #[test]
    fn allgatherv_orders_by_rank() {
        let topo = Topology::uniform(3, 1).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let local = vec![ep.rank() as f32; ep.rank() + 1];
            allgatherv(ep, ranks, 2, local).unwrap()
        });
        for parts in &results {
            assert_eq!(parts.len(), 3);
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(**part, vec![r as f32; r + 1]);
            }
        }
    }

    #[test]
    fn allgatherv_slices_concatenates_in_group_order() {
        use parallax_tensor::Tensor;
        let topo = Topology::uniform(2, 1).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let r = ep.rank();
            let local =
                IndexedSlices::new(vec![r, r + 1], Tensor::full([2, 1], r as f32), 8).unwrap();
            allgatherv_slices(ep, ranks, 3, local).unwrap()
        });
        for s in &results {
            assert_eq!(s.indices(), &[0, 1, 1, 2]);
            assert_eq!(s.values().data(), &[0.0, 0.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn broadcast_distributes_root_value() {
        use parallax_tensor::Tensor;
        let topo = Topology::uniform(2, 2).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let value = (ep.rank() == 0).then(|| Tensor::full([3], 7.0));
            broadcast(ep, ranks, 4, 0, value).unwrap()
        });
        for t in &results {
            assert_eq!(t.data(), &[7.0, 7.0, 7.0]);
        }
    }

    #[test]
    fn reduce_to_sums_at_root_only() {
        let topo = Topology::uniform(1, 3).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            reduce_to(ep, ranks, 5, 0, vec![ep.rank() as f32; 2]).unwrap()
        });
        assert_eq!(results[0], Some(vec![3.0, 3.0]));
        assert_eq!(results[1], None);
        assert_eq!(results[2], None);
    }

    #[test]
    fn gather_slices_to_root() {
        use parallax_tensor::Tensor;
        let topo = Topology::uniform(1, 2).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let local = IndexedSlices::new(vec![ep.rank()], Tensor::full([1, 1], 1.0), 4).unwrap();
            gather_slices_to(ep, ranks, 6, 0, local).unwrap()
        });
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.indices(), &[0, 1]);
        assert!(results[1].is_none());
    }

    #[test]
    fn barrier_completes() {
        let topo = Topology::uniform(2, 3).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| barrier(ep, ranks, 7).is_ok());
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn wire_allreduce_replicas_bitwise_identical() {
        // Compression is lossy, but every replica must still end with
        // the *same* bits: the ring owner encodes each reduced chunk
        // once and everyone (owner included) decodes those exact words.
        for wire in [WireFormat::F16, WireFormat::Bf16] {
            for (gpus, len) in [
                (vec![1, 1, 1, 1], 10usize),
                (vec![2, 1], 7),
                (vec![2, 2, 1], 13),
            ] {
                let topo = Topology::new(gpus).unwrap();
                let (results, _) = run_all(topo.clone(), |ep, ranks| {
                    let mut data: Vec<f32> = (0..len)
                        .map(|i| (ep.rank() as f32 + 1.0) * 0.1 + i as f32 * 0.01)
                        .collect();
                    ring_allreduce_wire(ep, ranks, 1, &mut data, wire).unwrap();
                    data
                });
                for r in &results[1..] {
                    assert_eq!(r, &results[0], "replicas diverged under {wire:?}");
                }
                // The quantized sum stays close to the exact one.
                let n = results.len() as f32;
                for (i, &v) in results[0].iter().enumerate() {
                    let exact: f32 = (0..results.len())
                        .map(|r| (r as f32 + 1.0) * 0.1 + i as f32 * 0.01)
                        .sum();
                    assert!(
                        (v - exact).abs() <= exact.abs() * 0.02 + 1e-3,
                        "n={n} {v} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn wire_allreduce_exact_on_representable_values() {
        // Small integers survive f16/bf16 exactly, so the compressed
        // reduction must equal the raw one bit for bit.
        for wire in [WireFormat::F16, WireFormat::Bf16] {
            let topo = Topology::uniform(4, 1).unwrap();
            let n = 4;
            let len = 9;
            let (results, _) = run_all(topo, |ep, ranks| {
                let mut data: Vec<f32> = (0..len).map(|i| (ep.rank() + i) as f32).collect();
                ring_allreduce_wire(ep, ranks, 1, &mut data, wire).unwrap();
                data
            });
            let expected: Vec<f32> = (0..len)
                .map(|i| (0..n).map(|r| (r + i) as f32).sum())
                .collect();
            for r in &results {
                assert_eq!(r, &expected);
            }
        }
    }

    #[test]
    fn wire_allreduce_halves_network_bytes() {
        let n = 4usize;
        let len = 8usize;
        let topo = Topology::uniform(n, 1).unwrap();
        let (_, traffic) = run_all(topo, |ep, ranks| {
            let mut data = vec![1.0f32; len];
            ring_allreduce_wire(ep, ranks, 1, &mut data, WireFormat::F16).unwrap();
        });
        // Same hop schedule as raw, 2 bytes per scalar instead of 4.
        let per_machine_out = 2 * (n as u64 - 1) * (len as u64 / n as u64) * 2;
        for m in 0..n {
            assert_eq!(traffic.out_bytes[m], per_machine_out);
        }
    }

    #[test]
    fn wire_allgatherv_slices_lossless_and_smaller() {
        use parallax_tensor::Tensor;
        let topo = Topology::uniform(3, 1).unwrap();
        let tag = 3u64;
        let build = |r: usize| {
            IndexedSlices::new(
                vec![r, r + 2, r + 2],
                Tensor::full([3, 2], r as f32 + 0.25),
                32,
            )
            .unwrap()
        };
        let (raw, raw_traffic) = run_all(topo.clone(), |ep, ranks| {
            allgatherv_slices(ep, ranks, tag, build(ep.rank())).unwrap()
        });
        let (packed, packed_traffic) = run_all(topo, |ep, ranks| {
            allgatherv_slices_wire(ep, ranks, tag, build(ep.rank()), WireFormat::F16).unwrap()
        });
        // Index packing is lossless: identical result, fewer bytes.
        assert_eq!(raw, packed);
        assert!(
            packed_traffic.total_network_bytes() < raw_traffic.total_network_bytes(),
            "packed {} >= raw {}",
            packed_traffic.total_network_bytes(),
            raw_traffic.total_network_bytes()
        );
    }

    #[test]
    fn ring_reduce_reference_matches_ring_bitwise() {
        // Values chosen so the fold association matters: f32 addition is
        // not associative, and the reference must pick the ring's exact
        // association per chunk.
        for (machines, gpus, len) in [(1, 1, 5), (2, 1, 7), (4, 1, 10), (2, 2, 13), (3, 2, 9)] {
            let topo = Topology::uniform(machines, gpus).unwrap();
            let n = topo.num_workers();
            let contrib = |r: usize, i: usize| {
                (1.0 + r as f32) * 0.101 + (i as f32) * 0.037 + 1e-6 * ((r * 31 + i) as f32)
            };
            let (results, _) = run_all(topo, |ep, ranks| {
                let mut data: Vec<f32> = (0..len).map(|i| contrib(ep.rank(), i)).collect();
                ring_allreduce(ep, ranks, 1, &mut data).unwrap();
                data
            });
            let parts: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..len).map(|i| contrib(r, i)).collect())
                .collect();
            let views: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
            let reference = ring_reduce_reference(&views).unwrap();
            for r in &results {
                let got: Vec<u32> = r.iter().map(|f| f.to_bits()).collect();
                let want: Vec<u32> = reference.iter().map(|f| f.to_bits()).collect();
                assert_eq!(got, want, "{machines}x{gpus} len {len}");
            }
        }
    }

    #[test]
    fn allgatherv_slices_parts_orders_by_group_position() {
        use parallax_tensor::Tensor;
        let topo = Topology::uniform(3, 1).unwrap();
        let (results, _) = run_all(topo, |ep, ranks| {
            let r = ep.rank();
            let local = IndexedSlices::new(vec![r], Tensor::full([1, 2], r as f32), 8).unwrap();
            allgatherv_slices_parts(ep, ranks, 3, local).unwrap()
        });
        for parts in &results {
            assert_eq!(parts.len(), 3);
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part.indices(), &[r]);
                assert_eq!(part.values().data(), &[r as f32, r as f32]);
            }
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 8, 100] {
            for n in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for i in 0..n {
                    let r = chunk_range(len, n, i);
                    assert_eq!(r.start, covered, "contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, len, "full coverage");
            }
        }
    }
}
