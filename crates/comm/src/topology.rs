//! Cluster topology: machines and the workers (GPUs) they host.

use crate::{CommError, Result};

/// Global rank of a worker (one worker per simulated GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub usize);

impl WorkerId {
    /// The rank as an index.
    pub fn rank(self) -> usize {
        self.0
    }
}

/// Machines and their worker counts: worker ranks are assigned
/// machine-major, so machine 0 hosts ranks `0..gpus[0]`, machine 1 the
/// next `gpus[1]` ranks, and so on — matching how Parallax launches one
/// worker per GPU from a resource specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    gpus_per_machine: Vec<usize>,
    machine_of: Vec<usize>,
}

impl Topology {
    /// Builds a topology from per-machine GPU counts.
    pub fn new(gpus_per_machine: Vec<usize>) -> Result<Self> {
        if gpus_per_machine.is_empty() || gpus_per_machine.contains(&0) {
            return Err(CommError::InvalidConfig(
                "topology needs at least one machine, each with at least one GPU".into(),
            ));
        }
        let mut machine_of = Vec::new();
        for (m, &g) in gpus_per_machine.iter().enumerate() {
            machine_of.extend(std::iter::repeat_n(m, g));
        }
        Ok(Topology {
            gpus_per_machine,
            machine_of,
        })
    }

    /// A homogeneous cluster: `machines` machines with `gpus` GPUs each
    /// (the paper's testbed is `Topology::uniform(8, 6)`).
    pub fn uniform(machines: usize, gpus: usize) -> Result<Self> {
        Topology::new(vec![gpus; machines])
    }

    /// Total worker count.
    pub fn num_workers(&self) -> usize {
        self.machine_of.len()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.gpus_per_machine.len()
    }

    /// The machine hosting a worker rank.
    pub fn machine_of(&self, worker: usize) -> Result<usize> {
        self.machine_of
            .get(worker)
            .copied()
            .ok_or(CommError::UnknownRank(worker))
    }

    /// Worker ranks hosted on a machine.
    pub fn workers_of(&self, machine: usize) -> Vec<usize> {
        self.machine_of
            .iter()
            .enumerate()
            .filter_map(|(w, &m)| (m == machine).then_some(w))
            .collect()
    }

    /// The first (lowest-rank) worker on each machine — Parallax's *local
    /// chief* workers, which perform per-machine aggregation.
    pub fn local_chiefs(&self) -> Vec<usize> {
        (0..self.num_machines())
            .map(|m| self.workers_of(m)[0])
            .collect()
    }

    /// True when two workers share a machine (their traffic is intra-node).
    pub fn same_machine(&self, a: usize, b: usize) -> Result<bool> {
        Ok(self.machine_of(a)? == self.machine_of(b)?)
    }

    /// GPUs per machine.
    pub fn gpus_per_machine(&self) -> &[usize] {
        &self.gpus_per_machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_is_machine_major() {
        let t = Topology::uniform(3, 2).unwrap();
        assert_eq!(t.num_workers(), 6);
        assert_eq!(t.num_machines(), 3);
        assert_eq!(t.machine_of(0).unwrap(), 0);
        assert_eq!(t.machine_of(3).unwrap(), 1);
        assert_eq!(t.workers_of(2), vec![4, 5]);
    }

    #[test]
    fn heterogeneous_counts() {
        let t = Topology::new(vec![1, 3]).unwrap();
        assert_eq!(t.workers_of(0), vec![0]);
        assert_eq!(t.workers_of(1), vec![1, 2, 3]);
        assert_eq!(t.local_chiefs(), vec![0, 1]);
    }

    #[test]
    fn same_machine_detection() {
        let t = Topology::uniform(2, 2).unwrap();
        assert!(t.same_machine(0, 1).unwrap());
        assert!(!t.same_machine(1, 2).unwrap());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Topology::new(vec![]).is_err());
        assert!(Topology::new(vec![2, 0]).is_err());
        assert!(Topology::uniform(1, 1).unwrap().machine_of(1).is_err());
    }
}
