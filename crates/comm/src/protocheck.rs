//! Typed per-link session machine for the training wire protocol.
//!
//! The parameter-server protocol and the collective schedules are
//! correct today by *convention*: `ps::protocol` packs headers, the
//! runner picks tags, and every send has a hand-written receive
//! somewhere else that must agree on link, tag and multiplicity. This
//! module lifts that convention into data: a [`SessionSpec`] describes,
//! for one steady-state iteration of a verified plan, **who may send
//! what to whom** — one [`MsgEvent`] per (link, message identity) with
//! its phase, per-iteration multiplicity as derived independently from
//! the sender's program and the receiver's synchronization arithmetic,
//! its reply obligation, and the events it must wait for.
//!
//! Two consumers:
//!
//! * the static checker (`parallax_core::protocheck`) walks the spec
//!   and proves send/recv pairing, reply-obligation discharge, absence
//!   of cross-phase tag collisions, deadlock freedom and dedup safety
//!   (`C001`–`C008` diagnostics);
//! * the [`SessionValidator`] — compiled from the same spec — is
//!   installed on every [`crate::Endpoint`] in debug builds (and under
//!   `repro protocheck` / `repro check`), and rejects any routed
//!   message whose (link, namespace, kind, variable, partition) the
//!   machine does not allow, turning protocol drift into a typed
//!   [`CommError::Protocol`] instead of a hang on the receiving side.
//!
//! The validator is deliberately **stateless**: it checks membership of
//! each message in the allowed set (plus the boundary-iteration gate),
//! not sequencing. Sequencing is the static checker's job; statelessness
//! is what guarantees zero false positives under fault injection —
//! duplicated, delayed or replayed-after-recovery messages carry the
//! same identity as their originals and stay accepted.
//!
//! Tag layout is mirrored from `ps::protocol` (`kind:6 | var:14 |
//! part:14 | iter:30`, namespace in the top nibble); `parallax-ps`
//! carries a cross-crate test asserting both crates agree bit for bit.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::error::CommError;

/// `PullDense` request-kind discriminant (mirrors `ps::protocol`).
pub const KIND_PULL_DENSE: u8 = 1;
/// `PullSparse` request-kind discriminant.
pub const KIND_PULL_SPARSE: u8 = 2;
/// `PushDense` request-kind discriminant.
pub const KIND_PUSH_DENSE: u8 = 3;
/// `PushSparse` request-kind discriminant.
pub const KIND_PUSH_SPARSE: u8 = 4;
/// `ChiefUpdate` request-kind discriminant.
pub const KIND_CHIEF_UPDATE: u8 = 5;
/// `UpdateDone` notification-kind discriminant.
pub const KIND_UPDATE_DONE: u8 = 6;
/// `ReadAgg` request-kind discriminant.
pub const KIND_READ_AGG: u8 = 7;
/// `FetchShard` request-kind discriminant.
pub const KIND_FETCH_SHARD: u8 = 8;

const VAR_BITS: u64 = 14;
const PART_BITS: u64 = 14;
const ITER_BITS: u64 = 30;
const KIND_SHIFT: u64 = VAR_BITS + PART_BITS + ITER_BITS;

/// Maximum variable index representable in a wire header.
pub const MAX_HEADER_VARS: usize = (1 << VAR_BITS) - 1;
/// Maximum partition index representable in a wire header.
pub const MAX_HEADER_PARTS: usize = (1 << PART_BITS) - 1;

/// Namespace marker of AllReduce collective tags (top nibble `0x1`).
pub const NS_COLLECTIVE: u64 = 0x1000_0000_0000_0000;
/// Namespace marker of intra-machine local-aggregation tags (`0x2`).
pub const NS_LOCAL_AGG: u64 = 0x2000_0000_0000_0000;
/// Namespace marker of AllGatherv collective tags (`0x3`).
pub const NS_GATHERV: u64 = 0x3000_0000_0000_0000;
/// Namespace marker of the per-iteration request tag (`0x4`).
pub const NS_REQUEST: u64 = 0x4000_0000_0000_0000;
/// Namespace marker of response/notification tags (bit 63).
pub const NS_RESPONSE: u64 = 0x8000_0000_0000_0000;

/// What a wire tag says about the message travelling under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagClass {
    /// Ring-AllReduce traffic for `var` in `iter`.
    Collective {
        /// Variable index from the tag's header bits.
        var: usize,
        /// Iteration from the tag's low bits.
        iter: u64,
    },
    /// Intra-machine local-aggregation traffic for `var` in `iter`.
    LocalAgg {
        /// Variable index from the tag's header bits.
        var: usize,
        /// Iteration from the tag's low bits.
        iter: u64,
    },
    /// Ring-AllGatherv traffic for `var` in `iter`.
    Gatherv {
        /// Variable index from the tag's header bits.
        var: usize,
        /// Iteration from the tag's low bits.
        iter: u64,
    },
    /// A worker→server request of `iter`; the kind/target live in the
    /// packet header, not the tag.
    Request {
        /// Iteration from the tag's low bits.
        iter: u64,
    },
    /// A server→worker response or notification.
    Response {
        /// Request-kind discriminant (`KIND_*`).
        kind: u8,
        /// Target variable index.
        var: usize,
        /// Target partition index.
        part: usize,
        /// Iteration from the tag's low bits.
        iter: u64,
    },
    /// No known namespace claims this tag.
    Unknown,
}

/// Decodes the namespace, identity and iteration of a wire tag.
pub fn classify_tag(tag: u64) -> TagClass {
    let iter = tag & ((1 << ITER_BITS) - 1);
    let var = ((tag >> (PART_BITS + ITER_BITS)) & ((1 << VAR_BITS) - 1)) as usize;
    let part = ((tag >> ITER_BITS) & ((1 << PART_BITS) - 1)) as usize;
    if tag & NS_RESPONSE != 0 {
        // Response tags are `0x8... | pack(kind, ...)`; kind bits 58..64
        // carry *into* the namespace nibble (FetchShard = 8 lands the
        // tag in 0xA...), so the kind is recovered by clearing bit 63.
        let kind = ((tag & !NS_RESPONSE) >> KIND_SHIFT) as u8;
        if (1..=KIND_FETCH_SHARD).contains(&kind) {
            return TagClass::Response {
                kind,
                var,
                part,
                iter,
            };
        }
        return TagClass::Unknown;
    }
    match tag >> 60 {
        0x4 => TagClass::Request { iter },
        0x1 => TagClass::Collective { var, iter },
        0x2 => TagClass::LocalAgg { var, iter },
        0x3 => TagClass::Gatherv { var, iter },
        _ => TagClass::Unknown,
    }
}

/// The identity of a session-machine message, independent of iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Ring-AllReduce step (dense or densified gradient).
    Collective,
    /// Ring-AllGatherv step (sparse gradient slices).
    Gatherv,
    /// Intra-machine reduce/gather leg toward the local chief.
    LocalAgg,
    /// A worker→server request of the given kind (`KIND_*`).
    Request(u8),
    /// A server→worker response/notification of the given kind.
    Response(u8),
}

impl WireKind {
    /// Human-readable name, e.g. `"Request(PushSparse)"`.
    pub fn describe(self) -> String {
        let kind_name = |k: u8| match k {
            KIND_PULL_DENSE => "PullDense",
            KIND_PULL_SPARSE => "PullSparse",
            KIND_PUSH_DENSE => "PushDense",
            KIND_PUSH_SPARSE => "PushSparse",
            KIND_CHIEF_UPDATE => "ChiefUpdate",
            KIND_UPDATE_DONE => "UpdateDone",
            KIND_READ_AGG => "ReadAgg",
            KIND_FETCH_SHARD => "FetchShard",
            _ => "?",
        };
        match self {
            WireKind::Collective => "Collective".into(),
            WireKind::Gatherv => "Gatherv".into(),
            WireKind::LocalAgg => "LocalAgg".into(),
            WireKind::Request(k) => format!("Request({})", kind_name(k)),
            WireKind::Response(k) => format!("Response({})", kind_name(k)),
        }
    }

    /// True for request kinds whose server-side effect is not idempotent
    /// (applying the message twice corrupts state unless deduplicated).
    pub fn non_idempotent_request(self) -> Option<u8> {
        match self {
            WireKind::Request(k)
                if matches!(
                    k,
                    KIND_PUSH_DENSE
                        | KIND_PUSH_SPARSE
                        | KIND_CHIEF_UPDATE
                        | KIND_READ_AGG
                        | KIND_FETCH_SHARD
                ) =>
            {
                Some(k)
            }
            _ => None,
        }
    }
}

/// The iteration phase an event belongs to, in worker program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Forward-pass parameter pulls.
    Pull,
    /// Collective gradient exchange (AllReduce / AllGatherv).
    Exchange,
    /// Intra-machine local aggregation toward the machine chief.
    LocalAgg,
    /// Gradient pushes to parameter servers.
    Push,
    /// The chief's update trigger.
    Trigger,
    /// Server→worker update-applied notifications.
    Notify,
    /// Post-update aggregated-gradient reads (tracing).
    TraceRead,
    /// Checkpoint/snapshot shard fetches at boundary iterations.
    Publish,
}

/// One edge of the session machine: a message identity on one link,
/// with its per-iteration multiplicity and obligations.
#[derive(Debug, Clone)]
pub struct MsgEvent {
    /// Which phase of the iteration the message belongs to.
    pub phase: Phase,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Message identity (namespace + kind).
    pub kind: WireKind,
    /// Target variable index.
    pub var: usize,
    /// Target partition index (0 where not applicable).
    pub part: usize,
    /// Messages per iteration, derived from the **sender's** program
    /// (client choreography / ring algebra).
    pub sends: u64,
    /// Messages per iteration, derived independently from the
    /// **receiver's** synchronization arithmetic (the server's
    /// outstanding-message formula, or the same ring algebra replayed
    /// from the receiving side).
    pub recvs: u64,
    /// How many of those messages share one tag *value* (ring steps
    /// reuse one tag `2(N-1)` times; a FetchShard reply is two messages
    /// FIFO-ordered under one tag). `1` for everything else — any other
    /// identity collision is cross-phase leakage.
    pub tag_uses: u64,
    /// True when the event only fires at checkpoint-boundary iterations
    /// (`(iter + 1) % checkpoint_interval == 0`).
    pub boundary_only: bool,
    /// True when the receiver blocks on this message (a missing sender
    /// is a deadlock, not just drift).
    pub blocking: bool,
    /// For responses/notifications: index of the request event this
    /// discharges.
    pub reply_of: Option<usize>,
    /// Events that must complete before this one's first message can be
    /// sent (worker program order and server reply obligations); edges
    /// of the wait-for graph.
    pub deps: Vec<usize>,
    /// Human-readable description for diagnostics.
    pub label: String,
}

impl MsgEvent {
    /// The event's wire identity modulo iteration: what the runtime
    /// validator keys on.
    pub fn identity(&self) -> (usize, usize, WireKind, usize, usize) {
        (self.from, self.to, self.kind, self.var, self.part)
    }
}

/// A complete per-iteration session machine for one verified plan.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Total rank count (workers + servers).
    pub ranks: usize,
    /// The chief worker's rank.
    pub chief: usize,
    /// Worker ranks in ring order.
    pub workers: Vec<usize>,
    /// Server ranks.
    pub servers: Vec<usize>,
    /// Synchronous training (the machine models one barriered
    /// iteration; async runs skip triggers/notifications).
    pub sync: bool,
    /// Effective checkpoint/snapshot interval (0 = no boundary events).
    pub checkpoint_interval: usize,
    /// True when blocking receives arm a failure-detection deadline, so
    /// dropped messages surface as typed errors instead of hangs.
    pub deadline_armed: bool,
    /// True when the server enforces its exact per-iteration pull quota
    /// (a duplicated pull then surfaces as a typed iteration-mismatch
    /// error rather than silently skewing the barrier).
    pub pull_exact_count: bool,
    /// Request kinds covered by the server's at-most-once dedup guard.
    pub dedup_guarded: Vec<u8>,
    /// The session events.
    pub events: Vec<MsgEvent>,
}

impl SessionSpec {
    /// Events in the spec.
    pub fn events(&self) -> &[MsgEvent] {
        &self.events
    }

    /// Mutable event access for negative-path tests: tampering with the
    /// spec must be *possible* so the checker's detection of every
    /// defect class stays testable (mirrors the plancheck tamper
    /// constructors).
    #[doc(hidden)]
    pub fn events_mut(&mut self) -> &mut Vec<MsgEvent> {
        &mut self.events
    }

    /// Disarms the receive-deadline flag (negative-path tests).
    #[doc(hidden)]
    pub fn tamper_disarm_deadline(&mut self) {
        self.deadline_armed = false;
    }

    /// Disables the exact pull-count guard (negative-path tests).
    #[doc(hidden)]
    pub fn tamper_disable_pull_guard(&mut self) {
        self.pull_exact_count = false;
    }

    /// Removes a request kind from the dedup guard (negative-path
    /// tests).
    #[doc(hidden)]
    pub fn tamper_unguard(&mut self, kind: u8) {
        self.dedup_guarded.retain(|&k| k != kind);
    }
}

impl fmt::Display for SessionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session machine: {} ranks ({} workers, {} servers), chief {}, {} events, \
             interval {}",
            self.ranks,
            self.workers.len(),
            self.servers.len(),
            self.chief,
            self.events.len(),
            self.checkpoint_interval
        )?;
        for (i, e) in self.events.iter().enumerate() {
            writeln!(
                f,
                "  [{i:3}] {:?} {} -> {} {} var {} part {} x{}{}{}",
                e.phase,
                e.from,
                e.to,
                e.kind.describe(),
                e.var,
                e.part,
                e.sends,
                if e.boundary_only { " (boundary)" } else { "" },
                if e.reply_of.is_some() { " (reply)" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// Identity key of the runtime allowed-set: `(from, to, namespace+kind,
/// var, part)`.
type LinkKey = (usize, usize, u8, u32, u32);

fn key_of(from: usize, to: usize, kind: WireKind, var: usize, part: usize) -> LinkKey {
    // Namespace-qualified kind byte: collectives/local-agg get codes
    // above the request-kind range; requests/responses keep their
    // discriminant with the response bit in 0x80.
    let code = match kind {
        WireKind::Collective => 0x41,
        WireKind::Gatherv => 0x43,
        WireKind::LocalAgg => 0x42,
        WireKind::Request(k) => k,
        WireKind::Response(k) => 0x80 | k,
    };
    (from, to, code, var as u32, part as u32)
}

/// Compiled, stateless runtime assertion of a [`SessionSpec`]: accepts
/// exactly the messages some event allows, with boundary-only events
/// gated on the tag's iteration. Cheap enough for debug-build installs
/// (two hash probes per send) and shared by all endpoints via `Arc`.
#[derive(Debug)]
pub struct SessionValidator {
    ranks: usize,
    interval: usize,
    steady: HashSet<LinkKey>,
    boundary: HashSet<LinkKey>,
}

impl SessionValidator {
    /// Compiles the allowed-set from a spec.
    pub fn from_spec(spec: &SessionSpec) -> Arc<Self> {
        let mut steady = HashSet::new();
        let mut boundary = HashSet::new();
        for e in &spec.events {
            let key = key_of(e.from, e.to, e.kind, e.var, e.part);
            if e.boundary_only {
                boundary.insert(key);
            } else {
                steady.insert(key);
            }
        }
        Arc::new(SessionValidator {
            ranks: spec.ranks,
            interval: spec.checkpoint_interval,
            steady,
            boundary,
        })
    }

    fn reject(&self, from: usize, to: usize, tag: u64, reason: String) -> CommError {
        CommError::Protocol {
            from,
            to,
            tag,
            reason,
        }
    }

    /// Validates one routed message. `header` is the packed request
    /// header for `Payload::Packet` sends (requests are disambiguated
    /// by header, not tag), `None` otherwise.
    pub fn check(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        header: Option<u64>,
    ) -> Result<(), CommError> {
        if from >= self.ranks || to >= self.ranks {
            return Err(self.reject(
                from,
                to,
                tag,
                format!("rank outside the session's {} ranks", self.ranks),
            ));
        }
        let (kind, var, part, iter) = match classify_tag(tag) {
            TagClass::Collective { var, iter } => (WireKind::Collective, var, 0, iter),
            TagClass::Gatherv { var, iter } => (WireKind::Gatherv, var, 0, iter),
            TagClass::LocalAgg { var, iter } => (WireKind::LocalAgg, var, 0, iter),
            TagClass::Response {
                kind,
                var,
                part,
                iter,
            } => (WireKind::Response(kind), var, part, iter),
            TagClass::Request { iter } => {
                let Some(h) = header else {
                    return Err(self.reject(
                        from,
                        to,
                        tag,
                        "request-tagged message without a packet header".into(),
                    ));
                };
                let kind = (h >> KIND_SHIFT) as u8;
                let hvar = ((h >> (PART_BITS + ITER_BITS)) & ((1 << VAR_BITS) - 1)) as usize;
                let hpart = ((h >> ITER_BITS) & ((1 << PART_BITS) - 1)) as usize;
                let hiter = h & ((1 << ITER_BITS) - 1);
                if !(1..=KIND_FETCH_SHARD).contains(&kind) {
                    return Err(self.reject(
                        from,
                        to,
                        tag,
                        format!("request header carries unknown kind {kind}"),
                    ));
                }
                if hiter != iter {
                    return Err(self.reject(
                        from,
                        to,
                        tag,
                        format!(
                            "request header iteration {hiter} disagrees with tag iteration \
                             {iter} (cross-phase leak)"
                        ),
                    ));
                }
                (WireKind::Request(kind), hvar, hpart, iter)
            }
            TagClass::Unknown => {
                return Err(self.reject(from, to, tag, "tag in no known namespace".into()));
            }
        };
        let key = key_of(from, to, kind, var, part);
        if self.steady.contains(&key) {
            return Ok(());
        }
        if self.boundary.contains(&key) {
            if self.interval > 0 && (iter + 1) % self.interval as u64 == 0 {
                return Ok(());
            }
            return Err(self.reject(
                from,
                to,
                tag,
                format!(
                    "{} for var {var} part {part} is boundary-only (interval {}), but \
                     iteration {iter} is not a checkpoint boundary",
                    kind.describe(),
                    self.interval
                ),
            ));
        }
        Err(self.reject(
            from,
            to,
            tag,
            format!(
                "session machine has no event {} -> {} {} var {var} part {part}",
                from,
                to,
                kind.describe()
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SessionSpec {
        SessionSpec {
            ranks: 3,
            chief: 0,
            workers: vec![0, 1],
            servers: vec![2],
            sync: true,
            checkpoint_interval: 2,
            deadline_armed: true,
            pull_exact_count: true,
            dedup_guarded: vec![
                KIND_PUSH_DENSE,
                KIND_PUSH_SPARSE,
                KIND_CHIEF_UPDATE,
                KIND_READ_AGG,
                KIND_FETCH_SHARD,
            ],
            events: vec![
                MsgEvent {
                    phase: Phase::Push,
                    from: 0,
                    to: 2,
                    kind: WireKind::Request(KIND_PUSH_DENSE),
                    var: 1,
                    part: 0,
                    sends: 1,
                    recvs: 1,
                    tag_uses: 1,
                    boundary_only: false,
                    blocking: true,
                    reply_of: None,
                    deps: vec![],
                    label: "push".into(),
                },
                MsgEvent {
                    phase: Phase::Publish,
                    from: 0,
                    to: 2,
                    kind: WireKind::Request(KIND_FETCH_SHARD),
                    var: 1,
                    part: 0,
                    sends: 1,
                    recvs: 1,
                    tag_uses: 1,
                    boundary_only: true,
                    blocking: true,
                    reply_of: None,
                    deps: vec![],
                    label: "fetch".into(),
                },
            ],
        }
    }

    fn pack(kind: u8, var: usize, part: usize, iter: u64) -> u64 {
        ((kind as u64) << KIND_SHIFT)
            | ((var as u64) << (PART_BITS + ITER_BITS))
            | ((part as u64) << ITER_BITS)
            | iter
    }

    #[test]
    fn classify_covers_every_namespace() {
        assert_eq!(
            classify_tag(NS_COLLECTIVE | pack(KIND_PUSH_DENSE, 5, 0, 9)),
            TagClass::Collective { var: 5, iter: 9 }
        );
        assert_eq!(
            classify_tag(NS_GATHERV | pack(KIND_PUSH_DENSE, 5, 0, 9)),
            TagClass::Gatherv { var: 5, iter: 9 }
        );
        assert_eq!(
            classify_tag(NS_LOCAL_AGG | pack(KIND_PUSH_DENSE, 2, 0, 3)),
            TagClass::LocalAgg { var: 2, iter: 3 }
        );
        assert_eq!(classify_tag(NS_REQUEST | 7), TagClass::Request { iter: 7 });
        // FetchShard responses land in the 0xA nibble (kind bits carry
        // past the response marker) and must still classify.
        assert_eq!(
            classify_tag(NS_RESPONSE | pack(KIND_FETCH_SHARD, 3, 1, 4)),
            TagClass::Response {
                kind: KIND_FETCH_SHARD,
                var: 3,
                part: 1,
                iter: 4
            }
        );
        assert_eq!(classify_tag(0), TagClass::Unknown);
        assert_eq!(classify_tag(0x5000_0000_0000_0000), TagClass::Unknown);
    }

    #[test]
    fn validator_accepts_spec_messages_and_rejects_drift() {
        let spec = tiny_spec();
        let v = SessionValidator::from_spec(&spec);
        let req = NS_REQUEST;
        // Allowed: the push event, any iteration, any number of times
        // (duplicates carry the same identity — no false positives).
        for _ in 0..3 {
            v.check(0, 2, req, Some(pack(KIND_PUSH_DENSE, 1, 0, 0)))
                .unwrap();
        }
        // Drift: a push of an unplanned variable.
        let err = v
            .check(0, 2, req, Some(pack(KIND_PUSH_DENSE, 2, 0, 0)))
            .unwrap_err();
        assert!(matches!(err, CommError::Protocol { .. }), "{err}");
        // Drift: an unplanned sender.
        assert!(v
            .check(1, 2, req, Some(pack(KIND_PUSH_DENSE, 1, 0, 0)))
            .is_err());
        // Drift: header/tag iteration mismatch.
        assert!(v
            .check(0, 2, req, Some(pack(KIND_PUSH_DENSE, 1, 0, 1)))
            .is_err());
        // A request without a header cannot be validated.
        assert!(v.check(0, 2, req, None).is_err());
    }

    #[test]
    fn boundary_events_are_gated_on_the_interval() {
        let spec = tiny_spec();
        let v = SessionValidator::from_spec(&spec);
        // interval = 2: iterations 1, 3, ... are boundaries.
        let at = |iter: u64| (NS_REQUEST | iter, Some(pack(KIND_FETCH_SHARD, 1, 0, iter)));
        let (tag, h) = at(1);
        v.check(0, 2, tag, h).unwrap();
        let (tag, h) = at(0);
        let err = v.check(0, 2, tag, h).unwrap_err();
        assert!(err.to_string().contains("boundary"), "{err}");
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let spec = tiny_spec();
        let v = SessionValidator::from_spec(&spec);
        assert!(v.check(7, 2, NS_REQUEST, None).is_err());
        assert!(v.check(0, 9, NS_REQUEST, None).is_err());
    }
}
