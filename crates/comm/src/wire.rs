//! Wire formats: lossy scalar compression and lossless index packing
//! for gradient exchange.
//!
//! The paper's whole argument is about bytes on the wire, and every
//! byte this repo moves is triple-accounted (predicted by
//! [`crate::predict`], traced by `parallax-trace`, measured by
//! [`crate::traffic::TrafficStats`]). A wire format shrinks the
//! payloads while keeping those three ledgers *exactly* equal, because
//! each compressed payload reports its encoded size through
//! [`crate::Payload::byte_size`] and the static replay computes sizes
//! with the same functions that build the payloads.
//!
//! Two codecs:
//!
//! * **Scalars** — dense AllReduce chunks travel as IEEE half (f16) or
//!   bfloat16 words. Encoding is round-to-nearest-even; accumulation
//!   stays in f32 on every rank, and the reduced chunk is encoded once
//!   by its ring owner so all replicas decode identical bytes and stay
//!   bitwise identical.
//! * **Indices** — sparse AllGatherv slice indices travel as
//!   zigzag-delta LEB128 varints ([`PackedSlices`]). Lossless for any
//!   index sequence (unsorted, duplicated, arbitrary gaps); slice
//!   *values* stay f32 so sparse gradients lose no precision.

use parallax_tensor::{IndexedSlices, Tensor};

/// How gradient-exchange payloads are represented on the wire.
///
/// Selected by `ParallaxConfig::wire_format`. `F32` is the raw format
/// (no compression); `F16`/`Bf16` compress dense AllReduce chunks to
/// 2 bytes per scalar *and* pack sparse AllGatherv indices as
/// delta-varints. Parameter-server traffic is never compressed (pulled
/// values parameterize the next forward pass and must stay exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Raw little-endian f32 scalars and 8-byte indices.
    #[default]
    F32,
    /// IEEE 754 binary16 scalars (1 sign, 5 exponent, 10 mantissa bits)
    /// plus packed sparse indices.
    F16,
    /// bfloat16 scalars (1 sign, 8 exponent, 7 mantissa bits; the f32
    /// exponent range) plus packed sparse indices.
    Bf16,
}

impl WireFormat {
    /// Bytes one scalar occupies on the wire.
    pub fn scalar_bytes(self) -> u64 {
        match self {
            WireFormat::F32 => 4,
            WireFormat::F16 | WireFormat::Bf16 => 2,
        }
    }

    /// Whether this format compresses (anything but raw f32).
    pub fn compresses(self) -> bool {
        self != WireFormat::F32
    }

    /// Canonical lower-case name (CLI/JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::F32 => "f32",
            WireFormat::F16 => "f16",
            WireFormat::Bf16 => "bf16",
        }
    }

    /// Parses a [`WireFormat::name`] spelling.
    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "f32" => Some(WireFormat::F32),
            "f16" => Some(WireFormat::F16),
            "bf16" => Some(WireFormat::Bf16),
            _ => None,
        }
    }

    /// Encodes one scalar to its 16-bit wire word. Must not be called
    /// for [`WireFormat::F32`], which has no 16-bit representation.
    pub fn encode_scalar(self, x: f32) -> u16 {
        match self {
            WireFormat::F32 => unreachable!("f32 wire format has no 16-bit scalar"),
            WireFormat::F16 => f16_from_f32(x),
            WireFormat::Bf16 => bf16_from_f32(x),
        }
    }

    /// Decodes one 16-bit wire word.
    pub fn decode_scalar(self, w: u16) -> f32 {
        match self {
            WireFormat::F32 => unreachable!("f32 wire format has no 16-bit scalar"),
            WireFormat::F16 => f16_to_f32(w),
            WireFormat::Bf16 => bf16_to_f32(w),
        }
    }

    /// Encodes a scalar buffer to wire words.
    pub fn encode_vec(self, xs: &[f32]) -> Vec<u16> {
        xs.iter().map(|&x| self.encode_scalar(x)).collect()
    }

    /// Decodes wire words into `out` (lengths must match).
    pub fn decode_into(self, words: &[u16], out: &mut [f32]) {
        debug_assert_eq!(words.len(), out.len());
        for (o, &w) in out.iter_mut().zip(words) {
            *o = self.decode_scalar(w);
        }
    }

    /// Decodes wire words into a fresh buffer.
    pub fn decode_vec(self, words: &[u16]) -> Vec<f32> {
        words.iter().map(|&w| self.decode_scalar(w)).collect()
    }

    /// The value a scalar becomes after one encode/decode roundtrip —
    /// what a peer will see.
    pub fn quantize(self, x: f32) -> f32 {
        if self == WireFormat::F32 {
            x
        } else {
            self.decode_scalar(self.encode_scalar(x))
        }
    }
}

/// f32 → IEEE binary16, round-to-nearest-even. Inf stays inf, NaN stays
/// NaN (quiet), overflow saturates to ±inf exactly as IEEE rounding
/// does, and the subnormal range rounds to multiples of 2⁻²⁴.
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf / NaN; set a high mantissa bit so NaN payloads survive.
        let nan = if abs > 0x7f80_0000 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    if abs >= 0x4780_0000 {
        // ≥ 2¹⁶: past every finite half, saturate to infinity. (The
        // rounding carry below covers [65520, 65536) on its own.)
        return sign | 0x7c00;
    }
    if abs >= 0x3880_0000 {
        // Normal half range (≥ 2⁻¹⁴): round the 13 dropped mantissa
        // bits to nearest-even; a mantissa carry propagates into the
        // exponent, saturating to 0x7c00 (inf) past 65504.
        let rounded = abs + 0x0fff + ((abs >> 13) & 1);
        return sign | ((rounded - 0x3800_0000) >> 13) as u16;
    }
    // Subnormal half (or zero): result is round(|x| · 2²⁴) ≤ 1024,
    // where 1024 lands on the smallest normal's bit pattern.
    let exp = abs >> 23;
    if exp < 102 {
        return sign; // below half the smallest subnormal: ±0
    }
    let mant = (abs & 0x007f_ffff) | 0x0080_0000;
    let shift = 126 - exp; // 14..=24
    let rem = mant & ((1 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let mut v = mant >> shift;
    if rem > half || (rem == half && v & 1 == 1) {
        v += 1;
    }
    sign | v as u16
}

/// IEEE binary16 → f32 (exact; every half value is representable).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (mant << 13));
    }
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: mant · 2⁻²⁴, exact in f32.
        let mag = mant as f32 * f32::from_bits(0x3380_0000);
        return f32::from_bits(mag.to_bits() | sign);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// f32 → bfloat16, round-to-nearest-even on the dropped 16 mantissa
/// bits. NaN keeps a quiet bit; large values round to ±inf like IEEE.
pub fn bf16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounded = bits.wrapping_add(0x7fff + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// bfloat16 → f32 (exact: bf16 is f32's top half).
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

fn zigzag(d: i64) -> u64 {
    (d.wrapping_shl(1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Encodes an index sequence as zigzag deltas in LEB128 varints.
/// Lossless and order-preserving for *any* sequence; sorted sequences
/// (the common case after coalescing) get the smallest deltas and so
/// the fewest bytes — typically one byte per index.
pub fn encode_indices(indices: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(indices.len() * 2);
    let mut prev = 0i64;
    for &i in indices {
        let d = i as i64 - prev;
        prev = i as i64;
        push_varint(&mut out, zigzag(d));
    }
    out
}

/// Decodes `count` indices from [`encode_indices`] output.
///
/// Panics on a malformed stream: the encoder lives in this process, so
/// corruption is a bug, not an input condition.
pub fn decode_indices(bytes: &[u8], count: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    let mut it = bytes.iter();
    for _ in 0..count {
        let mut z = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *it.next().expect("truncated packed index stream");
            z |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        prev += unzigzag(z);
        out.push(prev as usize);
    }
    debug_assert!(it.next().is_none(), "trailing bytes in packed index stream");
    out
}

/// Fallible [`decode_indices`]: returns `None` instead of panicking on
/// a truncated stream, trailing bytes, an over-long varint, or a delta
/// run that goes negative. The frame codec in `parallax-net` decodes
/// *untrusted* bytes (a socket peer, possibly corrupted), where
/// malformed input is an input condition, not a bug.
pub fn checked_decode_indices(bytes: &[u8], count: usize) -> Option<Vec<usize>> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    let mut it = bytes.iter();
    for _ in 0..count {
        let mut z = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *it.next()?;
            if shift >= 64 {
                return None;
            }
            z |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        prev = prev.checked_add(unzigzag(z))?;
        if prev < 0 {
            return None;
        }
        out.push(prev as usize);
    }
    if it.next().is_some() {
        return None;
    }
    Some(out)
}

/// The exact byte length [`encode_indices`] produces, computed without
/// allocating. The static traffic predictor uses this so predicted
/// bytes equal measured bytes by construction.
pub fn encoded_index_len(indices: &[usize]) -> usize {
    let mut len = 0usize;
    let mut prev = 0i64;
    for &i in indices {
        let mut z = zigzag(i as i64 - prev);
        prev = i as i64;
        len += 1;
        while z >= 0x80 {
            z >>= 7;
            len += 1;
        }
    }
    len
}

/// The wire size of [`PackedSlices::pack`] applied to `s`: f32 values,
/// varint-packed indices, plus one 8-byte count header the decoder
/// needs. Shared by the payload accounting and the static predictor.
pub fn packed_byte_size(s: &IndexedSlices) -> u64 {
    s.values().byte_size() + encoded_index_len(s.indices()) as u64 + 8
}

/// The bytes one AllGatherv contribution occupies under `wire`: the
/// raw [`IndexedSlices`] size for f32, the packed size otherwise. The
/// static predictor charges exactly this, so predicted sparse-exchange
/// bytes equal measured ones under every format.
pub fn slices_wire_bytes(s: &IndexedSlices, wire: WireFormat) -> u64 {
    if wire.compresses() {
        packed_byte_size(s)
    } else {
        s.byte_size()
    }
}

/// [`IndexedSlices`] with the index list packed for the wire
/// ([`encode_indices`]); values stay raw f32, so packing is lossless.
#[derive(Debug, Clone)]
pub struct PackedSlices {
    values: Tensor,
    index_bytes: Vec<u8>,
    count: usize,
    dense_rows: usize,
}

impl PackedSlices {
    /// Packs a slice set for the wire.
    pub fn pack(s: &IndexedSlices) -> PackedSlices {
        PackedSlices {
            values: s.values().clone(),
            index_bytes: encode_indices(s.indices()),
            count: s.indices().len(),
            dense_rows: s.dense_rows(),
        }
    }

    /// Reassembles a packed slice set from its wire fields (the frame
    /// codec's decode path), validating that `index_bytes` decodes to
    /// exactly `count` in-bounds indices for `values`' row count —
    /// untrusted input must produce a typed error, never a panic.
    pub fn from_wire(
        values: Tensor,
        index_bytes: Vec<u8>,
        count: usize,
        dense_rows: usize,
    ) -> crate::Result<PackedSlices> {
        let indices = checked_decode_indices(&index_bytes, count).ok_or_else(|| {
            crate::CommError::InvalidConfig("malformed packed index stream".into())
        })?;
        // Delegate shape/bounds validation, then keep the *original*
        // bytes so byte_size (and thus traffic accounting) is identical
        // on both sides of the wire.
        IndexedSlices::new(indices, values.clone(), dense_rows)
            .map_err(|e| crate::CommError::InvalidConfig(format!("packed slices: {e}")))?;
        Ok(PackedSlices {
            values,
            index_bytes,
            count,
            dense_rows,
        })
    }

    /// The packed values (raw f32 rows, one per index).
    pub fn values(&self) -> &Tensor {
        &self.values
    }

    /// The varint-packed index bytes, exactly as they travel.
    pub fn index_bytes(&self) -> &[u8] {
        &self.index_bytes
    }

    /// How many indices are packed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The dense row space the indices address.
    pub fn dense_rows(&self) -> usize {
        self.dense_rows
    }

    /// Restores the original slice set (exact: the index codec is
    /// lossless and values were never transformed).
    pub fn unpack(&self) -> IndexedSlices {
        let indices = decode_indices(&self.index_bytes, self.count);
        IndexedSlices::new(indices, self.values.clone(), self.dense_rows)
            .expect("packed slices decode to the slices they were packed from")
    }

    /// Bytes on the wire: values + packed indices + count header.
    /// Identical to [`packed_byte_size`] of the unpacked slices.
    pub fn byte_size(&self) -> u64 {
        self.values.byte_size() + self.index_bytes.len() as u64 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exact_values() {
        // Values exactly representable in half must survive unchanged.
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.25,
            1.5,
            // 0.0999755859375 == 0x2E66 in half, exactly representable.
            f32::from_bits(0x3dcc_c000),
        ] {
            let r = f16_to_f32(f16_from_f32(x));
            assert_eq!(r.to_bits(), x.to_bits(), "{x} -> {r}");
        }
    }

    #[test]
    fn f16_handles_specials_and_saturation() {
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f16_from_f32(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            f16_to_f32(f16_from_f32(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        // Past the max finite half, rounding saturates to infinity.
        assert_eq!(f16_to_f32(f16_from_f32(70000.0)), f32::INFINITY);
        assert_eq!(f16_to_f32(f16_from_f32(-70000.0)), f32::NEG_INFINITY);
        // 65519 rounds down to 65504; 65520 is the first value that
        // rounds up to 2^16 = inf.
        assert_eq!(f16_to_f32(f16_from_f32(65519.0)), 65504.0);
        assert_eq!(f16_to_f32(f16_from_f32(65520.0)), f32::INFINITY);
    }

    #[test]
    fn f16_subnormal_range() {
        let smallest = f32::from_bits(0x3380_0000); // 2^-24
        assert_eq!(f16_to_f32(f16_from_f32(smallest)), smallest);
        // Half the smallest subnormal ties to even (zero).
        assert_eq!(f16_to_f32(f16_from_f32(smallest / 2.0)), 0.0);
        // Just above half rounds up to the smallest subnormal.
        assert_eq!(f16_to_f32(f16_from_f32(smallest * 0.75)), smallest);
        // A mid-range subnormal.
        let x = smallest * 100.0;
        assert_eq!(f16_to_f32(f16_from_f32(x)), x);
        // Largest subnormal and the boundary to normals.
        let largest_sub = 1023.0 * smallest;
        assert_eq!(f16_to_f32(f16_from_f32(largest_sub)), largest_sub);
        let smallest_normal = f32::from_bits(0x3880_0000); // 2^-14
        assert_eq!(f16_to_f32(f16_from_f32(smallest_normal)), smallest_normal);
    }

    #[test]
    fn f16_relative_error_bounded_in_normal_range() {
        // Round-to-nearest gives |err| <= 2^-11 * |x| for normal halfs.
        let mut x = 6.2e-5f32;
        while x < 6.0e4 {
            for s in [x, -x] {
                let err = (f16_to_f32(f16_from_f32(s)) - s).abs();
                assert!(err <= s.abs() * (1.0 / 2048.0) + 1e-30, "x={s} err={err}");
            }
            x *= 1.37;
        }
    }

    #[test]
    fn bf16_roundtrips_and_bounds() {
        for &x in &[0.0f32, -0.0, 1.0, -2.5, 1.0e30, -1.0e-30, 128.0] {
            let r = bf16_to_f32(bf16_from_f32(x));
            let err = (r - x).abs();
            assert!(err <= x.abs() * (1.0 / 256.0), "x={x} r={r}");
        }
        assert!(bf16_to_f32(bf16_from_f32(f32::NAN)).is_nan());
        assert_eq!(bf16_to_f32(bf16_from_f32(f32::INFINITY)), f32::INFINITY);
        // bf16 keeps the f32 exponent: huge magnitudes stay finite.
        assert!(bf16_to_f32(bf16_from_f32(1.0e38)).is_finite());
        // Exact roundtrip for values with <= 7 mantissa bits.
        assert_eq!(bf16_to_f32(bf16_from_f32(3.140625)), 3.140625);
    }

    #[test]
    fn index_codec_roundtrips() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![5, 5, 5],
            vec![0, 1, 2, 3, 1000000],
            vec![999, 0, 12, 12, 7],
            (0..500).map(|i| i * 13 % 4096).collect(),
        ];
        for indices in cases {
            let bytes = encode_indices(&indices);
            assert_eq!(bytes.len(), encoded_index_len(&indices));
            assert_eq!(decode_indices(&bytes, indices.len()), indices);
        }
    }

    #[test]
    fn sorted_indices_pack_near_one_byte_each() {
        // Coalesced (sorted unique) indices with small gaps: one varint
        // byte per index, an 8x shrink over raw u64 indices.
        let indices: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let bytes = encode_indices(&indices);
        assert_eq!(bytes.len(), 1000);
    }

    #[test]
    fn packed_slices_roundtrip_and_size() {
        let s = IndexedSlices::new(
            vec![3, 17, 17, 2],
            Tensor::new([4, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap(),
            64,
        )
        .unwrap();
        let p = PackedSlices::pack(&s);
        assert_eq!(p.unpack(), s);
        assert_eq!(p.byte_size(), packed_byte_size(&s));
        // Smaller than the raw format (4 bytes/value + 8 bytes/index).
        assert!(p.byte_size() < s.byte_size());
    }

    #[test]
    fn wire_format_parse_and_names() {
        for wf in [WireFormat::F32, WireFormat::F16, WireFormat::Bf16] {
            assert_eq!(WireFormat::parse(wf.name()), Some(wf));
        }
        assert_eq!(WireFormat::parse("f64"), None);
        assert_eq!(WireFormat::default(), WireFormat::F32);
        assert_eq!(WireFormat::F32.scalar_bytes(), 4);
        assert_eq!(WireFormat::F16.scalar_bytes(), 2);
        assert_eq!(WireFormat::Bf16.scalar_bytes(), 2);
        assert!(!WireFormat::F32.compresses());
        assert!(WireFormat::F16.compresses());
    }

    #[test]
    fn quantize_matches_roundtrip() {
        for wf in [WireFormat::F16, WireFormat::Bf16] {
            let x = 0.123_456_79_f32;
            assert_eq!(wf.quantize(x), wf.decode_scalar(wf.encode_scalar(x)));
        }
        assert_eq!(WireFormat::F32.quantize(0.1), 0.1);
    }
}
