//! In-process message transport between worker threads.
//!
//! A [`Router`] creates one [`Endpoint`] per worker rank. Endpoints send
//! typed payloads to peers; every send is charged to the shared
//! [`TrafficStats`] according to whether source and destination share a
//! machine. Receives match on `(from, tag)` with internal buffering so
//! concurrent protocols (collectives, PS pulls, chief notifications) can
//! interleave safely on one channel.
//!
//! Failure semantics: receives are deadline-bounded
//! ([`Endpoint::set_recv_deadline`]) and surface typed
//! [`CommError::PeerTimeout`] / [`CommError::PeerDead`] errors instead of
//! blocking forever. Peer death is tracked by a shared [`PeerHealth`]
//! registry (every endpoint marks itself dead on drop, so a crashed
//! worker thread is observable by everyone still waiting on it). A
//! [`FaultInjector`] can be installed at build time
//! ([`Router::build_with`]) to deterministically drop, delay, or
//! duplicate messages; dropped and duplicated messages are charged to
//! *both* byte ledgers (traffic accountant and tracer) once per physical
//! transmission, so the span-vs-network crosscheck stays exact under
//! fault injection.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parallax_fault::{FaultInjector, Verdict};
use parallax_tensor::{IndexedSlices, Tensor};

use crate::topology::Topology;
use crate::traffic::TrafficStats;
use crate::{CommError, Result};

/// Default receive deadline: generous enough that no healthy protocol
/// exchange (including injected straggler sleeps) comes near it, small
/// enough that a dead peer is detected rather than hanging CI.
pub const DEFAULT_RECV_DEADLINE: Duration = Duration::from_secs(30);

/// Shared liveness registry: which ranks are known dead. Endpoints mark
/// themselves dead when dropped (normal exit or thread panic/unwind both
/// run `Drop`), and the runner marks ranks whose threads failed. Receive
/// timeouts consult the registry to distinguish a slow peer
/// ([`CommError::PeerTimeout`]) from a detected failure
/// ([`CommError::PeerDead`]).
#[derive(Debug, Default)]
pub struct PeerHealth {
    dead: parking_lot::Mutex<HashSet<usize>>,
}

impl PeerHealth {
    /// Marks `rank` as dead.
    pub fn mark_dead(&self, rank: usize) {
        self.dead.lock().insert(rank);
    }

    /// True when `rank` has been marked dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.lock().contains(&rank)
    }

    /// The lowest dead rank, if any.
    pub fn first_dead(&self) -> Option<usize> {
        self.dead.lock().iter().min().copied()
    }

    /// All dead ranks, sorted.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// A typed message payload.
///
/// Bulk variants carry their data behind an [`Arc`] so the in-process
/// router moves payloads by reference count instead of deep copy: a
/// sender that hands over ownership pays `Arc::new` (one allocation, no
/// element copy) and a broadcast to `k` peers shares one buffer.
/// [`Payload::byte_size`] reads *through* the `Arc`, so traffic
/// accounting is identical to the by-value representation.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A dense tensor.
    Tensor(Arc<Tensor>),
    /// A sparse slice set.
    Slices(Arc<IndexedSlices>),
    /// A raw float buffer (collective chunks).
    Floats(Arc<Vec<f32>>),
    /// A compressed scalar buffer: f16/bf16 wire words of a collective
    /// chunk ([`crate::wire::WireFormat`]).
    Words(Arc<Vec<u16>>),
    /// A sparse slice set with varint-packed indices
    /// ([`crate::wire::PackedSlices`]).
    Packed(Arc<crate::wire::PackedSlices>),
    /// An index list (sparse pull requests).
    Ids(Vec<usize>),
    /// A small control message (barrier tokens, chief notifications).
    Control(u64),
    /// A header-tagged message: protocol layers (e.g. the Parameter
    /// Server) multiplex typed requests over one tag by packing request
    /// kind and target into `header`.
    Packet {
        /// Protocol-defined header word.
        header: u64,
        /// The payload body.
        body: Box<Payload>,
    },
}

impl Payload {
    /// Bytes this payload occupies on the wire.
    pub fn byte_size(&self) -> u64 {
        match self {
            Payload::Tensor(t) => t.byte_size(),
            Payload::Slices(s) => s.byte_size(),
            Payload::Floats(f) => (f.len() * 4) as u64,
            Payload::Words(w) => (w.len() * 2) as u64,
            Payload::Packed(p) => p.byte_size(),
            Payload::Ids(ids) => (ids.len() * 8) as u64,
            Payload::Control(_) => 8,
            Payload::Packet { body, .. } => 8 + body.byte_size(),
        }
    }

    /// Unwraps a packet into `(header, body)`.
    pub fn into_packet(self) -> Result<(u64, Payload)> {
        match self {
            Payload::Packet { header, body } => Ok((header, *body)),
            _ => Err(CommError::PayloadKind { expected: "packet" }),
        }
    }

    /// Unwraps a float buffer. Copies only if the buffer is still shared
    /// with another holder (e.g. a broadcast sender).
    pub fn into_floats(self) -> Result<Vec<f32>> {
        match self {
            Payload::Floats(f) => Ok(unwrap_shared(f)),
            Payload::Tensor(t) => Ok(unwrap_shared(t).into_data()),
            _ => Err(CommError::PayloadKind { expected: "floats" }),
        }
    }

    /// Unwraps a tensor (copy-free when this is the last reference).
    pub fn into_tensor(self) -> Result<Tensor> {
        match self {
            Payload::Tensor(t) => Ok(unwrap_shared(t)),
            _ => Err(CommError::PayloadKind { expected: "tensor" }),
        }
    }

    /// Unwraps a float buffer without materializing an owned copy.
    pub fn into_shared_floats(self) -> Result<Arc<Vec<f32>>> {
        match self {
            Payload::Floats(f) => Ok(f),
            _ => Err(CommError::PayloadKind { expected: "floats" }),
        }
    }

    /// Unwraps a compressed scalar buffer without copying.
    pub fn into_shared_words(self) -> Result<Arc<Vec<u16>>> {
        match self {
            Payload::Words(w) => Ok(w),
            _ => Err(CommError::PayloadKind { expected: "words" }),
        }
    }

    /// Unwraps a packed slice set without copying.
    pub fn into_shared_packed(self) -> Result<Arc<crate::wire::PackedSlices>> {
        match self {
            Payload::Packed(p) => Ok(p),
            _ => Err(CommError::PayloadKind { expected: "packed" }),
        }
    }

    /// Unwraps a tensor without materializing an owned copy.
    pub fn into_shared_tensor(self) -> Result<Arc<Tensor>> {
        match self {
            Payload::Tensor(t) => Ok(t),
            _ => Err(CommError::PayloadKind { expected: "tensor" }),
        }
    }

    /// Unwraps a slice set (copy-free when this is the last reference).
    pub fn into_slices(self) -> Result<IndexedSlices> {
        match self {
            Payload::Slices(s) => Ok(unwrap_shared(s)),
            _ => Err(CommError::PayloadKind { expected: "slices" }),
        }
    }

    /// Unwraps a slice set without materializing an owned copy.
    pub fn into_shared_slices(self) -> Result<Arc<IndexedSlices>> {
        match self {
            Payload::Slices(s) => Ok(s),
            _ => Err(CommError::PayloadKind { expected: "slices" }),
        }
    }

    /// Unwraps an id list.
    pub fn into_ids(self) -> Result<Vec<usize>> {
        match self {
            Payload::Ids(ids) => Ok(ids),
            _ => Err(CommError::PayloadKind { expected: "ids" }),
        }
    }

    /// Unwraps a control token.
    pub fn into_control(self) -> Result<u64> {
        match self {
            Payload::Control(c) => Ok(c),
            _ => Err(CommError::PayloadKind {
                expected: "control",
            }),
        }
    }
}

/// Takes the value out of an `Arc`, cloning only when still shared.
pub(crate) fn unwrap_shared<T: Clone>(a: Arc<T>) -> T {
    Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
}

/// A routed message as the transport layer sees it: sender rank, tag,
/// payload. Public so alternative [`Transport`] implementations (the
/// socket mesh in `parallax-net`) can produce them.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub from: usize,
    /// Message tag (protocol-defined).
    pub tag: u64,
    /// The payload.
    pub payload: Payload,
}

/// Why a blocking [`Transport::recv`] returned without a message.
///
/// `peer == usize::MAX` in [`RecvError::Disconnected`] means the
/// transport cannot attribute the disconnect to a specific rank (the
/// in-process channel, for example, only observes that every sender is
/// gone); the [`Endpoint`] substitutes the rank it was waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The timeout expired with no message available.
    Timeout,
    /// The underlying link is gone; no further messages can arrive.
    Disconnected {
        /// The rank the disconnect is attributed to, or `usize::MAX`.
        peer: usize,
    },
}

/// The byte-moving half of an [`Endpoint`]: deliver a payload to a rank,
/// surface the next arrival within a deadline. Everything above this
/// seam — tag matching, traffic accounting, fault injection, protocol
/// validation, failure classification — lives in [`Endpoint`] and is
/// identical for every implementation, which is what makes the
/// in-process and multi-process modes byte-for-byte equivalent.
///
/// Implementations: [`ChannelTransport`] (crossbeam channels, one
/// process) and `parallax_net::TcpTransport` (length-prefixed frames
/// over TCP, one process per rank).
pub trait Transport: Send {
    /// Delivers `payload` to rank `to` under `tag`. Errors are typed
    /// [`CommError`]s; [`CommError::Disconnected`] marks the peer dead
    /// in the caller's health registry.
    fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<()>;

    /// Blocks up to `timeout` for the next arrival, in delivery order.
    fn recv(&mut self, timeout: Duration) -> std::result::Result<Envelope, RecvError>;

    /// Releases transport resources gracefully (the TCP transport sends
    /// FIN frames; the channel transport has nothing to do). Called from
    /// [`Endpoint`]'s `Drop`; must be idempotent.
    fn shutdown(&mut self) {}
}

/// The in-process transport: one unbounded crossbeam channel per rank,
/// sends move `Arc`-backed payloads by reference count.
pub struct ChannelTransport {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
}

impl Transport for ChannelTransport {
    fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<()> {
        let tx = self.senders.get(to).ok_or(CommError::UnknownRank(to))?;
        tx.send(Envelope {
            from: self.rank,
            tag,
            payload,
        })
        .map_err(|_| CommError::Disconnected { peer: to })
    }

    fn recv(&mut self, timeout: Duration) -> std::result::Result<Envelope, RecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(env),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(RecvError::Disconnected { peer: usize::MAX })
            }
        }
    }
}

/// Builds the mesh of endpoints for a topology.
#[derive(Debug)]
pub struct Router {
    topology: Topology,
    traffic: Arc<TrafficStats>,
}

impl Router {
    /// Creates a router and all endpoints for `topology`.
    ///
    /// Returns one endpoint per worker rank (move each into its worker
    /// thread) and the shared traffic accumulator.
    pub fn build(topology: Topology) -> (Vec<Endpoint>, Arc<TrafficStats>) {
        Self::build_with(topology, None)
    }

    /// Like [`Router::build`], with an optional fault injector installed
    /// on every endpoint's send path. Backed by [`ChannelTransport`]s.
    pub fn build_with(
        topology: Topology,
        faults: Option<Arc<FaultInjector>>,
    ) -> (Vec<Endpoint>, Arc<TrafficStats>) {
        let n = topology.num_workers();
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let transports: Vec<Box<dyn Transport>> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                Box::new(ChannelTransport {
                    rank,
                    senders: senders.clone(),
                    rx,
                }) as Box<dyn Transport>
            })
            .collect();
        Self::build_over(topology, faults, transports)
    }

    /// The transport-generic mesh builder: one endpoint per rank, each
    /// wrapping the caller-provided transport at its index. All ranks
    /// share one traffic accumulator and one health registry (the
    /// in-process configuration; multi-process ranks instead build
    /// single endpoints with [`Endpoint::from_transport`]).
    pub fn build_over(
        topology: Topology,
        faults: Option<Arc<FaultInjector>>,
        transports: Vec<Box<dyn Transport>>,
    ) -> (Vec<Endpoint>, Arc<TrafficStats>) {
        let traffic = TrafficStats::new(topology.num_machines());
        let health = Arc::new(PeerHealth::default());
        let endpoints = transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| Endpoint {
                rank,
                topology: topology.clone(),
                transport,
                pending: HashMap::new(),
                traffic: Arc::clone(&traffic),
                health: Arc::clone(&health),
                faults: faults.clone(),
                validator: None,
                deadline: DEFAULT_RECV_DEADLINE,
            })
            .collect();
        (endpoints, traffic)
    }

    /// The router's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The router's traffic accumulator.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }
}

/// One worker's connection to the mesh.
pub struct Endpoint {
    rank: usize,
    topology: Topology,
    transport: Box<dyn Transport>,
    pending: HashMap<(usize, u64), VecDeque<Payload>>,
    traffic: Arc<TrafficStats>,
    health: Arc<PeerHealth>,
    faults: Option<Arc<FaultInjector>>,
    validator: Option<Arc<crate::protocheck::SessionValidator>>,
    deadline: Duration,
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Drop runs on normal exit *and* on panic unwind, so a crashed
        // worker thread is always observable in the health registry.
        self.health.mark_dead(self.rank);
        self.transport.shutdown();
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .finish()
    }
}

impl Endpoint {
    /// Builds a single endpoint over an external [`Transport`] — the
    /// multi-process entry point, where each OS process owns exactly one
    /// rank. The caller supplies the health registry because the
    /// transport's reader threads share it (a socket EOF marks the peer
    /// dead there, and this endpoint's deadline classification observes
    /// it here). Traffic accounting is sender-side only, so each
    /// process's accumulator covers exactly its own rank's sends and
    /// per-process snapshots merge disjointly.
    pub fn from_transport(
        topology: Topology,
        rank: usize,
        transport: Box<dyn Transport>,
        traffic: Arc<TrafficStats>,
        health: Arc<PeerHealth>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Endpoint> {
        if rank >= topology.num_workers() {
            return Err(CommError::UnknownRank(rank));
        }
        Ok(Endpoint {
            rank,
            topology,
            transport,
            pending: HashMap::new(),
            traffic,
            health,
            faults,
            validator: None,
            deadline: DEFAULT_RECV_DEADLINE,
        })
    }

    /// This endpoint's worker rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The machine hosting this endpoint, or a typed error if the
    /// topology does not know this rank (a mis-built mesh — previously a
    /// panic site).
    pub fn machine(&self) -> Result<usize> {
        self.topology.machine_of(self.rank)
    }

    /// The topology this endpoint belongs to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared traffic accumulator.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// The shared liveness registry.
    pub fn health(&self) -> &Arc<PeerHealth> {
        &self.health
    }

    /// Bounds how long [`Endpoint::recv`] / [`Endpoint::recv_any`] block
    /// before returning [`CommError::PeerTimeout`] /
    /// [`CommError::PeerDead`]. This is the failure-detection deadline.
    pub fn set_recv_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline;
    }

    /// Installs a session-machine validator on the send path: every
    /// subsequent [`Endpoint::send`] must be accepted by the machine or
    /// it fails with [`CommError::Protocol`] *before* anything is
    /// enqueued or charged. The validator is stateless (membership +
    /// boundary gate only), so fault-injected duplicates and
    /// recovery-replayed iterations are never false positives.
    pub fn set_validator(&mut self, validator: Arc<crate::protocheck::SessionValidator>) {
        self.validator = Some(validator);
    }

    /// Sends `payload` to worker `to` under `tag`, charging traffic.
    ///
    /// When a fault injector is installed, the message may be dropped,
    /// delayed, or duplicated. Both byte ledgers (traffic accountant and
    /// tracer) are charged once per *physical transmission*: a dropped
    /// message is charged once (it went onto the wire, the receiver
    /// never saw it), a duplicated message twice.
    pub fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<()> {
        if to >= self.topology.num_workers() {
            return Err(CommError::UnknownRank(to));
        }
        if let Some(v) = &self.validator {
            let header = match &payload {
                Payload::Packet { header, .. } => Some(*header),
                _ => None,
            };
            v.check(self.rank, to, tag, header)?;
        }
        let src = self.machine()?;
        let dst = self.topology.machine_of(to)?;
        let verdict = match &self.faults {
            Some(inj) => inj.on_message(self.rank, to),
            None => Verdict::Deliver,
        };
        match verdict {
            Verdict::Deliver => {
                self.charge(src, dst, tag, payload.byte_size());
                self.enqueue(to, tag, payload)
            }
            Verdict::Drop => {
                // Transmitted but lost: charged, never enqueued.
                self.charge(src, dst, tag, payload.byte_size());
                Ok(())
            }
            Verdict::Delay(d) => {
                self.charge(src, dst, tag, payload.byte_size());
                std::thread::sleep(d);
                self.enqueue(to, tag, payload)
            }
            Verdict::Duplicate => {
                let bytes = payload.byte_size();
                self.charge(src, dst, tag, bytes);
                self.enqueue(to, tag, payload.clone())?;
                self.charge(src, dst, tag, bytes);
                self.enqueue(to, tag, payload)
            }
        }
    }

    /// Charges one physical transmission to both byte ledgers.
    fn charge(&self, src: usize, dst: usize, tag: u64, bytes: u64) {
        self.traffic
            .record_class(src, dst, bytes, crate::traffic::TrafficClass::from_tag(tag));
        // Mirror the accountant's inter-machine branch into the tracer,
        // so span byte totals cross-check against `total_network_bytes()`.
        if src != dst {
            parallax_trace::on_net_bytes(bytes);
        }
    }

    fn enqueue(&self, to: usize, tag: u64, payload: Payload) -> Result<()> {
        self.transport.send(to, tag, payload).inspect_err(|e| {
            if let CommError::Disconnected { peer } = e {
                self.health.mark_dead(*peer);
            }
        })
    }

    /// Classifies an expired receive deadline: a peer registered dead is
    /// a detected failure, otherwise it is (so far) just slowness.
    fn timeout_error(&self, peer: usize) -> CommError {
        let dead = if peer == usize::MAX {
            self.health.first_dead().filter(|&d| d != self.rank)
        } else {
            self.health.is_dead(peer).then_some(peer)
        };
        match dead {
            Some(peer) => CommError::PeerDead { peer },
            None => CommError::PeerTimeout {
                peer,
                waited_ms: self.deadline.as_millis() as u64,
            },
        }
    }

    /// Receives the next payload from `from` with `tag`, blocking at
    /// most the configured receive deadline.
    ///
    /// Messages for other `(from, tag)` pairs that arrive first are
    /// buffered for later receives. An expired deadline yields
    /// [`CommError::PeerDead`] when `from` is registered dead,
    /// [`CommError::PeerTimeout`] otherwise.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Payload> {
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if let Some(p) = queue.pop_front() {
                return Ok(p);
            }
        }
        let deadline = Instant::now() + self.deadline;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let env = match self.transport.recv(remaining) {
                Ok(env) => env,
                Err(RecvError::Timeout) => return Err(self.timeout_error(from)),
                Err(RecvError::Disconnected { peer }) => {
                    let peer = if peer == usize::MAX { from } else { peer };
                    return Err(CommError::Disconnected { peer });
                }
            };
            if env.from == from && env.tag == tag {
                return Ok(env.payload);
            }
            self.pending
                .entry((env.from, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }

    /// Receives the next payload with `tag` from *any* rank, returning
    /// `(from, payload)`. Used by server loops. Blocks at most the
    /// configured receive deadline; on expiry yields
    /// [`CommError::PeerDead`] when any rank is registered dead,
    /// [`CommError::PeerTimeout`] (with `peer == usize::MAX`) otherwise.
    pub fn recv_any(&mut self, tag: u64) -> Result<(usize, Payload)> {
        // Check buffered messages first, lowest rank first for determinism.
        let mut keys: Vec<usize> = self
            .pending
            .iter()
            .filter(|((_, t), q)| *t == tag && !q.is_empty())
            .map(|((f, _), _)| *f)
            .collect();
        keys.sort_unstable();
        if let Some(&from) = keys.first() {
            // The filter above guarantees a payload; if the map was
            // mutated out from under us, fall through to the channel
            // loop instead of panicking.
            if let Some(p) = self
                .pending
                .get_mut(&(from, tag))
                .and_then(|q| q.pop_front())
            {
                return Ok((from, p));
            }
        }
        let deadline = Instant::now() + self.deadline;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let env = match self.transport.recv(remaining) {
                Ok(env) => env,
                Err(RecvError::Timeout) => return Err(self.timeout_error(usize::MAX)),
                Err(RecvError::Disconnected { peer }) => {
                    return Err(CommError::Disconnected { peer })
                }
            };
            if env.tag == tag {
                return Ok((env.from, env.payload));
            }
            self.pending
                .entry((env.from, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip_and_accounting() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                e0.send(1, 7, Payload::Floats(Arc::new(vec![1.0, 2.0, 3.0])))
                    .unwrap();
            });
            let got = e1.recv(0, 7).unwrap().into_floats().unwrap();
            assert_eq!(got, vec![1.0, 2.0, 3.0]);
        });
        let s = traffic.snapshot();
        assert_eq!(s.out_bytes[0], 12);
        assert_eq!(s.in_bytes[1], 12);
    }

    #[test]
    fn intra_machine_traffic_not_charged_to_network() {
        let topo = Topology::uniform(1, 2).unwrap();
        let (mut eps, traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(1, 0, Payload::Control(42)).unwrap();
        assert_eq!(e1.recv(0, 0).unwrap().into_control().unwrap(), 42);
        let s = traffic.snapshot();
        assert_eq!(s.total_network_bytes(), 0);
        assert_eq!(s.intra_bytes(), 8);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(1, 1, Payload::Control(1)).unwrap();
        e0.send(1, 2, Payload::Control(2)).unwrap();
        // Receive tag 2 first even though tag 1 arrived first.
        assert_eq!(e1.recv(0, 2).unwrap().into_control().unwrap(), 2);
        assert_eq!(e1.recv(0, 1).unwrap().into_control().unwrap(), 1);
    }

    #[test]
    fn recv_any_prefers_buffered_lowest_rank() {
        let topo = Topology::uniform(3, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.send(2, 5, Payload::Control(11)).unwrap();
        e0.send(2, 5, Payload::Control(10)).unwrap();
        // Force both into the buffer by receiving an unrelated tag first.
        e0.send(2, 6, Payload::Control(99)).unwrap();
        assert_eq!(e2.recv(0, 6).unwrap().into_control().unwrap(), 99);
        let (from, p) = e2.recv_any(5).unwrap();
        assert_eq!((from, p.into_control().unwrap()), (0, 10));
        let (from, p) = e2.recv_any(5).unwrap();
        assert_eq!((from, p.into_control().unwrap()), (1, 11));
    }

    #[test]
    fn recv_times_out_with_typed_error() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        e1.set_recv_deadline(Duration::from_millis(30));
        let start = Instant::now();
        match e1.recv(0, 7) {
            Err(CommError::PeerTimeout { peer: 0, .. }) => {}
            other => panic!("expected PeerTimeout, got {other:?}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(30));
        match e1.recv_any(7) {
            Err(CommError::PeerTimeout { peer, .. }) => assert_eq!(peer, usize::MAX),
            other => panic!("expected PeerTimeout, got {other:?}"),
        }
    }

    #[test]
    fn recv_from_dropped_peer_errors_instead_of_hanging() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.set_recv_deadline(Duration::from_millis(30));
        // Endpoint 0's thread "crashes": its Drop marks it dead.
        drop(e0);
        assert!(matches!(
            e1.recv(0, 7),
            Err(CommError::PeerDead { peer: 0 })
        ));
        assert!(matches!(
            e1.recv_any(7),
            Err(CommError::PeerDead { peer: 0 })
        ));
    }

    #[test]
    fn dead_mark_does_not_preempt_delivered_messages() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.set_recv_deadline(Duration::from_millis(30));
        e0.send(1, 3, Payload::Control(5)).unwrap();
        drop(e0);
        // The message sent before death is still delivered; only the
        // *next* (never-arriving) one reports death.
        assert_eq!(e1.recv(0, 3).unwrap().into_control().unwrap(), 5);
        assert!(matches!(
            e1.recv(0, 3),
            Err(CommError::PeerDead { peer: 0 })
        ));
    }

    #[test]
    fn drop_fault_charges_both_ledgers_but_never_delivers() {
        use parallax_fault::{FaultInjector, FaultPlan};
        let topo = Topology::uniform(2, 1).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new().drop_message(0, 1, 0)));
        let (mut eps, traffic) = Router::build_with(topo, Some(Arc::clone(&inj)));
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.set_recv_deadline(Duration::from_millis(30));
        e0.send(1, 7, Payload::Floats(Arc::new(vec![0.0; 4])))
            .unwrap();
        assert!(matches!(
            e1.recv(0, 7),
            Err(CommError::PeerTimeout { peer: 0, .. })
        ));
        // Charged exactly once despite never being delivered.
        assert_eq!(traffic.snapshot().out_bytes[0], 16);
        assert_eq!(inj.events().len(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_and_charges_twice() {
        use parallax_fault::{FaultInjector, FaultPlan};
        let topo = Topology::uniform(2, 1).unwrap();
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new().duplicate_message(0, 1, 0),
        ));
        let (mut eps, traffic) = Router::build_with(topo, Some(inj));
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(1, 7, Payload::Control(9)).unwrap();
        assert_eq!(e1.recv(0, 7).unwrap().into_control().unwrap(), 9);
        assert_eq!(e1.recv(0, 7).unwrap().into_control().unwrap(), 9);
        assert_eq!(traffic.snapshot().out_bytes[0], 16);
        assert_eq!(traffic.snapshot().inter_messages, 2);
    }

    #[test]
    fn delay_fault_still_delivers_in_order() {
        use parallax_fault::{FaultInjector, FaultPlan};
        let topo = Topology::uniform(2, 1).unwrap();
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new().delay_message(0, 1, 0, 20),
        ));
        let (mut eps, traffic) = Router::build_with(topo, Some(inj));
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let start = Instant::now();
        e0.send(1, 7, Payload::Control(1)).unwrap();
        e0.send(1, 7, Payload::Control(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(e1.recv(0, 7).unwrap().into_control().unwrap(), 1);
        assert_eq!(e1.recv(0, 7).unwrap().into_control().unwrap(), 2);
        assert_eq!(traffic.snapshot().out_bytes[0], 16);
    }

    #[test]
    fn unknown_rank_rejected() {
        let topo = Topology::uniform(1, 1).unwrap();
        let (eps, _traffic) = Router::build(topo);
        assert!(matches!(
            eps[0].send(5, 0, Payload::Control(0)),
            Err(CommError::UnknownRank(5))
        ));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Floats(Arc::new(vec![0.0; 10])).byte_size(), 40);
        assert_eq!(Payload::Ids(vec![0; 3]).byte_size(), 24);
        assert_eq!(Payload::Control(0).byte_size(), 8);
        assert_eq!(
            Payload::Tensor(Arc::new(Tensor::zeros([4]))).byte_size(),
            16
        );
        // Compressed payloads report their *encoded* size, which is what
        // keeps the measured ledger equal to the wire-aware prediction.
        assert_eq!(Payload::Words(Arc::new(vec![0u16; 10])).byte_size(), 20);
        let slices = IndexedSlices::new(vec![1, 2], Tensor::zeros([2, 3]), 8).unwrap();
        let packed = crate::wire::PackedSlices::pack(&slices);
        assert_eq!(
            Payload::Packed(Arc::new(packed)).byte_size(),
            crate::wire::packed_byte_size(&slices)
        );
    }

    #[test]
    fn payload_kind_errors() {
        assert!(Payload::Control(0).into_floats().is_err());
        assert!(Payload::Floats(Arc::new(vec![])).into_ids().is_err());
        assert!(Payload::Ids(vec![]).into_tensor().is_err());
    }

    #[test]
    fn shared_payload_unwraps_without_copy_when_unique() {
        let t = Arc::new(Tensor::zeros([8]));
        let addr = t.data().as_ptr();
        let out = Payload::Tensor(t).into_tensor().unwrap();
        // Sole owner: the same allocation comes back.
        assert!(std::ptr::eq(out.data().as_ptr(), addr));
    }
}
