//! In-process message transport between worker threads.
//!
//! A [`Router`] creates one [`Endpoint`] per worker rank. Endpoints send
//! typed payloads to peers; every send is charged to the shared
//! [`TrafficStats`] according to whether source and destination share a
//! machine. Receives match on `(from, tag)` with internal buffering so
//! concurrent protocols (collectives, PS pulls, chief notifications) can
//! interleave safely on one channel.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parallax_tensor::{IndexedSlices, Tensor};

use crate::topology::Topology;
use crate::traffic::TrafficStats;
use crate::{CommError, Result};

/// A typed message payload.
///
/// Bulk variants carry their data behind an [`Arc`] so the in-process
/// router moves payloads by reference count instead of deep copy: a
/// sender that hands over ownership pays `Arc::new` (one allocation, no
/// element copy) and a broadcast to `k` peers shares one buffer.
/// [`Payload::byte_size`] reads *through* the `Arc`, so traffic
/// accounting is identical to the by-value representation.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A dense tensor.
    Tensor(Arc<Tensor>),
    /// A sparse slice set.
    Slices(Arc<IndexedSlices>),
    /// A raw float buffer (collective chunks).
    Floats(Arc<Vec<f32>>),
    /// An index list (sparse pull requests).
    Ids(Vec<usize>),
    /// A small control message (barrier tokens, chief notifications).
    Control(u64),
    /// A header-tagged message: protocol layers (e.g. the Parameter
    /// Server) multiplex typed requests over one tag by packing request
    /// kind and target into `header`.
    Packet {
        /// Protocol-defined header word.
        header: u64,
        /// The payload body.
        body: Box<Payload>,
    },
}

impl Payload {
    /// Bytes this payload occupies on the wire.
    pub fn byte_size(&self) -> u64 {
        match self {
            Payload::Tensor(t) => t.byte_size(),
            Payload::Slices(s) => s.byte_size(),
            Payload::Floats(f) => (f.len() * 4) as u64,
            Payload::Ids(ids) => (ids.len() * 8) as u64,
            Payload::Control(_) => 8,
            Payload::Packet { body, .. } => 8 + body.byte_size(),
        }
    }

    /// Unwraps a packet into `(header, body)`.
    pub fn into_packet(self) -> Result<(u64, Payload)> {
        match self {
            Payload::Packet { header, body } => Ok((header, *body)),
            _ => Err(CommError::PayloadKind { expected: "packet" }),
        }
    }

    /// Unwraps a float buffer. Copies only if the buffer is still shared
    /// with another holder (e.g. a broadcast sender).
    pub fn into_floats(self) -> Result<Vec<f32>> {
        match self {
            Payload::Floats(f) => Ok(unwrap_shared(f)),
            Payload::Tensor(t) => Ok(unwrap_shared(t).into_data()),
            _ => Err(CommError::PayloadKind { expected: "floats" }),
        }
    }

    /// Unwraps a tensor (copy-free when this is the last reference).
    pub fn into_tensor(self) -> Result<Tensor> {
        match self {
            Payload::Tensor(t) => Ok(unwrap_shared(t)),
            _ => Err(CommError::PayloadKind { expected: "tensor" }),
        }
    }

    /// Unwraps a float buffer without materializing an owned copy.
    pub fn into_shared_floats(self) -> Result<Arc<Vec<f32>>> {
        match self {
            Payload::Floats(f) => Ok(f),
            _ => Err(CommError::PayloadKind { expected: "floats" }),
        }
    }

    /// Unwraps a tensor without materializing an owned copy.
    pub fn into_shared_tensor(self) -> Result<Arc<Tensor>> {
        match self {
            Payload::Tensor(t) => Ok(t),
            _ => Err(CommError::PayloadKind { expected: "tensor" }),
        }
    }

    /// Unwraps a slice set (copy-free when this is the last reference).
    pub fn into_slices(self) -> Result<IndexedSlices> {
        match self {
            Payload::Slices(s) => Ok(unwrap_shared(s)),
            _ => Err(CommError::PayloadKind { expected: "slices" }),
        }
    }

    /// Unwraps a slice set without materializing an owned copy.
    pub fn into_shared_slices(self) -> Result<Arc<IndexedSlices>> {
        match self {
            Payload::Slices(s) => Ok(s),
            _ => Err(CommError::PayloadKind { expected: "slices" }),
        }
    }

    /// Unwraps an id list.
    pub fn into_ids(self) -> Result<Vec<usize>> {
        match self {
            Payload::Ids(ids) => Ok(ids),
            _ => Err(CommError::PayloadKind { expected: "ids" }),
        }
    }

    /// Unwraps a control token.
    pub fn into_control(self) -> Result<u64> {
        match self {
            Payload::Control(c) => Ok(c),
            _ => Err(CommError::PayloadKind {
                expected: "control",
            }),
        }
    }
}

/// Takes the value out of an `Arc`, cloning only when still shared.
pub(crate) fn unwrap_shared<T: Clone>(a: Arc<T>) -> T {
    Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
}

#[derive(Debug)]
struct Envelope {
    from: usize,
    tag: u64,
    payload: Payload,
}

/// Builds the mesh of endpoints for a topology.
#[derive(Debug)]
pub struct Router {
    topology: Topology,
    traffic: Arc<TrafficStats>,
}

impl Router {
    /// Creates a router and all endpoints for `topology`.
    ///
    /// Returns one endpoint per worker rank (move each into its worker
    /// thread) and the shared traffic accumulator.
    pub fn build(topology: Topology) -> (Vec<Endpoint>, Arc<TrafficStats>) {
        let n = topology.num_workers();
        let traffic = TrafficStats::new(topology.num_machines());
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Endpoint {
                rank,
                topology: topology.clone(),
                senders: senders.clone(),
                rx,
                pending: HashMap::new(),
                traffic: Arc::clone(&traffic),
            })
            .collect();
        (endpoints, traffic)
    }

    /// The router's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The router's traffic accumulator.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }
}

/// One worker's connection to the mesh.
pub struct Endpoint {
    rank: usize,
    topology: Topology,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    pending: HashMap<(usize, u64), VecDeque<Payload>>,
    traffic: Arc<TrafficStats>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .finish()
    }
}

impl Endpoint {
    /// This endpoint's worker rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The machine hosting this endpoint.
    pub fn machine(&self) -> usize {
        self.topology
            .machine_of(self.rank)
            .expect("own rank is valid")
    }

    /// The topology this endpoint belongs to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared traffic accumulator.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// Sends `payload` to worker `to` under `tag`, charging traffic.
    pub fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<()> {
        let sender = self.senders.get(to).ok_or(CommError::UnknownRank(to))?;
        let src = self.machine();
        let dst = self.topology.machine_of(to)?;
        let bytes = payload.byte_size();
        self.traffic
            .record_class(src, dst, bytes, crate::traffic::TrafficClass::from_tag(tag));
        // Mirror the accountant's inter-machine branch into the tracer,
        // so span byte totals cross-check against `total_network_bytes()`.
        if src != dst {
            parallax_trace::on_net_bytes(bytes);
        }
        sender
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    /// Receives the next payload from `from` with `tag`, blocking.
    ///
    /// Messages for other `(from, tag)` pairs that arrive first are
    /// buffered for later receives.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Payload> {
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if let Some(p) = queue.pop_front() {
                return Ok(p);
            }
        }
        loop {
            let env = self
                .rx
                .recv()
                .map_err(|_| CommError::Disconnected { peer: from })?;
            if env.from == from && env.tag == tag {
                return Ok(env.payload);
            }
            self.pending
                .entry((env.from, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }

    /// Receives the next payload with `tag` from *any* rank, returning
    /// `(from, payload)`. Used by server loops.
    pub fn recv_any(&mut self, tag: u64) -> Result<(usize, Payload)> {
        // Check buffered messages first, lowest rank first for determinism.
        let mut keys: Vec<usize> = self
            .pending
            .iter()
            .filter(|((_, t), q)| *t == tag && !q.is_empty())
            .map(|((f, _), _)| *f)
            .collect();
        keys.sort_unstable();
        if let Some(&from) = keys.first() {
            let p = self
                .pending
                .get_mut(&(from, tag))
                .and_then(|q| q.pop_front())
                .expect("non-empty queue");
            return Ok((from, p));
        }
        loop {
            let env = self
                .rx
                .recv()
                .map_err(|_| CommError::Disconnected { peer: usize::MAX })?;
            if env.tag == tag {
                return Ok((env.from, env.payload));
            }
            self.pending
                .entry((env.from, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip_and_accounting() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                e0.send(1, 7, Payload::Floats(Arc::new(vec![1.0, 2.0, 3.0])))
                    .unwrap();
            });
            let got = e1.recv(0, 7).unwrap().into_floats().unwrap();
            assert_eq!(got, vec![1.0, 2.0, 3.0]);
        });
        let s = traffic.snapshot();
        assert_eq!(s.out_bytes[0], 12);
        assert_eq!(s.in_bytes[1], 12);
    }

    #[test]
    fn intra_machine_traffic_not_charged_to_network() {
        let topo = Topology::uniform(1, 2).unwrap();
        let (mut eps, traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(1, 0, Payload::Control(42)).unwrap();
        assert_eq!(e1.recv(0, 0).unwrap().into_control().unwrap(), 42);
        let s = traffic.snapshot();
        assert_eq!(s.total_network_bytes(), 0);
        assert_eq!(s.intra_bytes(), 8);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let topo = Topology::uniform(2, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(1, 1, Payload::Control(1)).unwrap();
        e0.send(1, 2, Payload::Control(2)).unwrap();
        // Receive tag 2 first even though tag 1 arrived first.
        assert_eq!(e1.recv(0, 2).unwrap().into_control().unwrap(), 2);
        assert_eq!(e1.recv(0, 1).unwrap().into_control().unwrap(), 1);
    }

    #[test]
    fn recv_any_prefers_buffered_lowest_rank() {
        let topo = Topology::uniform(3, 1).unwrap();
        let (mut eps, _traffic) = Router::build(topo);
        let mut e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e1.send(2, 5, Payload::Control(11)).unwrap();
        e0.send(2, 5, Payload::Control(10)).unwrap();
        // Force both into the buffer by receiving an unrelated tag first.
        e0.send(2, 6, Payload::Control(99)).unwrap();
        assert_eq!(e2.recv(0, 6).unwrap().into_control().unwrap(), 99);
        let (from, p) = e2.recv_any(5).unwrap();
        assert_eq!((from, p.into_control().unwrap()), (0, 10));
        let (from, p) = e2.recv_any(5).unwrap();
        assert_eq!((from, p.into_control().unwrap()), (1, 11));
    }

    #[test]
    fn unknown_rank_rejected() {
        let topo = Topology::uniform(1, 1).unwrap();
        let (eps, _traffic) = Router::build(topo);
        assert!(matches!(
            eps[0].send(5, 0, Payload::Control(0)),
            Err(CommError::UnknownRank(5))
        ));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Floats(Arc::new(vec![0.0; 10])).byte_size(), 40);
        assert_eq!(Payload::Ids(vec![0; 3]).byte_size(), 24);
        assert_eq!(Payload::Control(0).byte_size(), 8);
        assert_eq!(
            Payload::Tensor(Arc::new(Tensor::zeros([4]))).byte_size(),
            16
        );
    }

    #[test]
    fn payload_kind_errors() {
        assert!(Payload::Control(0).into_floats().is_err());
        assert!(Payload::Floats(Arc::new(vec![])).into_ids().is_err());
        assert!(Payload::Ids(vec![]).into_tensor().is_err());
    }

    #[test]
    fn shared_payload_unwraps_without_copy_when_unique() {
        let t = Arc::new(Tensor::zeros([8]));
        let addr = t.data().as_ptr();
        let out = Payload::Tensor(t).into_tensor().unwrap();
        // Sole owner: the same allocation comes back.
        assert!(std::ptr::eq(out.data().as_ptr(), addr));
    }
}
