#![warn(missing_docs)]

//! Communication substrate: transport, traffic accounting, collectives.
//!
//! Stands in for NCCL + OpenMPI + gRPC in the original Parallax stack.
//! Workers are threads; machines are groups of workers; every message
//! between workers on *different* machines is charged to a shared
//! [`traffic::TrafficStats`], giving byte-accurate measurements of the
//! quantity the paper's entire analysis (Table 3) is about: network
//! transfer per machine per iteration.
//!
//! Collectives are implemented the way the paper assumes: ring
//! AllReduce (reduce-scatter + allgather, `2(N-1)` steps, each moving
//! `w/N` bytes per worker — Section 3.1) and ring AllGatherv (`N-1`
//! steps, each moving the full local contribution).

pub mod collectives;
pub mod error;
pub mod predict;
pub mod protocheck;
pub mod topology;
pub mod traffic;
pub mod transport;
pub mod wire;

pub use error::CommError;
pub use predict::StaticLedger;
pub use protocheck::{SessionSpec, SessionValidator};
pub use topology::{Topology, WorkerId};
pub use traffic::{TrafficClass, TrafficSnapshot, TrafficStats};
pub use transport::{
    ChannelTransport, Endpoint, Envelope, Payload, PeerHealth, RecvError, Router, Transport,
    DEFAULT_RECV_DEADLINE,
};
pub use wire::{PackedSlices, WireFormat};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CommError>;
