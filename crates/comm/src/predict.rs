//! Static traffic prediction: replay a communication schedule into a
//! ledger *without running anything*.
//!
//! The plan verifier (`parallax-core::plancheck`) statically computes,
//! per traffic class, the bytes a distributed plan will move in one
//! iteration, and cross-checks them against what the live
//! [`crate::traffic::TrafficStats`] accounting would record — a
//! compile-time analogue of the runtime conservation crosscheck. This
//! module supplies the two ingredients:
//!
//! * [`StaticLedger`] — accounting identical to a live router's
//!   [`TrafficStats`] (it *is* one, fed by hand), keyed by the same
//!   rank→machine mapping and tag→class convention, so a predicted
//!   snapshot is comparable to a measured one with `==`;
//! * `replay_*` helpers — the exact per-step wire schedule of every
//!   collective in [`crate::collectives`], expressed as byte counts
//!   instead of payloads. Unit tests pin each replay against the real
//!   collective's measured traffic.

use std::sync::Arc;

use crate::collectives::chunk_range;
use crate::topology::Topology;
use crate::traffic::{TrafficClass, TrafficSnapshot, TrafficStats};
use crate::wire::WireFormat;
use crate::Result;

/// A traffic ledger fed by static replay instead of live sends.
///
/// Internally this wraps the very same [`TrafficStats`] accumulator the
/// transport layer charges, so intra/inter splitting, link accounting
/// and message counting are *identical by construction* — the predictor
/// can only diverge from a measurement by replaying the wrong schedule,
/// never by accounting the right schedule differently.
#[derive(Debug, Clone)]
pub struct StaticLedger {
    topo: Topology,
    stats: Arc<TrafficStats>,
}

impl StaticLedger {
    /// An empty ledger over a cluster topology (the same rank→machine
    /// mapping the live router uses).
    pub fn new(topo: Topology) -> Self {
        let stats = TrafficStats::new(topo.num_machines());
        StaticLedger { topo, stats }
    }

    /// The topology the ledger charges against.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Charges one message from rank `src` to rank `dst` under `tag`,
    /// exactly as `Endpoint::send` would: bytes go to the class named by
    /// the tag's top nibble and are split intra/inter by the machines
    /// hosting the two ranks.
    pub fn charge(&self, src: usize, dst: usize, tag: u64, bytes: u64) -> Result<()> {
        let src_machine = self.topo.machine_of(src)?;
        let dst_machine = self.topo.machine_of(dst)?;
        self.stats
            .record_class(src_machine, dst_machine, bytes, TrafficClass::from_tag(tag));
        Ok(())
    }

    /// Snapshot of one traffic class (comparable to a live
    /// `TrafficStats::class_snapshot` with `==`).
    pub fn class_snapshot(&self, class: TrafficClass) -> TrafficSnapshot {
        self.stats.class_snapshot(class)
    }

    /// Snapshot summed over all classes.
    pub fn snapshot(&self) -> TrafficSnapshot {
        self.stats.snapshot()
    }
}

/// Replays a ring AllReduce of `elems` f32 elements over `ranks` under
/// `tag`: `2(n-1)` steps, each rank sending one near-equal chunk per
/// step to its ring successor (reduce-scatter then allgather).
pub fn replay_ring_allreduce(
    ledger: &StaticLedger,
    ranks: &[usize],
    tag: u64,
    elems: usize,
) -> Result<()> {
    replay_ring_allreduce_wire(ledger, ranks, tag, elems, WireFormat::F32)
}

/// [`replay_ring_allreduce`] under a [`WireFormat`]: identical hop
/// schedule, `wire.scalar_bytes()` per element instead of 4 — the
/// exact sizes `collectives::ring_allreduce_wire` puts on the wire.
pub fn replay_ring_allreduce_wire(
    ledger: &StaticLedger,
    ranks: &[usize],
    tag: u64,
    elems: usize,
    wire: WireFormat,
) -> Result<()> {
    let n = ranks.len();
    if n <= 1 {
        return Ok(());
    }
    let ws = wire.scalar_bytes();
    for (pos, &src) in ranks.iter().enumerate() {
        let dst = ranks[(pos + 1) % n];
        // Reduce-scatter step s sends chunk (pos - s) mod n; allgather
        // step s sends chunk (pos + 1 - s) mod n — the exact rotation
        // `collectives::ring_allreduce` performs.
        for step in 0..n - 1 {
            let chunk = chunk_range(elems, n, (pos + n - step) % n).len();
            ledger.charge(src, dst, tag, ws * chunk as u64)?;
        }
        for step in 0..n - 1 {
            let chunk = chunk_range(elems, n, (pos + 1 + n - step) % n).len();
            ledger.charge(src, dst, tag, ws * chunk as u64)?;
        }
    }
    Ok(())
}

/// Replays a ring AllGatherv over `ranks`, where the rank at position
/// `p` contributes a payload of `contrib_bytes[p]` bytes: `n-1` steps,
/// step `s` forwarding contribution `(pos - s) mod n` to the successor.
pub fn replay_allgatherv(
    ledger: &StaticLedger,
    ranks: &[usize],
    tag: u64,
    contrib_bytes: &[u64],
) -> Result<()> {
    let n = ranks.len();
    if n <= 1 {
        return Ok(());
    }
    for (pos, &src) in ranks.iter().enumerate() {
        let dst = ranks[(pos + 1) % n];
        for step in 0..n - 1 {
            let idx = (pos + n - step) % n;
            ledger.charge(src, dst, tag, contrib_bytes[idx])?;
        }
    }
    Ok(())
}

/// Replays a reduce-to-root where the rank at position `p` holds
/// `bytes[p]` bytes: every non-root sends its buffer to the root.
pub fn replay_reduce_to(
    ledger: &StaticLedger,
    ranks: &[usize],
    tag: u64,
    root: usize,
    bytes: &[u64],
) -> Result<()> {
    for (pos, &src) in ranks.iter().enumerate() {
        if src != root {
            ledger.charge(src, root, tag, bytes[pos])?;
        }
    }
    Ok(())
}

/// Replays a broadcast from `root`: one payload of `bytes` to every
/// other participant.
pub fn replay_broadcast(
    ledger: &StaticLedger,
    ranks: &[usize],
    tag: u64,
    root: usize,
    bytes: u64,
) -> Result<()> {
    for &dst in ranks {
        if dst != root {
            ledger.charge(root, dst, tag, bytes)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allgatherv_slices, gather_slices_to, reduce_to, ring_allreduce};
    use crate::transport::{Endpoint, Payload, Router};
    use parallax_tensor::{IndexedSlices, Tensor};

    /// Runs `f` on every endpoint concurrently and returns the router's
    /// traffic accumulator.
    fn run_all(topo: Topology, f: impl Fn(&mut Endpoint, &[usize]) + Sync) -> Arc<TrafficStats> {
        let n = topo.num_workers();
        let ranks: Vec<usize> = (0..n).collect();
        let (eps, traffic) = Router::build(topo);
        std::thread::scope(|s| {
            for mut ep in eps {
                let ranks = &ranks;
                let f = &f;
                s.spawn(move || f(&mut ep, ranks));
            }
        });
        traffic
    }

    #[test]
    fn ledger_charges_like_an_endpoint() {
        let topo = Topology::new(vec![2, 1]).unwrap();
        let ledger = StaticLedger::new(topo.clone());
        // rank 0 -> rank 2 crosses machines; rank 0 -> rank 1 stays local.
        ledger.charge(0, 2, 0x8000_0000_0000_0000, 100).unwrap();
        ledger.charge(0, 1, 0x8000_0000_0000_0000, 40).unwrap();
        let ps = ledger.class_snapshot(TrafficClass::Ps);
        assert_eq!(ps.out_bytes, vec![100, 0]);
        assert_eq!(ps.in_bytes, vec![0, 100]);
        assert_eq!(ps.intra_bytes_per_machine, vec![40, 0]);
        assert_eq!(ps.inter_messages, 1);
        assert_eq!(ps.intra_messages, 1);
        // Wrong class stays empty; unknown ranks error instead of panic.
        assert_eq!(ledger.class_snapshot(TrafficClass::Nccl).inter_messages, 0);
        assert!(ledger.charge(9, 0, 0, 1).is_err());
    }

    #[test]
    fn ring_allreduce_replay_matches_execution_exactly() {
        // Mixed topologies and lengths (incl. not divisible by n, and a
        // multi-GPU machine so intra-machine hops show up).
        for (gpus, len) in [
            (vec![1, 1, 1, 1], 8usize),
            (vec![1, 1, 1], 7),
            (vec![2, 1], 10),
            (vec![2, 2, 1], 13),
            (vec![3], 5),
        ] {
            let topo = Topology::new(gpus).unwrap();
            let tag = 0x1000_0000_0000_0000u64;
            let measured = run_all(topo.clone(), |ep, ranks| {
                let mut data = vec![1.0f32; len];
                ring_allreduce(ep, ranks, tag, &mut data).unwrap();
            });
            let ledger = StaticLedger::new(topo.clone());
            let ranks: Vec<usize> = (0..topo.num_workers()).collect();
            replay_ring_allreduce(&ledger, &ranks, tag, len).unwrap();
            assert_eq!(
                ledger.class_snapshot(TrafficClass::Nccl),
                measured.class_snapshot(TrafficClass::Nccl),
                "gpus={:?} len={len}",
                topo.gpus_per_machine()
            );
        }
    }

    #[test]
    fn wire_ring_allreduce_replay_matches_execution_exactly() {
        use crate::collectives::ring_allreduce_wire;
        for wire in [WireFormat::F32, WireFormat::F16, WireFormat::Bf16] {
            for (gpus, len) in [
                (vec![1, 1, 1, 1], 8usize),
                (vec![2, 1], 10),
                (vec![2, 2, 1], 13),
            ] {
                let topo = Topology::new(gpus).unwrap();
                let tag = 0x1000_0000_0000_0000u64;
                let measured = run_all(topo.clone(), |ep, ranks| {
                    let mut data = vec![1.0f32; len];
                    ring_allreduce_wire(ep, ranks, tag, &mut data, wire).unwrap();
                });
                let ledger = StaticLedger::new(topo.clone());
                let ranks: Vec<usize> = (0..topo.num_workers()).collect();
                replay_ring_allreduce_wire(&ledger, &ranks, tag, len, wire).unwrap();
                assert_eq!(
                    ledger.class_snapshot(TrafficClass::Nccl),
                    measured.class_snapshot(TrafficClass::Nccl),
                    "wire={wire:?} gpus={:?} len={len}",
                    topo.gpus_per_machine()
                );
            }
        }
    }

    #[test]
    fn wire_allgatherv_slices_replay_matches_execution_exactly() {
        use crate::collectives::allgatherv_slices_wire;
        use crate::wire::slices_wire_bytes;
        for wire in [WireFormat::F32, WireFormat::F16] {
            for gpus in [vec![1, 1, 1], vec![2, 2]] {
                let topo = Topology::new(gpus).unwrap();
                let tag = 0x3000_0000_0000_0000u64;
                let cols = 3usize;
                let nnz = |rank: usize| rank + 1;
                let build = |r: usize| {
                    IndexedSlices::new(
                        (0..nnz(r)).map(|i| i * 50).collect(),
                        Tensor::full([nnz(r), cols], r as f32),
                        1000,
                    )
                    .unwrap()
                };
                let measured = run_all(topo.clone(), |ep, ranks| {
                    allgatherv_slices_wire(ep, ranks, tag, build(ep.rank()), wire).unwrap();
                });
                let ledger = StaticLedger::new(topo.clone());
                let ranks: Vec<usize> = (0..topo.num_workers()).collect();
                let contrib: Vec<u64> = ranks
                    .iter()
                    .map(|&r| slices_wire_bytes(&build(r), wire))
                    .collect();
                replay_allgatherv(&ledger, &ranks, tag, &contrib).unwrap();
                assert_eq!(
                    ledger.class_snapshot(TrafficClass::Mpi),
                    measured.class_snapshot(TrafficClass::Mpi),
                    "wire={wire:?} gpus={:?}",
                    topo.gpus_per_machine()
                );
            }
        }
    }

    #[test]
    fn allgatherv_slices_replay_matches_execution_exactly() {
        for gpus in [vec![1, 1, 1], vec![2, 2], vec![2, 1, 1]] {
            let topo = Topology::new(gpus).unwrap();
            let tag = 0x3000_0000_0000_0000u64;
            let cols = 3usize;
            let nnz = |rank: usize| rank + 1;
            let measured = run_all(topo.clone(), |ep, ranks| {
                let r = ep.rank();
                let local = IndexedSlices::new(
                    (0..nnz(r)).collect(),
                    Tensor::full([nnz(r), cols], r as f32),
                    16,
                )
                .unwrap();
                allgatherv_slices(ep, ranks, tag, local).unwrap();
            });
            let ledger = StaticLedger::new(topo.clone());
            let ranks: Vec<usize> = (0..topo.num_workers()).collect();
            // IndexedSlices payload bytes: 4 per value + 8 per index.
            let contrib: Vec<u64> = ranks
                .iter()
                .map(|&r| (4 * nnz(r) * cols + 8 * nnz(r)) as u64)
                .collect();
            replay_allgatherv(&ledger, &ranks, tag, &contrib).unwrap();
            assert_eq!(
                ledger.class_snapshot(TrafficClass::Mpi),
                measured.class_snapshot(TrafficClass::Mpi),
                "gpus={:?}",
                topo.gpus_per_machine()
            );
        }
    }

    #[test]
    fn reduce_and_gather_replays_match_execution_exactly() {
        let topo = Topology::new(vec![2, 2]).unwrap();
        let tag = 0x2000_0000_0000_0000u64;
        let len = 6usize;
        let measured = run_all(topo.clone(), |ep, ranks| {
            // Machine-local reductions to each machine's first rank, the
            // shape local aggregation uses.
            let machine_ranks: Vec<usize> = if ep.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            let root = machine_ranks[0];
            if ranks.contains(&ep.rank()) {
                reduce_to(ep, &machine_ranks, tag, root, vec![0.0; len]).unwrap();
                let slices =
                    IndexedSlices::new(vec![ep.rank()], Tensor::full([1, 2], 1.0), 8).unwrap();
                gather_slices_to(ep, &machine_ranks, tag + 1, root, slices).unwrap();
            }
        });
        let ledger = StaticLedger::new(topo);
        for machine_ranks in [[0usize, 1], [2, 3]] {
            let root = machine_ranks[0];
            replay_reduce_to(&ledger, &machine_ranks, tag, root, &[4 * len as u64; 2]).unwrap();
            // Each non-root contributes one [1, 2] slice: 8 value bytes
            // + 8 index bytes.
            replay_reduce_to(&ledger, &machine_ranks, tag + 1, root, &[16; 2]).unwrap();
        }
        assert_eq!(
            ledger.class_snapshot(TrafficClass::LocalAgg),
            measured.class_snapshot(TrafficClass::LocalAgg)
        );
    }

    #[test]
    fn broadcast_replay_matches_execution_exactly() {
        let topo = Topology::new(vec![1, 2]).unwrap();
        let tag = 0u64;
        let measured = run_all(topo.clone(), |ep, ranks| {
            let value = (ep.rank() == 0).then(|| Tensor::full([5], 1.0));
            crate::collectives::broadcast(ep, ranks, tag, 0, value).unwrap();
        });
        let ledger = StaticLedger::new(topo.clone());
        let ranks: Vec<usize> = (0..topo.num_workers()).collect();
        replay_broadcast(&ledger, &ranks, tag, 0, 20).unwrap();
        assert_eq!(
            ledger.class_snapshot(TrafficClass::Default),
            measured.class_snapshot(TrafficClass::Default)
        );
    }

    #[test]
    fn single_rank_replays_are_silent() {
        let topo = Topology::new(vec![1]).unwrap();
        let ledger = StaticLedger::new(topo);
        replay_ring_allreduce(&ledger, &[0], 1, 100).unwrap();
        replay_allgatherv(&ledger, &[0], 1, &[400]).unwrap();
        assert_eq!(ledger.snapshot().inter_messages, 0);
        assert_eq!(ledger.snapshot().intra_messages, 0);
    }

    #[test]
    fn payload_byte_sizes_are_what_replay_assumes() {
        // The replay hardcodes the wire sizes of the payload kinds it
        // models; pin them against the transport's byte_size.
        assert_eq!(Payload::Floats(Arc::new(vec![0.0; 7])).byte_size(), 28);
        let slices = IndexedSlices::new(vec![0, 2], Tensor::zeros([2, 3]), 4).unwrap();
        assert_eq!(
            Payload::Slices(Arc::new(slices)).byte_size(),
            2 * 3 * 4 + 2 * 8
        );
        assert_eq!(
            Payload::Tensor(Arc::new(Tensor::zeros([5]))).byte_size(),
            20
        );
        assert_eq!(Payload::Ids(vec![1, 2, 3]).byte_size(), 24);
        assert_eq!(Payload::Control(0).byte_size(), 8);
        assert_eq!(
            Payload::Packet {
                header: 0,
                body: Box::new(Payload::Control(0)),
            }
            .byte_size(),
            16
        );
    }
}
