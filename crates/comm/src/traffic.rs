//! Byte-accurate network traffic accounting.
//!
//! Every message routed between workers on different machines is charged
//! here. The per-machine in/out counters are the measured counterpart of
//! the closed-form expressions in Table 3 of the paper, and the network
//! half of the iteration-time simulation reads them directly.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Traffic class of a message, derived from its tag's top nibble by
/// convention (see `parallax-ps`'s protocol module): collectives, local
/// aggregation, and Parameter Server RPC are accounted separately so the
/// iteration-time simulation can apply per-transport efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Untagged / miscellaneous traffic.
    Default = 0,
    /// NCCL-style ring collectives (AllReduce).
    Nccl = 1,
    /// Intra-machine local aggregation.
    LocalAgg = 2,
    /// MPI-style collectives (AllGatherv).
    Mpi = 3,
    /// Parameter Server RPC (pulls, pushes, notifications).
    Ps = 4,
}

impl TrafficClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 5;

    /// All classes in index order.
    pub fn all() -> [TrafficClass; TrafficClass::COUNT] {
        [
            TrafficClass::Default,
            TrafficClass::Nccl,
            TrafficClass::LocalAgg,
            TrafficClass::Mpi,
            TrafficClass::Ps,
        ]
    }

    /// Classifies a message tag by its top nibble.
    ///
    /// PS response tags are `0x8000.. | packed header`, and the packed
    /// header keeps the request kind in bits 58+, so kinds >= 4
    /// (PushSparse, ChiefUpdate, UpdateDone, ReadAgg) carry into the
    /// top nibble and surface as `0x9`, and kind 8 (FetchShard, the
    /// checkpoint shard fetch) surfaces as `0xA`. All three nibbles are
    /// PS traffic; no other tag space reaches them.
    pub fn from_tag(tag: u64) -> Self {
        match tag >> 60 {
            0x1 => TrafficClass::Nccl,
            0x2 => TrafficClass::LocalAgg,
            0x3 => TrafficClass::Mpi,
            0x4 | 0x8 | 0x9 | 0xA => TrafficClass::Ps,
            _ => TrafficClass::Default,
        }
    }
}

/// An immutable snapshot of accumulated traffic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes sent from each machine onto the network.
    pub out_bytes: Vec<u64>,
    /// Bytes received by each machine from the network.
    pub in_bytes: Vec<u64>,
    /// Bytes per directed inter-machine link.
    pub link_bytes: HashMap<(usize, usize), u64>,
    /// Bytes that stayed within each machine (PCIe/NVLink, not network).
    pub intra_bytes_per_machine: Vec<u64>,
    /// Count of inter-machine messages (for latency modelling).
    pub inter_messages: u64,
    /// Count of intra-machine messages.
    pub intra_messages: u64,
}

impl TrafficSnapshot {
    /// Total bytes crossing the network (sum over machines of out-bytes).
    pub fn total_network_bytes(&self) -> u64 {
        self.out_bytes.iter().sum()
    }

    /// Total intra-machine bytes.
    pub fn intra_bytes(&self) -> u64 {
        self.intra_bytes_per_machine.iter().sum()
    }

    /// Subtracts an earlier snapshot, yielding the traffic of the window
    /// between the two (used to attribute traffic to protocol phases).
    ///
    /// Subtraction saturates at zero: if the counters were `reset()`
    /// between the two snapshots, the "earlier" snapshot can exceed the
    /// later one, and a wrapped difference would be nonsense.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter().zip(b).map(|(x, y)| x.saturating_sub(*y)).collect()
        };
        let mut link_bytes = self.link_bytes.clone();
        for (k, v) in &earlier.link_bytes {
            if let Some(slot) = link_bytes.get_mut(k) {
                *slot = slot.saturating_sub(*v);
            }
        }
        TrafficSnapshot {
            out_bytes: sub(&self.out_bytes, &earlier.out_bytes),
            in_bytes: sub(&self.in_bytes, &earlier.in_bytes),
            link_bytes,
            intra_bytes_per_machine: sub(
                &self.intra_bytes_per_machine,
                &earlier.intra_bytes_per_machine,
            ),
            inter_messages: self.inter_messages.saturating_sub(earlier.inter_messages),
            intra_messages: self.intra_messages.saturating_sub(earlier.intra_messages),
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn add_assign(&mut self, other: &TrafficSnapshot) {
        for (a, b) in self.out_bytes.iter_mut().zip(&other.out_bytes) {
            *a += b;
        }
        for (a, b) in self.in_bytes.iter_mut().zip(&other.in_bytes) {
            *a += b;
        }
        for (a, b) in self
            .intra_bytes_per_machine
            .iter_mut()
            .zip(&other.intra_bytes_per_machine)
        {
            *a += b;
        }
        for (k, v) in &other.link_bytes {
            *self.link_bytes.entry(*k).or_insert(0) += v;
        }
        self.inter_messages += other.inter_messages;
        self.intra_messages += other.intra_messages;
    }

    /// The largest per-machine network load, `max(in + out)` — the paper's
    /// bottleneck quantity: one hot machine stalls the whole iteration.
    pub fn max_machine_bytes(&self) -> u64 {
        self.out_bytes
            .iter()
            .zip(&self.in_bytes)
            .map(|(o, i)| o + i)
            .max()
            .unwrap_or(0)
    }

    /// Per-machine `in + out` loads.
    pub fn machine_loads(&self) -> Vec<u64> {
        self.out_bytes
            .iter()
            .zip(&self.in_bytes)
            .map(|(o, i)| o + i)
            .collect()
    }

    /// # Examples
    ///
    /// ```
    /// use parallax_comm::TrafficStats;
    /// let stats = TrafficStats::new(3);
    /// stats.record(0, 1, 300); // Machine 0 serves two peers:
    /// stats.record(0, 2, 300); // it is the hot PS server.
    /// assert!(stats.snapshot().imbalance() > 1.4);
    /// ```
    /// The imbalance ratio `max load / mean load` (1.0 = perfectly even);
    /// quantifies the PS asymmetry the paper identifies as the root cause
    /// of its underperformance on dense variables.
    pub fn imbalance(&self) -> f64 {
        let loads = self.machine_loads();
        if loads.is_empty() {
            return 1.0;
        }
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    by_class: Vec<TrafficSnapshot>,
}

/// Thread-safe traffic accumulator shared by all endpoints of a router.
#[derive(Debug)]
pub struct TrafficStats {
    inner: Mutex<Inner>,
    machines: usize,
}

impl TrafficStats {
    fn empty_snapshot(machines: usize) -> TrafficSnapshot {
        TrafficSnapshot {
            out_bytes: vec![0; machines],
            in_bytes: vec![0; machines],
            intra_bytes_per_machine: vec![0; machines],
            ..TrafficSnapshot::default()
        }
    }

    /// Creates an accumulator for `machines` machines.
    pub fn new(machines: usize) -> Arc<Self> {
        let by_class = (0..TrafficClass::COUNT)
            .map(|_| Self::empty_snapshot(machines))
            .collect();
        Arc::new(TrafficStats {
            inner: Mutex::new(Inner { by_class }),
            machines,
        })
    }

    /// Records a message of `bytes` from `src_machine` to `dst_machine`
    /// under the default class.
    pub fn record(&self, src_machine: usize, dst_machine: usize, bytes: u64) {
        self.record_class(src_machine, dst_machine, bytes, TrafficClass::Default);
    }

    /// Records a message under an explicit traffic class.
    pub fn record_class(
        &self,
        src_machine: usize,
        dst_machine: usize,
        bytes: u64,
        class: TrafficClass,
    ) {
        let mut inner = self.inner.lock();
        let snap = &mut inner.by_class[class as usize];
        if src_machine == dst_machine {
            snap.intra_bytes_per_machine[src_machine] += bytes;
            snap.intra_messages += 1;
        } else {
            snap.out_bytes[src_machine] += bytes;
            snap.in_bytes[dst_machine] += bytes;
            *snap
                .link_bytes
                .entry((src_machine, dst_machine))
                .or_insert(0) += bytes;
            snap.inter_messages += 1;
        }
    }

    /// Takes a snapshot of accumulated traffic, summed over all classes.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let inner = self.inner.lock();
        let mut total = Self::empty_snapshot(self.machines);
        for snap in &inner.by_class {
            total.add_assign(snap);
        }
        total
    }

    /// Takes a snapshot of one traffic class.
    pub fn class_snapshot(&self, class: TrafficClass) -> TrafficSnapshot {
        self.inner.lock().by_class[class as usize].clone()
    }

    /// Resets all counters (used between measurement windows, e.g. to
    /// discard warm-up iterations).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.by_class = (0..TrafficClass::COUNT)
            .map(|_| Self::empty_snapshot(self.machines))
            .collect();
    }

    /// Number of machines being tracked.
    pub fn num_machines(&self) -> usize {
        self.machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_locality() {
        let stats = TrafficStats::new(2);
        stats.record(0, 1, 100);
        stats.record(1, 0, 50);
        stats.record(0, 0, 999);
        let s = stats.snapshot();
        assert_eq!(s.out_bytes, vec![100, 50]);
        assert_eq!(s.in_bytes, vec![50, 100]);
        assert_eq!(s.intra_bytes(), 999);
        assert_eq!(s.inter_messages, 2);
        assert_eq!(s.intra_messages, 1);
        assert_eq!(s.total_network_bytes(), 150);
        assert_eq!(s.link_bytes[&(0, 1)], 100);
    }

    #[test]
    fn max_machine_and_imbalance() {
        let stats = TrafficStats::new(3);
        // Machine 0 is the hot PS server: sends 200 to each other machine.
        stats.record(0, 1, 200);
        stats.record(0, 2, 200);
        stats.record(1, 0, 10);
        let s = stats.snapshot();
        assert_eq!(s.max_machine_bytes(), 410);
        assert!(s.imbalance() > 1.4, "hot machine shows up as imbalance");
    }

    #[test]
    fn reset_clears() {
        let stats = TrafficStats::new(2);
        stats.record(0, 1, 7);
        stats.reset();
        let s = stats.snapshot();
        assert_eq!(s.total_network_bytes(), 0);
        assert_eq!(s.out_bytes.len(), 2);
    }

    #[test]
    fn classes_are_separated_and_summed() {
        let stats = TrafficStats::new(2);
        stats.record_class(0, 1, 100, TrafficClass::Nccl);
        stats.record_class(0, 1, 50, TrafficClass::Ps);
        assert_eq!(stats.class_snapshot(TrafficClass::Nccl).out_bytes[0], 100);
        assert_eq!(stats.class_snapshot(TrafficClass::Ps).out_bytes[0], 50);
        assert_eq!(stats.class_snapshot(TrafficClass::Mpi).out_bytes[0], 0);
        assert_eq!(stats.snapshot().out_bytes[0], 150);
    }

    #[test]
    fn class_from_tag_nibbles() {
        assert_eq!(
            TrafficClass::from_tag(0x1000_0000_0000_0000),
            TrafficClass::Nccl
        );
        assert_eq!(
            TrafficClass::from_tag(0x2000_0000_0000_0001),
            TrafficClass::LocalAgg
        );
        assert_eq!(
            TrafficClass::from_tag(0x3000_0000_0000_0000),
            TrafficClass::Mpi
        );
        assert_eq!(
            TrafficClass::from_tag(0x4000_0000_0000_0000),
            TrafficClass::Ps
        );
        assert_eq!(
            TrafficClass::from_tag(0x8000_0000_0000_0abc),
            TrafficClass::Ps
        );
        // Response tags for request kinds >= 4 carry the kind bits into
        // the top nibble: 0x8... | (kind << 58) reads back as 0x9....
        assert_eq!(
            TrafficClass::from_tag(0x9800_0000_0000_0abc),
            TrafficClass::Ps
        );
        // Kind 8 (FetchShard) responses: 0x8... | (8 << 58) == 0xA....
        assert_eq!(
            TrafficClass::from_tag(0xA000_0000_0000_0ABC),
            TrafficClass::Ps
        );
        assert_eq!(TrafficClass::from_tag(7), TrafficClass::Default);
    }

    #[test]
    fn since_computes_window_delta() {
        let stats = TrafficStats::new(2);
        stats.record(0, 1, 100);
        let before = stats.snapshot();
        stats.record(0, 1, 40);
        stats.record(1, 1, 8);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.out_bytes, vec![40, 0]);
        assert_eq!(delta.link_bytes[&(0, 1)], 40);
        assert_eq!(delta.intra_bytes(), 8);
        assert_eq!(delta.inter_messages, 1);
    }

    #[test]
    fn since_saturates_across_reset() {
        let stats = TrafficStats::new(2);
        stats.record(0, 1, 100);
        stats.record(1, 1, 50);
        let before = stats.snapshot();
        stats.reset();
        stats.record(0, 1, 30);
        // The reset made counters go backwards; the delta must clamp to
        // zero rather than wrap around.
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.out_bytes, vec![0, 0]);
        assert_eq!(delta.in_bytes, vec![0, 0]);
        assert_eq!(delta.link_bytes[&(0, 1)], 0);
        assert_eq!(delta.intra_bytes(), 0);
        assert_eq!(delta.inter_messages, 0);
        assert_eq!(delta.intra_messages, 0);
    }

    #[test]
    fn imbalance_single_machine_and_zero_loads() {
        // One machine: max == mean, perfectly balanced by definition.
        let stats = TrafficStats::new(1);
        stats.record(0, 0, 123); // intra only — zero network load
        assert_eq!(stats.snapshot().imbalance(), 1.0);
        // All-zero loads (no traffic at all): defined as 1.0, not NaN.
        let idle = TrafficStats::new(4);
        assert_eq!(idle.snapshot().imbalance(), 1.0);
        // Degenerate empty snapshot.
        assert_eq!(TrafficSnapshot::default().imbalance(), 1.0);
    }

    #[test]
    fn class_snapshots_sum_to_unclassified_snapshot() {
        let stats = TrafficStats::new(3);
        stats.record_class(0, 1, 100, TrafficClass::Nccl);
        stats.record_class(1, 2, 75, TrafficClass::Ps);
        stats.record_class(2, 0, 33, TrafficClass::Mpi);
        stats.record_class(0, 0, 12, TrafficClass::LocalAgg);
        stats.record(1, 0, 9);
        let mut summed = TrafficSnapshot {
            out_bytes: vec![0; 3],
            in_bytes: vec![0; 3],
            intra_bytes_per_machine: vec![0; 3],
            ..TrafficSnapshot::default()
        };
        for class in TrafficClass::all() {
            summed.add_assign(&stats.class_snapshot(class));
        }
        assert_eq!(summed, stats.snapshot());
        assert_eq!(summed.total_network_bytes(), 217);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let stats = TrafficStats::new(2);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let stats = &stats;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        stats.record(0, 1, 1);
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().out_bytes[0], 8000);
    }
}
