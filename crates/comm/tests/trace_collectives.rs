//! Collective tracing: spans are recorded per step and their byte
//! attribution agrees with the traffic accountant.
//!
//! The tracer is process-global, so this test lives in its own
//! integration-test binary (one process) rather than alongside other
//! tests that could record into the same buffers.

use std::sync::Arc;

use parallax_comm::collectives::{allgatherv, ring_allreduce};
use parallax_comm::topology::Topology;
use parallax_comm::transport::{Payload, Router};
use parallax_trace::{SpanCat, TraceConfig};

#[test]
fn collective_spans_cross_check_traffic_bytes() {
    parallax_trace::configure(TraceConfig::on());
    parallax_trace::reset();

    let machines = 4usize;
    let topo = Topology::uniform(machines, 1).unwrap();
    let ranks: Vec<usize> = (0..machines).collect();
    let (eps, traffic) = Router::build(topo);
    std::thread::scope(|s| {
        for mut ep in eps {
            let ranks = &ranks;
            s.spawn(move || {
                parallax_trace::set_thread_track(
                    ep.machine().unwrap() as u32,
                    ep.rank() as u32,
                    &format!("worker{}", ep.rank()),
                );
                let mut data = vec![ep.rank() as f32; 16];
                ring_allreduce(&mut ep, ranks, 0x1000_0000_0000_0000, &mut data).unwrap();
                let local = vec![1.0; ep.rank() + 1];
                let parts = allgatherv(&mut ep, ranks, 0x3000_0000_0000_0000, local).unwrap();
                assert_eq!(parts.len(), machines);
            });
        }
    });

    let dump = parallax_trace::drain();
    parallax_trace::disable();

    // Parent + per-step spans for both collectives, on every rank.
    let count = |name: &str| dump.records.iter().filter(|r| r.name == name).count();
    assert_eq!(count("allreduce"), machines);
    assert_eq!(count("allreduce.reduce_scatter"), machines * (machines - 1));
    assert_eq!(count("allreduce.allgather"), machines * (machines - 1));
    assert_eq!(count("allgatherv"), machines);
    assert_eq!(count("allgatherv.step"), machines * (machines - 1));
    assert!(dump
        .records
        .iter()
        .all(|r| r.cat == SpanCat::Collective && r.machine < machines as u32));

    // Every send happened under an open span, so nothing spilled to the
    // unattributed counter and span bytes reproduce the accountant's
    // network total exactly.
    assert_eq!(dump.unattributed_net_bytes, 0);
    let snapshot = traffic.snapshot();
    assert!(snapshot.total_network_bytes() > 0);
    assert_eq!(dump.total_span_bytes(), snapshot.total_network_bytes());

    // A send outside any span lands in the unattributed spill instead.
    parallax_trace::configure(TraceConfig::on());
    let topo2 = Topology::uniform(2, 1).unwrap();
    let (mut eps2, traffic2) = Router::build(topo2);
    let e1 = eps2.pop().unwrap();
    let e0 = eps2.pop().unwrap();
    e0.send(1, 0, Payload::Floats(Arc::new(vec![0.0; 4])))
        .unwrap();
    drop(e1);
    let dump2 = parallax_trace::drain();
    parallax_trace::disable();
    assert_eq!(dump2.unattributed_net_bytes, 16);
    assert_eq!(
        dump2.total_span_bytes(),
        traffic2.snapshot().total_network_bytes()
    );
}
