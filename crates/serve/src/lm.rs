//! Serving adapter for the LM model: next-token logits over the full
//! vocabulary from a fixed-length context.
//!
//! The adapter slices the training graph at its logits node
//! ([`Graph::inference_slice`]), dropping the label placeholders and
//! loss tail, and feeds the candidate placeholder with the *entire*
//! vocabulary `0..vocab` — serving scores every token, where training
//! scores only the sampled-softmax candidates. `VarId`s are shared
//! with the training graph, so a snapshot published by the trainer
//! applies directly.

use parallax_dataflow::{Feed, Graph, NodeId};
use parallax_models::lm::{LmConfig, LmModel};
use parallax_tensor::Tensor;

use crate::engine::ServeModel;
use crate::error::ServeError;
use crate::Result;

/// One LM inference request: a context of exactly `length` token ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmRequest {
    /// Token ids, oldest first; must have the model's unroll length.
    pub context: Vec<usize>,
}

/// The LM serving adapter.
pub struct LmServe {
    graph: Graph,
    logits: NodeId,
    config: LmConfig,
    /// The full-vocabulary candidate set, shared by every batch.
    cands: Vec<usize>,
}

impl LmServe {
    /// Builds the inference slice of a trained LM.
    pub fn new(model: &LmModel) -> Result<LmServe> {
        let (graph, map) = model.built.graph.inference_slice(&[model.built.logits])?;
        let logits = map[model.built.logits.index()].expect("slice targets are always kept");
        Ok(LmServe {
            graph,
            logits,
            config: model.config,
            cands: (0..model.config.vocab).collect(),
        })
    }

    /// The model hyperparameters.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }
}

impl ServeModel for LmServe {
    type Request = LmRequest;
    /// Next-token logits over the full vocabulary (`vocab` entries).
    type Output = Vec<f32>;

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn output(&self) -> NodeId {
        self.logits
    }

    fn batch_size(&self) -> usize {
        self.config.batch
    }

    fn validate(&self, req: &LmRequest) -> Result<()> {
        if req.context.len() != self.config.length {
            return Err(ServeError::BadRequest(format!(
                "context has {} tokens, model unrolls {}",
                req.context.len(),
                self.config.length
            )));
        }
        if let Some(&t) = req.context.iter().find(|&&t| t >= self.config.vocab) {
            return Err(ServeError::BadRequest(format!(
                "token {t} outside vocabulary of {}",
                self.config.vocab
            )));
        }
        Ok(())
    }

    fn build_feed(&self, batch: &[LmRequest]) -> Result<Feed> {
        let b = self.config.batch;
        // Time-major id block, padded with token 0 — padding rows ride
        // along but their logits are dropped in `extract`.
        let mut ids = Vec::with_capacity(self.config.length * b);
        for t in 0..self.config.length {
            for slot in 0..b {
                ids.push(batch.get(slot).map_or(0, |r| r.context[t]));
            }
        }
        Ok(Feed::new()
            .with("ids", ids)
            .with("cands", self.cands.clone())
            .with("h0", Tensor::zeros([b, self.config.hidden]))
            .with("c0", Tensor::zeros([b, self.config.hidden])))
    }

    fn extract(&self, batch: &[LmRequest], output: &Tensor) -> Result<Vec<Vec<f32>>> {
        (0..batch.len())
            .map(|slot| Ok(output.row(slot)?.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::{Session, Value, VarStore};
    use parallax_tensor::DetRng;

    /// Served logits must be bitwise equal to a training-graph forward
    /// pass on the same weights with the same full-vocab candidates.
    #[test]
    fn slice_matches_training_graph_bitwise() {
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let serve = LmServe::new(&model).unwrap();
        let cfg = model.config;
        let mut store = VarStore::init(&model.built.graph, &mut DetRng::seed(21));
        let mut store2 = VarStore::init(&serve.graph, &mut DetRng::seed(21));

        let requests: Vec<LmRequest> = (0..cfg.batch)
            .map(|b| LmRequest {
                context: (0..cfg.length)
                    .map(|t| (7 * b + 3 * t) % cfg.vocab)
                    .collect(),
            })
            .collect();
        let serve_feed = serve.build_feed(&requests).unwrap();

        // The same inputs through the training graph, labels zeroed
        // (they only feed the loss tail, not the logits).
        let mut train_feed = Feed::new()
            .with("cands", (0..cfg.vocab).collect::<Vec<usize>>())
            .with("h0", Tensor::zeros([cfg.batch, cfg.hidden]))
            .with("c0", Tensor::zeros([cfg.batch, cfg.hidden]));
        let mut ids = Vec::new();
        for t in 0..cfg.length {
            for r in &requests {
                ids.push(r.context[t]);
            }
            train_feed.insert(format!("labels_{t}"), vec![0usize; cfg.batch]);
        }
        train_feed.insert("ids", Value::Ids(ids));

        let served = Session::new(&serve.graph)
            .forward(&serve_feed, &mut store2)
            .unwrap();
        let trained = Session::new(&model.built.graph)
            .forward(&train_feed, &mut store)
            .unwrap();
        let a = served.tensor(serve.logits).unwrap();
        let b = trained.tensor(model.built.logits).unwrap();
        assert_eq!(a.shape().dims(), &[cfg.batch, cfg.vocab]);
        assert_eq!(a.data(), b.data(), "served logits must be bitwise equal");
    }

    #[test]
    fn validation_checks_length_and_vocab() {
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let serve = LmServe::new(&model).unwrap();
        let good = LmRequest {
            context: vec![1; serve.config().length],
        };
        serve.validate(&good).unwrap();
        let short = LmRequest { context: vec![1] };
        assert!(serve.validate(&short).is_err());
        let oov = LmRequest {
            context: vec![serve.config().vocab; serve.config().length],
        };
        assert!(serve.validate(&oov).is_err());
    }
}
