//! Serving-layer errors.

use parallax_core::CoreError;
use parallax_dataflow::DataflowError;
use parallax_tensor::TensorError;

/// Errors surfaced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// Snapshot load/publish failure (bubbled from `parallax-core`).
    Core(CoreError),
    /// Forward-pass failure (bubbled from `parallax-dataflow`).
    Dataflow(DataflowError),
    /// Kernel failure (bubbled from `parallax-tensor`).
    Tensor(TensorError),
    /// The bounded request queue is at capacity (load shedding: the
    /// caller decides whether to retry, not the engine).
    QueueFull,
    /// The engine has shut down and accepts no more requests.
    Closed,
    /// The request failed model-specific validation before enqueueing.
    BadRequest(String),
    /// The request was accepted but its batch failed; no response was
    /// produced.
    Canceled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "serve: {e}"),
            ServeError::Dataflow(e) => write!(f, "serve: {e}"),
            ServeError::Tensor(e) => write!(f, "serve: {e}"),
            ServeError::QueueFull => write!(f, "serve: request queue is full"),
            ServeError::Closed => write!(f, "serve: engine is shut down"),
            ServeError::BadRequest(msg) => write!(f, "serve: bad request: {msg}"),
            ServeError::Canceled => write!(f, "serve: request canceled (batch failed)"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<DataflowError> for ServeError {
    fn from(e: DataflowError) -> Self {
        ServeError::Dataflow(e)
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}
