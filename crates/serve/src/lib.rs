#![warn(missing_docs)]

//! Snapshot-consistent inference serving for the Parallax reproduction.
//!
//! Training ends at a barrier; this crate is what comes after it — the
//! ROADMAP's "serve heavy traffic" leg:
//!
//! * [`queue`] — a bounded MPMC request queue with batched dequeue:
//!   admission control in front of the compute pool.
//! * [`engine`] — the [`engine::ServeEngine`]: worker threads coalesce
//!   queued requests into model-sized batches, read weights zero-copy
//!   from an mmap'd [`parallax_core::snapshot`] artifact, and run one
//!   batched forward pass per batch, with per-request latency
//!   histograms riding `parallax-trace`. In online mode the workers
//!   swap in newer snapshots the trainer republishes, upholding the
//!   `train_step - served_step <= checkpoint_interval` staleness bound.
//! * [`lm`] / [`nmt`] — [`engine::ServeModel`] adapters for the two
//!   sparse evaluation models, built on `Graph::inference_slice` so the
//!   serving graph shares `VarId`s (and therefore snapshots) with the
//!   training graph, and served logits are bitwise equal to a
//!   training-graph forward pass on the same weights.

pub mod engine;
pub mod error;
pub mod lm;
pub mod nmt;
pub mod queue;

pub use engine::{Response, ServeConfig, ServeEngine, ServeModel, Ticket};
pub use error::ServeError;
pub use lm::{LmRequest, LmServe};
pub use nmt::{NmtRequest, NmtServe};
pub use queue::Bounded;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ServeError>;
