//! The serving engine: bounded admission, request batching, snapshot
//! refresh, and batched forward passes over zero-copy snapshot views.
//!
//! One engine owns a [`Bounded`] request queue and a pool of worker
//! threads. Each worker repeatedly drains up to one model batch from
//! the queue, runs a single [`Session::forward_into`] over the shared
//! compute pool, and answers every request in the batch with its own
//! logits row plus the snapshot step those logits were computed from.
//!
//! **Determinism invariant.** Every output row of a batched forward
//! pass depends only on that row's own request and the snapshot —
//! padding rows and batch-mates cannot perturb it (the kernels are
//! per-output-row independent and bitwise stable at any
//! `compute_threads`). The same request therefore yields the same
//! bits regardless of arrival order, batch packing, or worker count —
//! asserted by the root `serving_props` property test.
//!
//! **Staleness bound.** In online mode (`refresh`), workers probe the
//! snapshot path with the cheap [`Snapshot::peek_step`] at every batch
//! boundary and atomically swap in a newer artifact before feeding the
//! batch. With the trainer publishing every `k` iterations, a response
//! formed after training step `t` carries `step >= k * floor(t / k) >=
//! t - (k - 1)`, i.e. `t - step <= k`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel;
use parallax_core::snapshot::Snapshot;
use parallax_dataflow::{
    Activations, Feed, Graph, NodeId, Session, VarId, VarProvider, VariableDef,
};
use parallax_tensor::{IndexedSlices, Tensor};

use crate::error::ServeError;
use crate::queue::{Bounded, PushError};
use crate::Result;

/// A model adapter the engine can serve: the inference graph (usually a
/// training graph passed through `Graph::inference_slice`), plus the
/// request-to-feed and logits-to-response mappings.
pub trait ServeModel: Send + Sync + 'static {
    /// One inference request.
    type Request: Send + 'static;
    /// One request's answer (e.g. a logits row).
    type Output: Send + 'static;

    /// The inference graph. Variable names must match the training
    /// graph's (snapshots are applied by name).
    fn graph(&self) -> &Graph;

    /// The node whose activation answers requests (the logits).
    fn output(&self) -> NodeId;

    /// The graph's fixed batch size; the batcher never drains more
    /// requests than this per forward pass.
    fn batch_size(&self) -> usize;

    /// Rejects malformed requests before they are enqueued.
    fn validate(&self, req: &Self::Request) -> Result<()>;

    /// Builds the feed for a batch of `1..=batch_size()` requests,
    /// padding to the fixed batch size. Padding must not influence the
    /// real rows (the determinism invariant).
    fn build_feed(&self, batch: &[Self::Request]) -> Result<Feed>;

    /// Extracts one output per request from the batched activation of
    /// [`ServeModel::output`] (padding rows are dropped here).
    fn extract(&self, batch: &[Self::Request], output: &Tensor) -> Result<Vec<Self::Output>>;
}

/// A served answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Response<T> {
    /// The model output for this request.
    pub output: T,
    /// Training step of the snapshot the output was computed from —
    /// the value the staleness bound is asserted on.
    pub step: u64,
    /// Queue-to-response latency as observed by the worker.
    pub latency_ns: u64,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Request-queue capacity; `try_submit` sheds load beyond it.
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Online mode: probe the snapshot path at batch boundaries and
    /// swap in newer artifacts while training republishes.
    pub refresh: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 1,
            refresh: false,
        }
    }
}

/// A validated, opened snapshot plus the `VarId -> entry` table for one
/// graph, checked once at load so the per-batch provider does no name
/// lookups.
struct Loaded {
    snap: Snapshot,
    /// Entry index per `VarId` of the serving graph.
    var_map: Vec<usize>,
}

impl Loaded {
    fn load(path: &std::path::Path, graph: &Graph) -> Result<Loaded> {
        let snap = Snapshot::open(path)?;
        let mut var_map = Vec::with_capacity(graph.variables().len());
        for var in graph.var_ids() {
            let def = graph.var_def(var)?;
            let idx = snap.entry_index(&def.name).ok_or_else(|| {
                ServeError::Core(parallax_core::CoreError::Config(format!(
                    "snapshot at step {} has no variable '{}'",
                    snap.step(),
                    def.name
                )))
            })?;
            let entry = &snap.entries()[idx];
            if entry.shape != def.shape {
                return Err(ServeError::Core(parallax_core::CoreError::Config(format!(
                    "snapshot variable '{}' has shape {}, serving graph expects {}",
                    def.name, entry.shape, def.shape
                ))));
            }
            var_map.push(idx);
        }
        Ok(Loaded { snap, var_map })
    }
}

/// [`VarProvider`] over a loaded snapshot: dense reads materialize the
/// mapped view once per fetch; sparse reads coalesce duplicate row ids
/// (via [`IndexedSlices::coalesce`], the same dedup the training path
/// uses for sparse gradients), gather each distinct row from the
/// mapped pages once, then expand — densification before the hot loop.
struct SnapshotProvider<'a> {
    loaded: &'a Loaded,
}

impl SnapshotProvider<'_> {
    fn entry_of(&self, var: VarId) -> parallax_dataflow::Result<usize> {
        self.loaded
            .var_map
            .get(var.index())
            .copied()
            .ok_or_else(|| parallax_dataflow::DataflowError::UnknownVariable(var.index()))
    }
}

fn provider_err(e: parallax_core::CoreError) -> parallax_dataflow::DataflowError {
    parallax_dataflow::DataflowError::InvalidGraph(format!("snapshot read failed: {e}"))
}

impl VarProvider for SnapshotProvider<'_> {
    fn fetch_dense(&mut self, var: VarId, _def: &VariableDef) -> parallax_dataflow::Result<Tensor> {
        let idx = self.entry_of(var)?;
        let view = self.loaded.snap.view_at(idx).map_err(provider_err)?;
        Ok(view.to_tensor())
    }

    fn fetch_sparse_rows(
        &mut self,
        var: VarId,
        def: &VariableDef,
        ids: &[usize],
    ) -> parallax_dataflow::Result<Tensor> {
        let idx = self.entry_of(var)?;
        let view = self.loaded.snap.view_at(idx).map_err(provider_err)?;
        let (rows, cols) = def.shape.as_matrix()?;
        if ids.is_empty() {
            return Ok(Tensor::zeros([0, cols]));
        }
        // Coalesce duplicate lookups to one mapped-page read per
        // distinct row (batched requests share hot embedding rows).
        let distinct = IndexedSlices::new(ids.to_vec(), Tensor::zeros([ids.len(), 1]), rows)?
            .coalesce()
            .indices()
            .to_vec();
        let gathered = view.gather_rows(&distinct)?;
        let mut data = Vec::with_capacity(ids.len() * cols);
        for &id in ids {
            let slot = distinct.binary_search(&id).map_err(|_| {
                parallax_tensor::TensorError::IndexOutOfBounds {
                    index: id,
                    bound: rows,
                }
            })?;
            data.extend_from_slice(gathered.row(slot)?);
        }
        Ok(Tensor::new([ids.len(), cols], data)?)
    }
}

struct PendingRequest<M: ServeModel> {
    req: M::Request,
    enqueued: Instant,
    tx: channel::Sender<Response<M::Output>>,
}

/// A submitted request's claim ticket; [`Ticket::wait`] blocks for the
/// response.
pub struct Ticket<T> {
    rx: channel::Receiver<Response<T>>,
}

impl<T> Ticket<T> {
    /// Blocks until the batch containing this request completes.
    /// Fails with [`ServeError::Canceled`] when the batch errored.
    pub fn wait(self) -> Result<Response<T>> {
        self.rx.recv().map_err(|_| ServeError::Canceled)
    }
}

struct Shared<M: ServeModel> {
    model: M,
    path: PathBuf,
    refresh: bool,
    queue: Bounded<PendingRequest<M>>,
    loaded: Mutex<Arc<Loaded>>,
    served: AtomicU64,
}

impl<M: ServeModel> Shared<M> {
    fn current(&self) -> Arc<Loaded> {
        Arc::clone(&self.loaded.lock().expect("snapshot lock poisoned"))
    }

    /// Online-mode refresh at a batch boundary: a cheap 24-byte peek
    /// decides whether to pay a full validated reload. Failures (e.g. a
    /// publish in flight) keep the current snapshot — the engine never
    /// serves from a partially validated artifact.
    fn refresh_if_newer(&self) -> Arc<Loaded> {
        let current = self.current();
        if !self.refresh {
            return current;
        }
        match Snapshot::peek_step(&self.path) {
            Ok(step) if step > current.snap.step() => {
                match Loaded::load(&self.path, self.model.graph()) {
                    Ok(newer) => {
                        let mut guard = self.loaded.lock().expect("snapshot lock poisoned");
                        if newer.snap.step() > guard.snap.step() {
                            *guard = Arc::new(newer);
                            parallax_trace::counter("serve.snapshot_refresh").add(1);
                        }
                        Arc::clone(&guard)
                    }
                    Err(_) => current,
                }
            }
            _ => current,
        }
    }
}

/// The serving engine: owns the queue and worker pool. Dropping (or
/// [`ServeEngine::shutdown`]) closes the queue, drains in-flight
/// requests, and joins the workers.
pub struct ServeEngine<M: ServeModel> {
    shared: Arc<Shared<M>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<M: ServeModel> ServeEngine<M> {
    /// Loads and validates the snapshot at `snapshot_path`, then starts
    /// the worker pool.
    pub fn start(model: M, snapshot_path: PathBuf, config: ServeConfig) -> Result<Self> {
        let loaded = Loaded::load(&snapshot_path, model.graph())?;
        let shared = Arc::new(Shared {
            model,
            path: snapshot_path,
            refresh: config.refresh,
            queue: Bounded::new(config.queue_capacity),
            loaded: Mutex::new(Arc::new(loaded)),
            served: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parallax-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(ServeEngine { shared, workers })
    }

    /// Validates and enqueues a request, blocking while the queue is at
    /// capacity. Returns a [`Ticket`] for the response.
    pub fn submit(&self, req: M::Request) -> Result<Ticket<M::Output>> {
        self.shared.model.validate(&req)?;
        let (tx, rx) = channel::unbounded();
        let pending = PendingRequest {
            req,
            enqueued: Instant::now(),
            tx,
        };
        self.shared
            .queue
            .push(pending)
            .map_err(|_| ServeError::Closed)?;
        Ok(Ticket { rx })
    }

    /// Like [`ServeEngine::submit`] but sheds load instead of blocking
    /// when the queue is full.
    pub fn try_submit(&self, req: M::Request) -> Result<Ticket<M::Output>> {
        self.shared.model.validate(&req)?;
        let (tx, rx) = channel::unbounded();
        let pending = PendingRequest {
            req,
            enqueued: Instant::now(),
            tx,
        };
        match self.shared.queue.try_push(pending) {
            Ok(()) => Ok(Ticket { rx }),
            Err(PushError::Full(_)) => Err(ServeError::QueueFull),
            Err(PushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Submits and blocks for the answer, with a per-request span on
    /// the trace timeline.
    pub fn call(&self, req: M::Request) -> Result<Response<M::Output>> {
        let _span = parallax_trace::span(parallax_trace::SpanCat::Phase, "serve.request");
        self.submit(req)?.wait()
    }

    /// Step of the snapshot currently being served.
    pub fn snapshot_step(&self) -> u64 {
        self.shared.current().snap.step()
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// The model adapter.
    pub fn model(&self) -> &M {
        &self.shared.model
    }

    /// Closes the queue, serves out everything already admitted, and
    /// joins the workers.
    pub fn shutdown(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M: ServeModel> Drop for ServeEngine<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M: ServeModel>(shared: &Shared<M>) {
    let session = Session::new(shared.model.graph());
    let mut acts = Activations::new();
    while let Some(batch) = shared.queue.pop_batch(shared.model.batch_size()) {
        let _span = parallax_trace::span(parallax_trace::SpanCat::Phase, "serve.batch");
        parallax_trace::histogram("serve.batch_size").record(batch.len() as u64);
        let loaded = shared.refresh_if_newer();
        let n = batch.len() as u64;
        match run_batch(shared, &session, &mut acts, &loaded, batch) {
            Ok(()) => {}
            Err(_) => {
                // The batch's senders are gone; every waiter observes
                // `Canceled`. The worker keeps serving later batches.
                parallax_trace::counter("serve.errors").add(n);
            }
        }
    }
}

fn run_batch<M: ServeModel>(
    shared: &Shared<M>,
    session: &Session<'_>,
    acts: &mut Activations,
    loaded: &Loaded,
    batch: Vec<PendingRequest<M>>,
) -> Result<()> {
    let mut requests = Vec::with_capacity(batch.len());
    let mut waiters = Vec::with_capacity(batch.len());
    for pending in batch {
        requests.push(pending.req);
        waiters.push((pending.tx, pending.enqueued));
    }
    let feed = shared.model.build_feed(&requests)?;
    let mut provider = SnapshotProvider { loaded };
    session.forward_into(&feed, &mut provider, acts)?;
    let output = acts.tensor(shared.model.output())?;
    let outputs = shared.model.extract(&requests, output)?;
    debug_assert_eq!(outputs.len(), waiters.len());
    let step = loaded.snap.step();
    // Count before replying: a caller observing its response must also
    // observe the served() increment for its request.
    shared
        .served
        .fetch_add(outputs.len() as u64, Ordering::Relaxed);
    parallax_trace::counter("serve.requests").add(outputs.len() as u64);
    for (output, (tx, enqueued)) in outputs.into_iter().zip(waiters) {
        let latency_ns = enqueued.elapsed().as_nanos() as u64;
        parallax_trace::histogram("serve.latency_ns").record(latency_ns);
        // A departed caller (dropped ticket) is not an engine error;
        // the send's only failure mode is that receiver being gone.
        let _ = tx.send(Response {
            output,
            step,
            latency_ns,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::{VarStore, VariableDef};
    use parallax_tensor::DetRng;

    /// A toy adapter: requests are row ids, answers are rows of an
    /// `[8, 2]` table looked up through `Gather` (so the sparse
    /// provider path is exercised).
    struct RowLookup {
        graph: Graph,
        output: NodeId,
    }

    impl RowLookup {
        fn new() -> RowLookup {
            let mut graph = Graph::new();
            let table = graph
                .variable(VariableDef::new("table", [8, 2], Init::Normal(1.0)))
                .unwrap();
            let ids = graph.placeholder("ids", PhKind::Ids).unwrap();
            let output = graph.add(Op::Gather { table, ids }).unwrap();
            RowLookup { graph, output }
        }
    }

    impl ServeModel for RowLookup {
        type Request = usize;
        type Output = Vec<f32>;

        fn graph(&self) -> &Graph {
            &self.graph
        }
        fn output(&self) -> NodeId {
            self.output
        }
        fn batch_size(&self) -> usize {
            3
        }
        fn validate(&self, req: &usize) -> Result<()> {
            if *req >= 8 {
                return Err(ServeError::BadRequest(format!("row {req} out of range")));
            }
            Ok(())
        }
        fn build_feed(&self, batch: &[usize]) -> Result<Feed> {
            let mut ids: Vec<usize> = batch.to_vec();
            ids.resize(self.batch_size(), 0);
            Ok(Feed::new().with("ids", ids))
        }
        fn extract(&self, batch: &[usize], output: &Tensor) -> Result<Vec<Vec<f32>>> {
            (0..batch.len())
                .map(|b| Ok(output.row(b)?.to_vec()))
                .collect()
        }
    }

    fn snapshot_of(graph: &Graph, step: u64, name: &str) -> (std::path::PathBuf, VarStore) {
        let store = VarStore::init(graph, &mut DetRng::seed(9));
        let mut path = std::env::temp_dir();
        path.push(format!("parallax_serve_test_{}_{name}", std::process::id()));
        parallax_core::snapshot::save(graph, &store, step, &path).unwrap();
        (path, store)
    }

    #[test]
    fn serves_rows_bitwise_from_the_snapshot() {
        let model = RowLookup::new();
        let (path, store) = snapshot_of(&model.graph, 5, "rows");
        let table = model.graph.find_variable("table").unwrap();
        let expect = store.get(table).unwrap().clone();
        let mut engine = ServeEngine::start(model, path.clone(), ServeConfig::default()).unwrap();
        assert_eq!(engine.snapshot_step(), 5);
        for id in [3usize, 0, 7, 3] {
            let resp = engine.call(id).unwrap();
            assert_eq!(resp.step, 5);
            assert_eq!(resp.output, expect.row(id).unwrap());
        }
        assert_eq!(engine.served(), 4);
        engine.shutdown();
        assert!(matches!(engine.call(1), Err(ServeError::Closed)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validation_rejects_before_enqueue() {
        let model = RowLookup::new();
        let (path, _) = snapshot_of(&model.graph, 1, "validate");
        let engine = ServeEngine::start(model, path.clone(), ServeConfig::default()).unwrap();
        assert!(matches!(engine.call(99), Err(ServeError::BadRequest(_))));
        assert_eq!(engine.served(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tickets_resolve_across_batches() {
        let model = RowLookup::new();
        let (path, store) = snapshot_of(&model.graph, 2, "tickets");
        let table = model.graph.find_variable("table").unwrap();
        let expect = store.get(table).unwrap().clone();
        let engine = ServeEngine::start(
            model,
            path.clone(),
            ServeConfig {
                queue_capacity: 16,
                workers: 2,
                refresh: false,
            },
        )
        .unwrap();
        // More requests than one batch holds; all must resolve.
        let tickets: Vec<_> = (0..8).map(|id| engine.submit(id).unwrap()).collect();
        for (id, ticket) in tickets.into_iter().enumerate() {
            let resp = ticket.wait().unwrap();
            assert_eq!(resp.output, expect.row(id).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_variable_fails_start() {
        let model = RowLookup::new();
        // A snapshot of a *different* graph lacks "table".
        let mut other = Graph::new();
        other
            .variable(VariableDef::new("unrelated", [2, 2], Init::Zeros))
            .unwrap();
        let (path, _) = snapshot_of(&other, 1, "missing");
        assert!(ServeEngine::start(model, path.clone(), ServeConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
