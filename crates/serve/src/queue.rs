//! A bounded MPMC request queue with batched dequeue.
//!
//! The admission point of the serving engine: producers (frontend
//! threads) block — or shed load via [`Bounded::try_push`] — when the
//! queue is at capacity, and consumer workers take *up to* a batch of
//! requests in one lock acquisition, which is what lets the batcher
//! coalesce whatever has accumulated since its last forward pass
//! instead of paying one wakeup per request.

//! # Shutdown ordering guarantee
//!
//! Every successful push strictly precedes `close`'s observation or
//! strictly follows it — `try_push`/`push` and [`Bounded::close`]
//! serialize on the one queue mutex, so there is no window where a push
//! returns `Ok` yet its item is lost. Combined with
//! [`Bounded::pop_batch`] returning `None` only when `closed && empty`,
//! this yields the drain-on-shutdown guarantee the serving engine's
//! latency accounting relies on: **every request whose push returned
//! `Ok` before `close` is delivered to some consumer**, and consumers
//! observe end-of-stream only after the last such request was handed
//! out. Producers blocked in `push` at close time get their value back
//! (`Err`) rather than enqueueing into a closing queue. This invariant
//! is model-checked over every interleaving (within the preemption
//! bound) by `tests/loom_queue.rs`.

use std::collections::VecDeque;

// Under `--cfg loom` the queue compiles against the vendored loom's
// primitives so the shutdown/drain protocol can be model-checked;
// ordinary builds use std.
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};

/// Rejection reasons from [`Bounded::try_push`]; carries the value back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(value));
        }
        if inner.queue.len() >= self.capacity {
            return Err(PushError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity. Returns the
    /// value back when the queue closes before space opens up.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while !inner.closed && inner.queue.len() >= self.capacity {
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
        if inner.closed {
            return Err(value);
        }
        inner.queue.push_back(value);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues up to `max` items, blocking until at least one is
    /// available. Returns `None` once the queue is closed *and*
    /// drained — in-flight requests are always served out.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while inner.queue.is_empty() {
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
        let n = inner.queue.len().min(max.max(1));
        let batch: Vec<T> = inner.queue.drain(..n).collect();
        drop(inner);
        // Batch drains free up to `n` slots; wake all blocked producers.
        self.not_full.notify_all();
        Some(batch)
    }

    /// Closes the queue: producers fail fast, consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").queue.len()
    }

    /// True when no requests are waiting (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_batched_drain() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3).unwrap(), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        q.pop_batch(1).unwrap();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        assert!(q.push(9).is_err());
        assert_eq!(q.pop_batch(4).unwrap(), vec![7]);
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn blocked_producer_wakes_on_drain() {
        let q = Arc::new(Bounded::new(1));
        q.try_push(0usize).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the producer a moment to block, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop_batch(1).unwrap(), vec![0]);
        assert!(producer.join().unwrap());
        assert_eq!(q.pop_batch(1).unwrap(), vec![1]);
    }

    #[test]
    fn every_acked_push_survives_concurrent_close() {
        // Stress the shutdown ordering guarantee: race producers
        // against close; every push that returned Ok must be drained by
        // the consumer, no matter where close landed.
        for _ in 0..50 {
            let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(16));
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let q2 = Arc::clone(&q);
                    std::thread::spawn(move || {
                        (0..4).filter(|i| q2.try_push(p * 10 + i).is_ok()).count()
                    })
                })
                .collect();
            let closer = {
                let q2 = Arc::clone(&q);
                std::thread::spawn(move || {
                    std::thread::yield_now();
                    q2.close();
                })
            };
            let acked: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
            closer.join().unwrap();
            let mut drained = 0;
            while let Some(batch) = q.pop_batch(8) {
                drained += batch.len();
            }
            assert_eq!(drained, acked);
        }
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(consumer.join().unwrap().is_none());
    }
}
