//! Serving adapter for the NMT model: next-target-token logits over
//! the full target vocabulary, given a source sentence and a decoded
//! target prefix (one step of greedy/beam decoding).
//!
//! The training graph already projects to the full target vocabulary,
//! so — unlike the LM — no candidate widening is needed; the adapter
//! only slices off the label placeholders and loss tail.

use parallax_dataflow::{Feed, Graph, NodeId};
use parallax_models::nmt::{NmtConfig, NmtModel};
use parallax_tensor::Tensor;

use crate::engine::ServeModel;
use crate::error::ServeError;
use crate::Result;

/// One NMT inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmtRequest {
    /// Source token ids; must have the model's sequence length.
    pub src: Vec<usize>,
    /// Target-side prefix (teacher-forced decoder input); must have
    /// the model's sequence length. The response scores the token
    /// following the last prefix position.
    pub tgt_prefix: Vec<usize>,
}

/// The NMT serving adapter.
pub struct NmtServe {
    graph: Graph,
    logits: NodeId,
    config: NmtConfig,
}

impl NmtServe {
    /// Builds the inference slice of a trained NMT model.
    pub fn new(model: &NmtModel) -> Result<NmtServe> {
        let (graph, map) = model.built.graph.inference_slice(&[model.built.logits])?;
        let logits = map[model.built.logits.index()].expect("slice targets are always kept");
        Ok(NmtServe {
            graph,
            logits,
            config: model.config,
        })
    }

    /// The model hyperparameters.
    pub fn config(&self) -> &NmtConfig {
        &self.config
    }
}

impl ServeModel for NmtServe {
    type Request = NmtRequest;
    /// Logits over the full target vocabulary (`tgt_vocab` entries).
    type Output = Vec<f32>;

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn output(&self) -> NodeId {
        self.logits
    }

    fn batch_size(&self) -> usize {
        self.config.batch
    }

    fn validate(&self, req: &NmtRequest) -> Result<()> {
        if req.src.len() != self.config.length || req.tgt_prefix.len() != self.config.length {
            return Err(ServeError::BadRequest(format!(
                "src/tgt have {}/{} tokens, model unrolls {}",
                req.src.len(),
                req.tgt_prefix.len(),
                self.config.length
            )));
        }
        if let Some(&t) = req.src.iter().find(|&&t| t >= self.config.src_vocab) {
            return Err(ServeError::BadRequest(format!(
                "source token {t} outside vocabulary of {}",
                self.config.src_vocab
            )));
        }
        if let Some(&t) = req.tgt_prefix.iter().find(|&&t| t >= self.config.tgt_vocab) {
            return Err(ServeError::BadRequest(format!(
                "target token {t} outside vocabulary of {}",
                self.config.tgt_vocab
            )));
        }
        Ok(())
    }

    fn build_feed(&self, batch: &[NmtRequest]) -> Result<Feed> {
        let b = self.config.batch;
        let mut src_ids = Vec::with_capacity(self.config.length * b);
        let mut tgt_ids = Vec::with_capacity(self.config.length * b);
        for t in 0..self.config.length {
            for slot in 0..b {
                src_ids.push(batch.get(slot).map_or(0, |r| r.src[t]));
                tgt_ids.push(batch.get(slot).map_or(0, |r| r.tgt_prefix[t]));
            }
        }
        Ok(Feed::new()
            .with("src_ids", src_ids)
            .with("tgt_ids", tgt_ids)
            .with("h0", Tensor::zeros([b, self.config.hidden]))
            .with("c0", Tensor::zeros([b, self.config.hidden])))
    }

    fn extract(&self, batch: &[NmtRequest], output: &Tensor) -> Result<Vec<Vec<f32>>> {
        (0..batch.len())
            .map(|slot| Ok(output.row(slot)?.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::{Session, Value, VarStore};
    use parallax_tensor::DetRng;

    #[test]
    fn slice_matches_training_graph_bitwise() {
        let model = NmtModel::build(NmtConfig::tiny()).unwrap();
        let serve = NmtServe::new(&model).unwrap();
        let cfg = model.config;
        let mut store = VarStore::init(&model.built.graph, &mut DetRng::seed(33));
        let mut store2 = VarStore::init(&serve.graph, &mut DetRng::seed(33));

        let requests: Vec<NmtRequest> = (0..cfg.batch)
            .map(|b| NmtRequest {
                src: (0..cfg.length)
                    .map(|t| (5 * b + 2 * t) % cfg.src_vocab)
                    .collect(),
                tgt_prefix: (0..cfg.length)
                    .map(|t| (3 * b + 7 * t) % cfg.tgt_vocab)
                    .collect(),
            })
            .collect();
        let serve_feed = serve.build_feed(&requests).unwrap();

        let mut train_feed = Feed::new()
            .with("h0", Tensor::zeros([cfg.batch, cfg.hidden]))
            .with("c0", Tensor::zeros([cfg.batch, cfg.hidden]));
        let mut src_ids = Vec::new();
        let mut tgt_ids = Vec::new();
        for t in 0..cfg.length {
            for r in &requests {
                src_ids.push(r.src[t]);
                tgt_ids.push(r.tgt_prefix[t]);
            }
            train_feed.insert(format!("labels_{t}"), vec![0usize; cfg.batch]);
        }
        train_feed.insert("src_ids", Value::Ids(src_ids));
        train_feed.insert("tgt_ids", Value::Ids(tgt_ids));

        let served = Session::new(&serve.graph)
            .forward(&serve_feed, &mut store2)
            .unwrap();
        let trained = Session::new(&model.built.graph)
            .forward(&train_feed, &mut store)
            .unwrap();
        let a = served.tensor(serve.logits).unwrap();
        let b = trained.tensor(model.built.logits).unwrap();
        assert_eq!(a.shape().dims(), &[cfg.batch, cfg.tgt_vocab]);
        assert_eq!(a.data(), b.data(), "served logits must be bitwise equal");
    }

    #[test]
    fn validation_checks_lengths_and_vocabs() {
        let model = NmtModel::build(NmtConfig::tiny()).unwrap();
        let serve = NmtServe::new(&model).unwrap();
        let l = serve.config().length;
        serve
            .validate(&NmtRequest {
                src: vec![1; l],
                tgt_prefix: vec![1; l],
            })
            .unwrap();
        assert!(serve
            .validate(&NmtRequest {
                src: vec![1; l - 1],
                tgt_prefix: vec![1; l],
            })
            .is_err());
        assert!(serve
            .validate(&NmtRequest {
                src: vec![serve.config().src_vocab; l],
                tgt_prefix: vec![1; l],
            })
            .is_err());
        assert!(serve
            .validate(&NmtRequest {
                src: vec![1; l],
                tgt_prefix: vec![serve.config().tgt_vocab; l],
            })
            .is_err());
    }
}
