//! Loom model checks for the bounded serving queue: every interleaving
//! (within the preemption bound) of producers, consumers, and shutdown.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p parallax-serve
//! --test loom_queue`; in ordinary builds this file compiles to
//! nothing.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use parallax_serve::queue::Bounded;

/// The shutdown ordering guarantee from the module docs: no matter
/// where `close` lands relative to concurrent pushes, every push that
/// returned `Ok` is drained before consumers see end-of-stream.
#[test]
fn acked_pushes_always_drain_on_shutdown() {
    loom::model(|| {
        let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(2));
        let acked = Arc::new(AtomicUsize::new(0));

        let producer = {
            let q = Arc::clone(&q);
            let acked = Arc::clone(&acked);
            thread::spawn(move || {
                for i in 0..2 {
                    if q.try_push(i).is_ok() {
                        acked.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        };
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };

        producer.join().unwrap();
        closer.join().unwrap();

        let mut drained = 0;
        while let Some(batch) = q.pop_batch(4) {
            drained += batch.len();
        }
        assert_eq!(drained, acked.load(Ordering::SeqCst));
    });
}

/// A consumer blocked on an empty queue always observes the close: no
/// lost-wakeup schedule leaves it waiting forever (a lost wakeup would
/// surface as a loom deadlock).
#[test]
fn blocked_consumer_always_wakes_on_close() {
    loom::model(|| {
        let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop_batch(4))
        };
        q.close();
        assert!(consumer.join().unwrap().is_none());
    });
}

/// A producer blocked on a full queue wakes on the consumer's drain and
/// its item is delivered in FIFO position, in every schedule.
#[test]
fn blocked_producer_always_wakes_on_drain() {
    loom::model(|| {
        let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(1));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).is_ok())
        };
        assert_eq!(q.pop_batch(1).unwrap(), vec![0]);
        assert_eq!(q.pop_batch(1).unwrap(), vec![1]);
        assert!(producer.join().unwrap());
    });
}

/// Close-while-producer-blocked: the producer gets its value back
/// (`Err`) instead of enqueueing into a closing queue, or it won the
/// race and the item drains; never both, never neither.
#[test]
fn close_unblocks_waiting_producer_exactly_once() {
    loom::model(|| {
        let q: Arc<Bounded<usize>> = Arc::new(Bounded::new(1));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).is_ok())
        };
        // Free one slot (the producer may win it), then close.
        let mut drained = q.pop_batch(1).unwrap();
        q.close();
        while let Some(batch) = q.pop_batch(4) {
            drained.extend(batch);
        }
        let accepted = producer.join().unwrap();
        // push() can only succeed before close; a successful push must
        // be drained, a failed one must not appear.
        if accepted {
            assert_eq!(drained, vec![0, 1]);
        } else {
            assert_eq!(drained, vec![0]);
        }
    });
}
