//! Loom model checks for the tracer's concurrent metric cells: counter
//! adds and histogram records from racing threads must never lose an
//! update, and a drain-time snapshot must be internally consistent
//! with the happens-before edges the test establishes.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p parallax-trace
//! --test loom_metrics`.

#![cfg(loom)]

use loom::thread;
use parallax_trace::{Counter, HistogramHandle};

/// Concurrent `add`s are never lost (the fetch_add path), and a read
/// after joining both writers sees the full total.
#[test]
fn counter_adds_are_never_lost() {
    loom::model(|| {
        let c = Counter::standalone();
        let handles: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|n| {
                let c = c.clone();
                thread::spawn(move || c.add(n))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 3);
    });
}

/// A histogram records three cells (bucket, count, sum) non-atomically;
/// after joining the writers every cell must agree on the number of
/// recorded values.
#[test]
fn histogram_cells_agree_after_join() {
    loom::model(|| {
        let h = HistogramHandle::standalone();
        let writers: Vec<_> = [3u64, 5]
            .into_iter()
            .map(|v| {
                let h = h.clone();
                thread::spawn(move || h.record(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 8);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 2);
    });
}
