//! The global tracer: span recording, counters, histograms.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

// Counter and histogram cells compile against loom's atomics under
// `--cfg loom` so concurrent metric aggregation can be model-checked
// (tests/loom_metrics.rs); ordinary builds use std.
#[cfg(loom)]
use loom::sync::atomic::AtomicU64;
#[cfg(not(loom))]
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Machine id used for threads that never called [`set_thread_track`].
pub const UNTRACKED_MACHINE: u32 = u32::MAX;

/// Lane reserved for *modelled* (simulated) timelines, so measured and
/// simulated rows of the same machine sit side by side in a viewer.
pub const SIM_LANE: u32 = u32::MAX - 1;

/// Default per-thread ring capacity (records).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Category of a span, mapped to the `cat` field of Chrome trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCat {
    /// Operator execution (forward/backward compute).
    Compute,
    /// Collective communication (AllReduce, AllGatherv, reduce, ...).
    Collective,
    /// Parameter Server protocol activity.
    Ps,
    /// Iteration phases (forward / backward / exchange / apply).
    Phase,
    /// Modelled (simulated) timeline entries, not measured ones.
    Sim,
}

impl SpanCat {
    /// Stable lowercase name for exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanCat::Compute => "compute",
            SpanCat::Collective => "collective",
            SpanCat::Ps => "ps",
            SpanCat::Phase => "phase",
            SpanCat::Sim => "sim",
        }
    }

    /// Every category, in export order.
    pub fn all() -> [SpanCat; 5] {
        [
            SpanCat::Compute,
            SpanCat::Collective,
            SpanCat::Ps,
            SpanCat::Phase,
            SpanCat::Sim,
        ]
    }
}

/// Flow-event marker carried by a span: links a producer span to the
/// consumer span that handles its payload on another thread. Exporters
/// turn `Start` into a Chrome-trace `s` event and `Finish` into an `f`
/// event with the same id, drawing an arrow between the two slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowPoint {
    /// Span participates in no flow.
    #[default]
    None,
    /// Span originates flow `id` (e.g. a worker pushing a gradient).
    Start(u64),
    /// Span terminates flow `id` (e.g. the server serving that push).
    Finish(u64),
}

impl FlowPoint {
    /// The flow id, if any.
    pub fn id(&self) -> Option<u64> {
        match self {
            FlowPoint::None => None,
            FlowPoint::Start(id) | FlowPoint::Finish(id) => Some(*id),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Category.
    pub cat: SpanCat,
    /// Span name (static so the hot path never allocates).
    pub name: &'static str,
    /// Machine (Chrome trace `pid`); [`UNTRACKED_MACHINE`] if unset.
    pub machine: u32,
    /// Lane within the machine (Chrome trace `tid`), typically the
    /// worker/server rank; [`SIM_LANE`] for modelled timelines.
    pub lane: u32,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Training iteration the span belongs to (from [`set_thread_iter`]).
    pub iter: u64,
    /// Network bytes attributed to this span by [`on_net_bytes`].
    pub bytes: u64,
    /// Flow-event marker (see [`FlowPoint`]); `None` for most spans.
    pub flow: FlowPoint,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfig {
    /// Tracing disabled: every instrumentation site reduces to one
    /// relaxed atomic load.
    Off,
    /// Tracing enabled with the given per-thread ring capacity.
    On {
        /// Maximum records retained per thread; older records are
        /// dropped (and counted) once the ring is full.
        per_thread_capacity: usize,
    },
}

impl TraceConfig {
    /// Enabled with the default ring capacity.
    pub fn on() -> Self {
        TraceConfig::On {
            per_thread_capacity: DEFAULT_CAPACITY,
        }
    }
}

/// Metadata describing one recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Machine (Chrome `pid`).
    pub machine: u32,
    /// Lane (Chrome `tid`).
    pub lane: u32,
    /// Human-readable label ("worker0 (rank 1)", "server(m0)", ...).
    pub label: String,
}

/// A histogram snapshot: power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// `buckets[i]` counts values whose bit length is `i` (bucket 0 is
    /// the value zero; bucket `i` covers `2^(i-1) ..= 2^i - 1`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

const BUCKETS: usize = 65;

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A monotonic counter handle. Cheap to clone; cache it outside hot
/// loops (the name lookup takes the registry lock).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Fresh unregistered counter. For the loom model-check suite,
    /// which needs per-execution state the global registry can't give.
    #[doc(hidden)]
    pub fn standalone() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A histogram handle. Cheap to clone; cache it outside hot loops.
#[derive(Clone)]
pub struct HistogramHandle(Arc<HistogramInner>);

impl HistogramHandle {
    /// Fresh unregistered histogram; see [`Counter::standalone`].
    #[doc(hidden)]
    pub fn standalone() -> HistogramHandle {
        HistogramHandle(Arc::new(HistogramInner::new()))
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={})",
            self.0.count.load(Ordering::Relaxed)
        )
    }
}

/// Everything the tracer accumulated since the last [`drain`]/[`reset`].
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Completed spans, grouped by recording thread in completion order.
    pub records: Vec<SpanRecord>,
    /// Metadata of every thread that recorded at least one span.
    pub threads: Vec<ThreadInfo>,
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Network bytes sent outside any open span (should be 0 when every
    /// send site is covered by instrumentation).
    pub unattributed_net_bytes: u64,
    /// Records lost to ring-buffer overflow.
    pub dropped: u64,
}

impl TraceDump {
    /// Sum of `bytes` over all spans plus the unattributed spill — the
    /// quantity that must equal the traffic accountant's
    /// `total_network_bytes()` when every send is instrumented.
    ///
    /// Spans on [`SIM_LANE`](crate::SIM_LANE) are excluded: those are
    /// *modelled* timelines injected next to the measured ones, and their
    /// bytes restate traffic the accountant already counted.
    pub fn total_span_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.lane != crate::SIM_LANE)
            .map(|r| r.bytes)
            .sum::<u64>()
            + self.unattributed_net_bytes
    }
}

// ------------------------------------------------------------------ globals

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicU32 = AtomicU32::new(1 << 20);

struct Ring {
    records: Vec<SpanRecord>,
    next: usize,
    dropped: u64,
}

struct ThreadShared {
    info: Mutex<ThreadInfo>,
    buf: Mutex<Ring>,
}

struct Registry {
    epoch: Instant,
    capacity: AtomicUsize,
    threads: Mutex<Vec<Arc<ThreadShared>>>,
    injected: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    unattributed: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        capacity: AtomicUsize::new(DEFAULT_CAPACITY),
        threads: Mutex::new(Vec::new()),
        injected: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        unattributed: AtomicU64::new(0),
    })
}

struct Frame {
    cat: SpanCat,
    name: &'static str,
    start_ns: u64,
    bytes: u64,
    flow: FlowPoint,
}

struct Tls {
    shared: Arc<ThreadShared>,
    frames: Vec<Frame>,
    machine: u32,
    lane: u32,
    iter: u64,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> R {
    TLS.with(|slot| {
        let mut slot = slot.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::new(ThreadShared {
                info: Mutex::new(ThreadInfo {
                    machine: UNTRACKED_MACHINE,
                    lane,
                    label: format!("thread-{lane}"),
                }),
                buf: Mutex::new(Ring {
                    records: Vec::new(),
                    next: 0,
                    dropped: 0,
                }),
            });
            registry().threads.lock().push(Arc::clone(&shared));
            Tls {
                shared,
                frames: Vec::new(),
                machine: UNTRACKED_MACHINE,
                lane,
                iter: 0,
            }
        });
        f(tls)
    })
}

// ---------------------------------------------------------------- public api

/// Whether tracing is currently enabled. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Applies a configuration. `Off` leaves already-recorded data in place
/// (drain it whenever convenient); `On` sets the per-thread capacity for
/// rings created afterwards.
pub fn configure(config: TraceConfig) {
    match config {
        TraceConfig::Off => ENABLED.store(false, Ordering::SeqCst),
        TraceConfig::On {
            per_thread_capacity,
        } => {
            registry()
                .capacity
                .store(per_thread_capacity.max(1), Ordering::Relaxed);
            ENABLED.store(true, Ordering::SeqCst);
        }
    }
}

/// Shorthand for `configure(TraceConfig::Off)`.
pub fn disable() {
    configure(TraceConfig::Off);
}

/// Nanoseconds since the tracer epoch.
pub fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// Declares the current thread's position in the cluster: `machine`
/// becomes the Chrome-trace `pid`, `lane` the `tid` (use the worker or
/// server rank). Spans recorded afterwards carry this track.
pub fn set_thread_track(machine: u32, lane: u32, label: &str) {
    if !enabled() {
        return;
    }
    with_tls(|tls| {
        tls.machine = machine;
        tls.lane = lane;
        *tls.shared.info.lock() = ThreadInfo {
            machine,
            lane,
            label: label.to_string(),
        };
    });
}

/// Tags subsequent spans on this thread with a training iteration.
pub fn set_thread_iter(iter: u64) {
    if !enabled() {
        return;
    }
    with_tls(|tls| tls.iter = iter);
}

/// Opens a span; the span closes (and is recorded) when the returned
/// guard drops. Nesting is per-thread and must be properly bracketed,
/// which scope-based guards guarantee.
#[inline]
pub fn span(cat: SpanCat, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: false };
    }
    span_slow(cat, name, 0, FlowPoint::None)
}

/// Like [`span`], with `bytes` pre-attributed (for callers that know a
/// payload size upfront rather than routing through [`on_net_bytes`]).
#[inline]
pub fn span_with_bytes(cat: SpanCat, name: &'static str, bytes: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: false };
    }
    span_slow(cat, name, bytes, FlowPoint::None)
}

/// Like [`span`], carrying a [`FlowPoint`] so the exported span links to
/// its producer/consumer on another thread via Chrome-trace flow events.
#[inline]
pub fn span_with_flow(cat: SpanCat, name: &'static str, flow: FlowPoint) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: false };
    }
    span_slow(cat, name, 0, flow)
}

#[inline(never)]
fn span_slow(cat: SpanCat, name: &'static str, bytes: u64, flow: FlowPoint) -> SpanGuard {
    let start_ns = now_ns();
    with_tls(|tls| {
        tls.frames.push(Frame {
            cat,
            name,
            start_ns,
            bytes,
            flow,
        })
    });
    SpanGuard { open: true }
}

/// Attributes `bytes` of network traffic to the innermost open span on
/// this thread (or to the global unattributed counter if none is open).
/// Call this exactly where the traffic accountant charges inter-machine
/// bytes so tracing and accounting can be cross-checked.
#[inline]
pub fn on_net_bytes(bytes: u64) {
    if !enabled() {
        return;
    }
    with_tls(|tls| match tls.frames.last_mut() {
        Some(frame) => frame.bytes += bytes,
        None => {
            registry().unattributed.fetch_add(bytes, Ordering::Relaxed);
        }
    });
}

/// RAII guard returned by [`span`]; records the span on drop.
#[must_use = "a span closes when its guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    open: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.open {
            return;
        }
        let end_ns = now_ns();
        with_tls(|tls| {
            let Some(frame) = tls.frames.pop() else {
                return;
            };
            let record = SpanRecord {
                cat: frame.cat,
                name: frame.name,
                machine: tls.machine,
                lane: tls.lane,
                start_ns: frame.start_ns,
                dur_ns: end_ns.saturating_sub(frame.start_ns),
                iter: tls.iter,
                bytes: frame.bytes,
                flow: frame.flow,
            };
            let cap = registry().capacity.load(Ordering::Relaxed);
            let mut buf = tls.shared.buf.lock();
            if buf.records.len() < cap {
                buf.records.push(record);
            } else {
                let slot = buf.next % cap;
                buf.records[slot] = record;
                buf.next = slot + 1;
                buf.dropped += 1;
            }
        });
    }
}

/// Returns the counter registered under `name`, creating it on first
/// use. Cache the handle outside hot loops.
pub fn counter(name: &str) -> Counter {
    let mut counters = registry().counters.lock();
    let arc = counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Counter(Arc::clone(arc))
}

/// Returns the histogram registered under `name`, creating it on first
/// use. Cache the handle outside hot loops.
pub fn histogram(name: &str) -> HistogramHandle {
    let mut histograms = registry().histograms.lock();
    let arc = histograms
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(HistogramInner::new()));
    HistogramHandle(Arc::clone(arc))
}

/// Appends externally produced records (e.g. a *modelled* timeline from
/// the cluster simulator) so they export alongside measured spans.
pub fn inject(records: impl IntoIterator<Item = SpanRecord>) {
    registry().injected.lock().extend(records);
}

/// Collects everything recorded since the last drain and resets the
/// tracer's buffers, counters, and histograms. Spans still open on some
/// thread are not included (they record when their guard drops).
pub fn drain() -> TraceDump {
    let reg = registry();
    let mut records = Vec::new();
    let mut threads = Vec::new();
    let mut dropped = 0u64;
    for shared in reg.threads.lock().iter() {
        let mut buf = shared.buf.lock();
        if buf.records.is_empty() && buf.dropped == 0 {
            continue;
        }
        // Ring order: oldest first once wrapped.
        let next = buf.next;
        let mut recs = std::mem::take(&mut buf.records);
        if buf.dropped > 0 && next < recs.len() {
            recs.rotate_left(next);
        }
        dropped += buf.dropped;
        buf.next = 0;
        buf.dropped = 0;
        records.extend(recs);
        threads.push(shared.info.lock().clone());
    }
    records.extend(std::mem::take(&mut *reg.injected.lock()));
    let counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .iter()
        .map(|(k, v)| (k.clone(), v.swap(0, Ordering::Relaxed)))
        .filter(|(_, v)| *v > 0)
        .collect();
    let histograms: Vec<(String, HistogramSnapshot)> = reg
        .histograms
        .lock()
        .iter()
        .map(|(k, v)| {
            let snap = v.snapshot();
            v.reset();
            (k.clone(), snap)
        })
        .filter(|(_, s)| s.count > 0)
        .collect();
    TraceDump {
        records,
        threads,
        counters,
        histograms,
        unattributed_net_bytes: reg.unattributed.swap(0, Ordering::Relaxed),
        dropped,
    }
}

/// Discards everything recorded since the last drain.
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests serialize on this lock so
    /// they do not observe each other's records.
    pub(crate) fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }

    fn fresh() {
        configure(TraceConfig::on());
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = test_lock();
        fresh();
        disable();
        {
            let _g = span(SpanCat::Compute, "noop");
            on_net_bytes(100);
        }
        configure(TraceConfig::on());
        let dump = drain();
        assert!(dump.records.is_empty());
        assert_eq!(dump.unattributed_net_bytes, 0);
        disable();
    }

    #[test]
    fn spans_nest_and_bytes_go_to_innermost() {
        let _l = test_lock();
        fresh();
        set_thread_track(3, 7, "worker");
        set_thread_iter(5);
        {
            let _outer = span(SpanCat::Collective, "outer");
            on_net_bytes(10);
            {
                let _inner = span(SpanCat::Collective, "inner");
                on_net_bytes(32);
            }
            on_net_bytes(5);
        }
        let dump = drain();
        disable();
        assert_eq!(dump.records.len(), 2);
        // Inner closes (records) first.
        let inner = &dump.records[0];
        let outer = &dump.records[1];
        assert_eq!((inner.name, inner.bytes), ("inner", 32));
        assert_eq!((outer.name, outer.bytes), ("outer", 15));
        assert_eq!((outer.machine, outer.lane, outer.iter), (3, 7, 5));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns);
        assert_eq!(dump.threads.len(), 1);
        assert_eq!(dump.threads[0].label, "worker");
    }

    #[test]
    fn bytes_outside_spans_are_unattributed() {
        let _l = test_lock();
        fresh();
        on_net_bytes(77);
        let dump = drain();
        disable();
        assert_eq!(dump.unattributed_net_bytes, 77);
        assert_eq!(dump.total_span_bytes(), 77);
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let _l = test_lock();
        configure(TraceConfig::On {
            per_thread_capacity: 4,
        });
        reset();
        for i in 0..6u64 {
            set_thread_iter(i);
            let _g = span(SpanCat::Compute, "op");
        }
        let dump = drain();
        disable();
        assert_eq!(dump.records.len(), 4);
        assert_eq!(dump.dropped, 2);
        // Oldest-first order preserved after wrap: iters 2..=5 survive.
        let iters: Vec<u64> = dump.records.iter().map(|r| r.iter).collect();
        assert_eq!(iters, vec![2, 3, 4, 5]);
    }

    #[test]
    fn counters_and_histograms_snapshot_and_reset() {
        let _l = test_lock();
        fresh();
        let c = counter("test.bytes");
        c.add(5);
        c.add(7);
        let h = histogram("test.lat");
        h.record(0);
        h.record(3);
        h.record(1000);
        let dump = drain();
        disable();
        assert!(dump.counters.contains(&("test.bytes".to_string(), 12)));
        let (_, snap) = dump
            .histograms
            .iter()
            .find(|(n, _)| n == "test.lat")
            .unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1003);
        assert!((snap.mean() - 1003.0 / 3.0).abs() < 1e-9);
        // 1st of 3 values is the zero; 2nd falls in the 2..=3 bucket.
        assert_eq!(snap.quantile_upper_bound(0.33), 0);
        assert_eq!(snap.quantile_upper_bound(0.34), 3);
        assert!(snap.quantile_upper_bound(1.0) >= 1000);
        // Drained: a second drain sees nothing.
        configure(TraceConfig::on());
        let dump2 = drain();
        disable();
        assert!(dump2.counters.iter().all(|(n, _)| n != "test.bytes"));
    }

    #[test]
    fn inject_appends_external_records() {
        let _l = test_lock();
        fresh();
        inject([SpanRecord {
            cat: SpanCat::Sim,
            name: "sim.compute",
            machine: 0,
            lane: SIM_LANE,
            start_ns: 0,
            dur_ns: 1000,
            iter: 0,
            bytes: 0,
            flow: FlowPoint::None,
        }]);
        let dump = drain();
        disable();
        assert_eq!(dump.records.len(), 1);
        assert_eq!(dump.records[0].cat, SpanCat::Sim);
    }

    #[test]
    fn threads_report_into_one_dump() {
        let _l = test_lock();
        fresh();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                s.spawn(move || {
                    set_thread_track(t, t, &format!("t{t}"));
                    let _g = span(SpanCat::Compute, "work");
                });
            }
        });
        let dump = drain();
        disable();
        assert_eq!(dump.records.len(), 4);
        let mut machines: Vec<u32> = dump.records.iter().map(|r| r.machine).collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1, 2, 3]);
    }
}
