//! Exporters for [`TraceDump`]: Chrome-trace JSON, per-iteration
//! breakdown tables, straggler reports, and a machine-readable summary.
//!
//! All JSON is emitted by hand (the workspace carries no serde); the
//! [`validate_json`] checker lets tests assert the output is
//! well-formed JSON that `chrome://tracing` / Perfetto will load.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::tracer::{FlowPoint, SpanCat, SpanRecord, TraceDump, SIM_LANE, UNTRACKED_MACHINE};

/// Name of the per-iteration phase span the runner opens around each
/// training iteration; the straggler report keys off it.
pub const ITERATION_SPAN: &str = "iteration";

/// Phase spans that make up a machine's *un-gated* busy time. In
/// synchronous mode the `iteration` spans of all machines end together
/// at the barrier, so straggler skew must be read off the compute
/// phases (plus any injected straggler delay) instead.
pub const COMPUTE_PHASE_SPANS: [&str; 3] = ["phase.forward", "phase.backward", "phase.straggle"];

// ----------------------------------------------------------------- helpers

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Exclusive (self) duration per record: duration minus the duration of
/// direct children, reconstructed per `(machine, lane)` track from span
/// intervals. Returned vector is indexed like `records`.
pub fn self_durations(records: &[SpanRecord]) -> Vec<u64> {
    let mut selfs: Vec<u64> = records.iter().map(|r| r.dur_ns).collect();
    let mut tracks: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        tracks.entry((r.machine, r.lane)).or_default().push(i);
    }
    for idxs in tracks.values_mut() {
        // Parents sort before children: earlier start first, and at
        // equal start the longer (enclosing) span first.
        idxs.sort_by(|&a, &b| {
            records[a]
                .start_ns
                .cmp(&records[b].start_ns)
                .then(records[b].dur_ns.cmp(&records[a].dur_ns))
        });
        let end = |i: usize| records[i].start_ns + records[i].dur_ns;
        let mut stack: Vec<usize> = Vec::new();
        for &i in idxs.iter() {
            while let Some(&top) = stack.last() {
                if end(top) <= records[i].start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                selfs[top] = selfs[top].saturating_sub(records[i].dur_ns);
            }
            stack.push(i);
        }
    }
    selfs
}

// ------------------------------------------------------------ chrome trace

/// Renders the dump in the Chrome trace event format (JSON object
/// form), loadable in `chrome://tracing` and Perfetto. Each machine
/// becomes a process (`pid`), each worker/server lane a thread (`tid`);
/// modelled (simulated) spans sit on a dedicated `sim (modelled)` lane
/// of the same process.
pub fn chrome_trace(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(dump.records.len() * 128 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };

    // Metadata: process names for every machine, thread names for every
    // known lane (registered threads + any sim lanes present).
    let mut machines: Vec<u32> = dump.records.iter().map(|r| r.machine).collect();
    machines.sort_unstable();
    machines.dedup();
    for m in &machines {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{m},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"machine{m}\"}}}}"
            ),
        );
    }
    let mut named: Vec<(u32, u32, String)> = dump
        .threads
        .iter()
        .map(|t| (t.machine, t.lane, t.label.clone()))
        .collect();
    let mut sim_lanes: Vec<u32> = dump
        .records
        .iter()
        .filter(|r| r.lane == SIM_LANE)
        .map(|r| r.machine)
        .collect();
    sim_lanes.sort_unstable();
    sim_lanes.dedup();
    for m in sim_lanes {
        named.push((m, SIM_LANE, "sim (modelled)".to_string()));
    }
    named.sort();
    named.dedup();
    for (machine, lane, label) in &named {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{machine},\"tid\":{lane},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                esc(label)
            ),
        );
    }

    // Complete ("X") events, sorted for stable output.
    let mut order: Vec<usize> = (0..dump.records.len()).collect();
    order.sort_by_key(|&i| {
        let r = &dump.records[i];
        (r.machine, r.lane, r.start_ns, std::cmp::Reverse(r.dur_ns))
    });
    for i in order {
        let r = &dump.records[i];
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"{}\",\"cat\":\"{}\",\
                 \"args\":{{\"iter\":{},\"bytes\":{}}}}}",
                r.machine,
                r.lane,
                us(r.start_ns),
                us(r.dur_ns),
                esc(r.name),
                r.cat.as_str(),
                r.iter,
                r.bytes
            ),
        );
        // Flow events bind to the enclosing slice on their pid/tid at
        // `ts`; emitting them at the slice midpoint keeps the binding
        // unambiguous even with zero-length neighbours.
        let mid = us(r.start_ns + r.dur_ns / 2);
        match r.flow {
            FlowPoint::None => {}
            FlowPoint::Start(id) => push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"s\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\
                     \"id\":{id},\"name\":\"ps.flow\",\"cat\":\"flow\"}}",
                    r.machine, r.lane, mid
                ),
            ),
            FlowPoint::Finish(id) => push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\
                     \"id\":{id},\"name\":\"ps.flow\",\"cat\":\"flow\"}}",
                    r.machine, r.lane, mid
                ),
            ),
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ------------------------------------------------------------- flow checker

/// Validates flow pairing in a dump: every flow id must appear on
/// exactly one [`FlowPoint::Start`] span and exactly one
/// [`FlowPoint::Finish`] span. Returns the number of matched pairs.
pub fn check_flows(dump: &TraceDump) -> Result<usize, String> {
    let mut pairs: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for r in &dump.records {
        match r.flow {
            FlowPoint::None => {}
            FlowPoint::Start(id) => pairs.entry(id).or_default().0 += 1,
            FlowPoint::Finish(id) => pairs.entry(id).or_default().1 += 1,
        }
    }
    for (id, (starts, finishes)) in &pairs {
        if *starts != 1 || *finishes != 1 {
            return Err(format!(
                "flow {id:#x}: {starts} start(s), {finishes} finish(es); want exactly 1 of each"
            ));
        }
    }
    Ok(pairs.len())
}

// -------------------------------------------------------- breakdown table

/// Plain-text per-iteration breakdown: for each iteration, the *self*
/// time of every phase span (exclusive of nested phases, so `exchange`
/// excludes the `apply` time nested inside it), summed over all threads
/// and maxed over machines; followed by per-category totals and the top
/// compute ops by self time.
pub fn breakdown_table(dump: &TraceDump) -> String {
    let selfs = self_durations(&dump.records);
    let ms = |ns: u64| ns as f64 / 1e6;

    // (iter, phase name) -> (self total ns, per-machine self ns)
    type PhaseAcc = BTreeMap<(u64, &'static str), (u64, BTreeMap<u32, u64>)>;
    let mut phases: PhaseAcc = BTreeMap::new();
    let mut cats: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new(); // count,self,bytes
    let mut ops: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new(); // count,self
    for (i, r) in dump.records.iter().enumerate() {
        let c = cats.entry(r.cat.as_str()).or_default();
        c.0 += 1;
        c.1 += selfs[i];
        c.2 += r.bytes;
        match r.cat {
            SpanCat::Phase => {
                let e = phases.entry((r.iter, r.name)).or_default();
                e.0 += selfs[i];
                *e.1.entry(r.machine).or_default() += selfs[i];
            }
            SpanCat::Compute => {
                let e = ops.entry(r.name).or_default();
                e.0 += 1;
                e.1 += selfs[i];
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "per-iteration phase breakdown (self time)");
    let _ = writeln!(
        out,
        "{:>5}  {:<16} {:>14} {:>16}",
        "iter", "phase", "self-total(ms)", "max-machine(ms)"
    );
    for ((iter, name), (total, per_machine)) in &phases {
        let max_machine = per_machine.values().copied().max().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>5}  {:<16} {:>14.3} {:>16.3}",
            iter,
            name,
            ms(*total),
            ms(max_machine)
        );
    }

    let _ = writeln!(out, "\nby category (self time)");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>14} {:>14}",
        "category", "spans", "self-total(ms)", "bytes"
    );
    for (cat, (count, self_ns, bytes)) in &cats {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>14.3} {:>14}",
            cat,
            count,
            ms(*self_ns),
            bytes
        );
    }

    if !ops.is_empty() {
        let mut top: Vec<(&'static str, (u64, u64))> = ops.into_iter().collect();
        top.sort_by_key(|(_, (_, s))| std::cmp::Reverse(*s));
        let _ = writeln!(out, "\ntop compute ops (self time)");
        let _ = writeln!(out, "{:<20} {:>8} {:>14}", "op", "spans", "self-total(ms)");
        for (name, (count, self_ns)) in top.into_iter().take(8) {
            let _ = writeln!(out, "{:<20} {:>8} {:>14.3}", name, count, ms(self_ns));
        }
    }
    out
}

// -------------------------------------------------------- straggler report

/// Per-iteration straggler statistics derived from `iteration` phase
/// spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterStat {
    /// Iteration number.
    pub iter: u64,
    /// Slowest machine's iteration time (ns). The straggler bound.
    pub max_ns: u64,
    /// Median machine iteration time (ns).
    pub median_ns: u64,
    /// Machine id of the straggler.
    pub slowest_machine: u32,
}

/// Computes per-iteration max/median machine times from the measured
/// `iteration` phase spans (per machine, the longest worker lane's span
/// counts as that machine's time).
pub fn straggler_stats(dump: &TraceDump) -> Vec<IterStat> {
    let mut per_iter: BTreeMap<u64, BTreeMap<u32, u64>> = BTreeMap::new();
    for r in &dump.records {
        if r.cat == SpanCat::Phase && r.name == ITERATION_SPAN && r.lane != SIM_LANE {
            let m = per_iter.entry(r.iter).or_default();
            let e = m.entry(r.machine).or_default();
            *e = (*e).max(r.dur_ns);
        }
    }
    per_iter
        .into_iter()
        .map(|(iter, machines)| {
            let (&slowest_machine, &max_ns) = machines
                .iter()
                .max_by_key(|(_, &d)| d)
                .expect("non-empty by construction");
            let mut durs: Vec<u64> = machines.values().copied().collect();
            durs.sort_unstable();
            let median_ns = durs[durs.len() / 2];
            IterStat {
                iter,
                max_ns,
                median_ns,
                slowest_machine,
            }
        })
        .collect()
}

/// Computes per-iteration max/median machine *busy* (compute-phase)
/// times from the spans in [`COMPUTE_PHASE_SPANS`]. Per machine, each
/// worker lane's phase durations are summed and the busiest lane counts
/// as that machine's time. Unlike [`straggler_stats`] this is not gated
/// by the synchronization barrier, so an injected straggler shows up
/// here even when every `iteration` span ends at the same barrier.
pub fn compute_skew_stats(dump: &TraceDump) -> Vec<IterStat> {
    let mut per_iter: BTreeMap<u64, BTreeMap<u32, BTreeMap<u32, u64>>> = BTreeMap::new();
    for r in &dump.records {
        if r.cat == SpanCat::Phase
            && COMPUTE_PHASE_SPANS.contains(&r.name)
            && r.lane != SIM_LANE
            && r.machine != UNTRACKED_MACHINE
        {
            *per_iter
                .entry(r.iter)
                .or_default()
                .entry(r.machine)
                .or_default()
                .entry(r.lane)
                .or_default() += r.dur_ns;
        }
    }
    per_iter
        .into_iter()
        .map(|(iter, machines)| {
            let busy: BTreeMap<u32, u64> = machines
                .into_iter()
                .map(|(m, lanes)| (m, lanes.values().copied().max().unwrap_or(0)))
                .collect();
            let (&slowest_machine, &max_ns) = busy
                .iter()
                .max_by_key(|(_, &d)| d)
                .expect("non-empty by construction");
            let mut durs: Vec<u64> = busy.values().copied().collect();
            durs.sort_unstable();
            let median_ns = durs[durs.len() / 2];
            IterStat {
                iter,
                max_ns,
                median_ns,
                slowest_machine,
            }
        })
        .collect()
}

/// Aggregate max/median ratio over a stats vector (1.0 when empty):
/// total max divided by total median, which is more stable than the
/// mean of per-iteration ratios on noisy hosts.
pub fn aggregate_ratio(stats: &[IterStat]) -> f64 {
    let sum_max: u64 = stats.iter().map(|s| s.max_ns).sum();
    let sum_med: u64 = stats.iter().map(|s| s.median_ns).sum();
    if sum_med == 0 {
        1.0
    } else {
        sum_max as f64 / sum_med as f64
    }
}

/// Upper median of the per-iteration max/median ratios (1.0 when
/// empty). Where [`aggregate_ratio`] lets one stalled iteration
/// dominate the whole run, this discards such spikes — on time-shared
/// hosts a multi-millisecond scheduler stall in a single iteration is
/// the dominant measurement artifact, so conformance checks compare
/// against this figure.
pub fn median_ratio(stats: &[IterStat]) -> f64 {
    if stats.is_empty() {
        return 1.0;
    }
    let mut ratios: Vec<f64> = stats
        .iter()
        .map(|s| s.max_ns as f64 / s.median_ns.max(1) as f64)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios[ratios.len() / 2]
}

fn stat_table(out: &mut String, stats: &[IterStat]) {
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>8} {:>10}",
        "iter", "max(ms)", "median(ms)", "ratio", "straggler"
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut sum_max = 0u64;
    let mut sum_med = 0u64;
    for s in stats {
        sum_max += s.max_ns;
        sum_med += s.median_ns;
        let ratio = s.max_ns as f64 / s.median_ns.max(1) as f64;
        let _ = writeln!(
            out,
            "{:>5} {:>12.3} {:>12.3} {:>8.3} {:>10}",
            s.iter,
            ms(s.max_ns),
            ms(s.median_ns),
            ratio,
            format!("machine{}", s.slowest_machine)
        );
    }
    let n = stats.len() as f64;
    let _ = writeln!(
        out,
        "mean max {:.3} ms, mean median {:.3} ms, mean straggler ratio {:.3}",
        ms(sum_max) / n,
        ms(sum_med) / n,
        sum_max as f64 / sum_med.max(1) as f64
    );
}

/// Plain-text straggler report: per-iteration max vs. median machine
/// time plus an aggregate slowdown ratio. Two sections: barrier-gated
/// `iteration` spans (equalized by synchronous exchanges) and un-gated
/// compute-phase busy time (where injected stragglers are visible).
pub fn straggler_report(dump: &TraceDump) -> String {
    let stats = straggler_stats(dump);
    let mut out = String::new();
    let _ = writeln!(out, "straggler report (per-iteration machine times)");
    if stats.is_empty() {
        let _ = writeln!(out, "  no `{ITERATION_SPAN}` phase spans recorded");
        return out;
    }
    stat_table(&mut out, &stats);
    let compute = compute_skew_stats(dump);
    if !compute.is_empty() {
        let _ = writeln!(
            out,
            "\ncompute-skew report (un-gated per-machine busy time)"
        );
        stat_table(&mut out, &compute);
    }
    if let Some((_, h)) = dump
        .histograms
        .iter()
        .find(|(n, _)| n == "ps.wait_ns")
        .filter(|(_, h)| h.count > 0)
    {
        let ms = |ns: f64| ns / 1e6;
        let _ = writeln!(
            out,
            "\nps wait (server idle gap per request, power-of-two buckets)"
        );
        let _ = writeln!(
            out,
            "  n={}, mean {:.3} ms, p50 <= {:.3} ms, p99 <= {:.3} ms",
            h.count,
            ms(h.mean()),
            ms(h.quantile_upper_bound(0.5) as f64),
            ms(h.quantile_upper_bound(0.99) as f64),
        );
    }
    out
}

// ------------------------------------------------------------ summary json

/// Machine-readable summary of the dump (span totals per category,
/// counters, histogram digests, straggler stats). Valid JSON.
pub fn summary_json(dump: &TraceDump) -> String {
    let selfs = self_durations(&dump.records);
    let mut out = String::new();
    out.push_str("{\"schema\":\"parallax-trace-summary-v1\"");

    out.push_str(",\"spans\":{");
    let mut first = true;
    for cat in SpanCat::all() {
        let (mut count, mut total_ns, mut self_ns, mut bytes) = (0u64, 0u64, 0u64, 0u64);
        for (i, r) in dump.records.iter().enumerate() {
            if r.cat == cat {
                count += 1;
                total_ns += r.dur_ns;
                self_ns += selfs[i];
                bytes += r.bytes;
            }
        }
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{count},\"total_ns\":{total_ns},\
             \"self_ns\":{self_ns},\"bytes\":{bytes}}}",
            cat.as_str()
        );
    }
    out.push('}');

    let _ = write!(
        out,
        ",\"total_span_bytes\":{},\"unattributed_net_bytes\":{},\"dropped\":{}",
        dump.total_span_bytes(),
        dump.unattributed_net_bytes,
        dump.dropped
    );

    out.push_str(",\"counters\":{");
    for (i, (name, v)) in dump.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", esc(name));
    }
    out.push('}');

    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in dump.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\
             \"p50_ub\":{},\"p99_ub\":{}}}",
            esc(name),
            h.count,
            h.sum,
            h.mean(),
            h.quantile_upper_bound(0.5),
            h.quantile_upper_bound(0.99)
        );
    }
    out.push('}');

    out.push_str(",\"stragglers\":[");
    for (i, s) in straggler_stats(dump).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"iter\":{},\"max_ns\":{},\"median_ns\":{},\"slowest_machine\":{}}}",
            s.iter, s.max_ns, s.median_ns, s.slowest_machine
        );
    }
    out.push_str("]}");
    out
}

// ------------------------------------------------------------ json checker

/// Minimal recursive-descent JSON well-formedness check, so tests can
/// assert exporter output parses without pulling in a JSON dependency.
/// Accepts exactly the RFC 8259 grammar (objects, arrays, strings,
/// numbers, literals); rejects trailing garbage.
pub fn validate_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl<'a> P<'a> {
        fn err(&self, msg: &str) -> String {
            format!("{msg} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", c as char)))
            }
        }
        fn value(&mut self, depth: usize) -> Result<(), String> {
            if depth > 128 {
                return Err(self.err("nesting too deep"));
            }
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(depth),
                Some(b'[') => self.array(depth),
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }
        fn lit(&mut self, word: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected '{word}'")))
            }
        }
        fn object(&mut self, depth: usize) -> Result<(), String> {
            self.eat(b'{')?;
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':')?;
                self.value(depth + 1)?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        fn array(&mut self, depth: usize) -> Result<(), String> {
            self.eat(b'[')?;
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value(depth + 1)?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        self.i += 1;
                        match e {
                            b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                            b'u' => {
                                for _ in 0..4 {
                                    let h =
                                        self.peek().ok_or_else(|| self.err("bad \\u escape"))?;
                                    if !h.is_ascii_hexdigit() {
                                        return Err(self.err("bad \\u escape"));
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                    }
                    0x00..=0x1f => return Err(self.err("raw control char in string")),
                    _ => {}
                }
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<(), String> {
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let digits = |p: &mut Self| -> Result<(), String> {
                let start = p.i;
                while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                    p.i += 1;
                }
                if p.i == start {
                    Err(p.err("expected digits"))
                } else {
                    Ok(())
                }
            };
            if self.peek() == Some(b'0') {
                self.i += 1;
            } else {
                digits(self)?;
            }
            if self.peek() == Some(b'.') {
                self.i += 1;
                digits(self)?;
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.i += 1;
                }
                digits(self)?;
            }
            Ok(())
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{ThreadInfo, UNTRACKED_MACHINE};

    #[allow(clippy::too_many_arguments)]
    fn rec(
        cat: SpanCat,
        name: &'static str,
        machine: u32,
        lane: u32,
        start: u64,
        dur: u64,
        iter: u64,
        bytes: u64,
    ) -> SpanRecord {
        SpanRecord {
            cat,
            name,
            machine,
            lane,
            start_ns: start,
            dur_ns: dur,
            iter,
            bytes,
            flow: FlowPoint::None,
        }
    }

    fn sample_dump() -> TraceDump {
        TraceDump {
            records: vec![
                rec(SpanCat::Phase, "iteration", 0, 1, 0, 1000, 0, 0),
                rec(SpanCat::Phase, "phase.forward", 0, 1, 0, 300, 0, 0),
                rec(SpanCat::Compute, "MatMul", 0, 1, 10, 200, 0, 0),
                rec(SpanCat::Phase, "phase.exchange", 0, 1, 600, 400, 0, 0),
                rec(SpanCat::Phase, "phase.apply", 0, 1, 800, 100, 0, 0),
                rec(SpanCat::Collective, "allreduce", 0, 1, 610, 150, 0, 512),
                rec(SpanCat::Phase, "iteration", 1, 1, 0, 1600, 0, 0),
                rec(SpanCat::Sim, "sim.compute", 0, SIM_LANE, 0, 900, 0, 0),
            ],
            threads: vec![ThreadInfo {
                machine: 0,
                lane: 1,
                label: "worker0".to_string(),
            }],
            counters: vec![("c\"x".to_string(), 3)],
            histograms: vec![],
            unattributed_net_bytes: 4,
            dropped: 0,
        }
    }

    #[test]
    fn self_durations_subtract_direct_children() {
        let d = sample_dump();
        let selfs = self_durations(&d.records);
        // iteration(1000) minus forward(300)+exchange(400) = 300.
        assert_eq!(selfs[0], 300);
        // forward(300) minus MatMul(200) = 100.
        assert_eq!(selfs[1], 100);
        // exchange(400) minus apply(100)+allreduce(150) = 150.
        assert_eq!(selfs[3], 150);
        // Leaves keep their full duration.
        assert_eq!(selfs[2], 200);
        assert_eq!(selfs[4], 100);
        // Other tracks unaffected.
        assert_eq!(selfs[6], 1600);
        assert_eq!(selfs[7], 900);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_rows() {
        let json = chrome_trace(&sample_dump());
        validate_json(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"machine0\""));
        assert!(json.contains("\"name\":\"machine1\""));
        assert!(json.contains("\"name\":\"worker0\""));
        assert!(json.contains("sim (modelled)"));
        assert!(json.contains("\"cat\":\"collective\""));
        assert!(json.contains("\"bytes\":512"));
    }

    #[test]
    fn summary_json_is_valid_and_cross_checks_bytes() {
        let d = sample_dump();
        let json = summary_json(&d);
        validate_json(&json).expect("summary must be valid JSON");
        assert!(json.contains("\"total_span_bytes\":516"));
        assert!(json.contains("\"c\\\"x\":3"));
    }

    #[test]
    fn breakdown_table_lists_phases() {
        let table = breakdown_table(&sample_dump());
        assert!(table.contains("phase.forward"));
        assert!(table.contains("phase.exchange"));
        assert!(table.contains("MatMul"));
    }

    #[test]
    fn straggler_stats_pick_slowest_machine() {
        let stats = straggler_stats(&sample_dump());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].max_ns, 1600);
        assert_eq!(stats[0].slowest_machine, 1);
        assert_eq!(stats[0].median_ns, 1600); // median of [1000, 1600] -> upper
        let report = straggler_report(&sample_dump());
        assert!(report.contains("machine1"));
    }

    #[test]
    fn straggler_ignores_untracked_and_sim() {
        let mut d = sample_dump();
        d.records.push(rec(
            SpanCat::Phase,
            "iteration",
            UNTRACKED_MACHINE,
            SIM_LANE,
            0,
            9999,
            0,
            0,
        ));
        let stats = straggler_stats(&d);
        assert_eq!(stats[0].max_ns, 1600);
    }

    #[test]
    fn compute_skew_sees_straggler_behind_barrier() {
        // Both machines' `iteration` spans end at the barrier (equal
        // durations), but machine 1's backward phase is 3x longer.
        let mut d = TraceDump::default();
        for m in 0..2u32 {
            d.records
                .push(rec(SpanCat::Phase, "iteration", m, 0, 0, 1000, 0, 0));
            d.records
                .push(rec(SpanCat::Phase, "phase.forward", m, 0, 0, 100, 0, 0));
            let bwd = if m == 1 { 600 } else { 200 };
            d.records
                .push(rec(SpanCat::Phase, "phase.backward", m, 0, 100, bwd, 0, 0));
        }
        let gated = straggler_stats(&d);
        assert_eq!(gated[0].max_ns, 1000);
        assert_eq!(gated[0].median_ns, 1000);
        let skew = compute_skew_stats(&d);
        assert_eq!(skew.len(), 1);
        assert_eq!(skew[0].max_ns, 700);
        assert_eq!(skew[0].median_ns, 700); // upper median of [300, 700]
        assert_eq!(skew[0].slowest_machine, 1);
        let report = straggler_report(&d);
        assert!(report.contains("compute-skew report"));
    }

    #[test]
    fn straggler_report_exports_ps_wait_p99() {
        let mut d = sample_dump();
        assert!(!straggler_report(&d).contains("ps wait"));
        // 9 zero-gap serves and one ~1ms gap: the p99 bound lands at the
        // top of the 2^20 ns bucket (1.049 ms).
        let mut buckets = vec![0u64; 21];
        buckets[0] = 9;
        buckets[20] = 1;
        d.histograms.push((
            "ps.wait_ns".to_string(),
            crate::HistogramSnapshot {
                count: 10,
                sum: 1_000_000,
                buckets,
            },
        ));
        let report = straggler_report(&d);
        assert!(report.contains("ps wait"), "{report}");
        assert!(report.contains("p99 <= 1.049 ms"), "{report}");
    }

    #[test]
    fn compute_skew_takes_busiest_lane_per_machine() {
        let mut d = TraceDump::default();
        // Machine 0: two parallel workers, lane 1 busier.
        d.records
            .push(rec(SpanCat::Phase, "phase.forward", 0, 0, 0, 100, 0, 0));
        d.records
            .push(rec(SpanCat::Phase, "phase.forward", 0, 1, 0, 250, 0, 0));
        d.records
            .push(rec(SpanCat::Phase, "phase.straggle", 0, 1, 250, 50, 0, 0));
        d.records
            .push(rec(SpanCat::Phase, "phase.forward", 1, 0, 0, 150, 0, 0));
        let skew = compute_skew_stats(&d);
        assert_eq!(skew[0].max_ns, 300);
        assert_eq!(skew[0].slowest_machine, 0);
    }

    #[test]
    fn flows_pair_and_export() {
        let mut d = sample_dump();
        let mut start = rec(SpanCat::Ps, "ps.push_req", 0, 1, 100, 50, 0, 0);
        start.flow = FlowPoint::Start(0xabc);
        let mut finish = rec(SpanCat::Ps, "ps.serve.push_dense", 1, 9, 140, 30, 0, 0);
        finish.flow = FlowPoint::Finish(0xabc);
        d.records.push(start);
        d.records.push(finish);
        assert_eq!(check_flows(&d), Ok(1));
        let json = chrome_trace(&d);
        validate_json(&json).expect("chrome trace with flows must be valid JSON");
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert!(json.contains(&format!("\"id\":{}", 0xabc)));
    }

    #[test]
    fn check_flows_rejects_unpaired() {
        let mut d = TraceDump::default();
        let mut orphan = rec(SpanCat::Ps, "ps.push_req", 0, 1, 0, 10, 0, 0);
        orphan.flow = FlowPoint::Start(7);
        d.records.push(orphan.clone());
        assert!(check_flows(&d).is_err());
        // A duplicate start is also rejected.
        let mut finish = orphan.clone();
        finish.flow = FlowPoint::Finish(7);
        d.records.push(finish);
        assert_eq!(check_flows(&d), Ok(1));
        d.records.push(orphan);
        assert!(check_flows(&d).is_err());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,true,null,\"s\\n\"]}").unwrap();
        validate_json(" 42 ").unwrap();
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("01").is_err());
    }
}
