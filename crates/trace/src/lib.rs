#![warn(missing_docs)]

//! Observability substrate: spans, counters, histograms, and timeline
//! exporters for the Parallax runtime.
//!
//! Every hot layer of the workspace (graph execution, collectives, the
//! Parameter Server, the iteration runner, and the cluster simulator)
//! records into one process-global tracer. The design goals, in order:
//!
//! 1. **Zero overhead when disabled.** [`span`] and [`on_net_bytes`]
//!    compile down to a single relaxed atomic load on the
//!    [`TraceConfig::Off`] path — no allocation, no lock, no time
//!    measurement. The `repro trace-overhead` micro-bench measures this
//!    against the kernel path.
//! 2. **Lock-light when enabled.** Each thread records spans into its
//!    own ring buffer; the only lock taken on the hot path is that
//!    buffer's own (uncontended) mutex. The global registry mutex is
//!    touched once per thread (registration) and at export time.
//! 3. **Cross-checkable byte accounting.** [`on_net_bytes`] is called
//!    from the transport at exactly the site where `TrafficStats`
//!    charges inter-machine bytes, and attributes them to the innermost
//!    open span of the sending thread. Summing span bytes (plus the
//!    unattributed spill counter) therefore reproduces
//!    `TrafficSnapshot::total_network_bytes()` exactly — a property the
//!    integration suite asserts.
//!
//! Exporters live in [`export`]: Chrome `chrome://tracing`/Perfetto
//! JSON (one row per simulated machine/worker), a per-iteration
//! self-time breakdown table, a straggler report, and a
//! machine-readable summary.

pub mod export;
mod tracer;

pub use tracer::{
    configure, counter, disable, drain, enabled, histogram, inject, now_ns, on_net_bytes, reset,
    set_thread_iter, set_thread_track, span, span_with_bytes, span_with_flow, Counter, FlowPoint,
    HistogramHandle, HistogramSnapshot, SpanCat, SpanGuard, SpanRecord, ThreadInfo, TraceConfig,
    TraceDump, SIM_LANE, UNTRACKED_MACHINE,
};
