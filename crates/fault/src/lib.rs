#![warn(missing_docs)]

//! Deterministic fault injection for the Parallax reproduction.
//!
//! Real clusters lose workers, drop packets, and stall; Parallax (like
//! TensorFlow underneath it) answers with checkpoint/restore. To test
//! that machinery reproducibly, this crate describes faults as *data*: a
//! [`FaultPlan`] is a list of one-shot [`FaultAction`]s — kill a rank at
//! step `k`, drop/delay/duplicate the `n`th message on a link, stall a
//! rank — optionally generated from a seed, and a [`FaultInjector`]
//! evaluates the plan at runtime. The injector is threaded into
//! `comm::transport` (message faults) and the `core` runner/`ps` server
//! loops (process faults), so the same plan replayed against the same
//! config produces byte-identical fault timing in terms of protocol
//! events.
//!
//! Every action fires at most once. That is what makes recovery testable:
//! after the runner restores from a checkpoint and replays, the fault
//! does not re-fire, so a recoverable plan always converges. The injector
//! also keeps an event log ([`FaultInjector::events`]) so tests can
//! assert exactly which faults actually fired.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// One fault to inject. Message indices (`nth`) are 0-based and count
/// logical sends on the `(from, to)` link in program order; a duplicated
/// message's extra copy does not advance the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Worker thread `rank` exits with an error at the start of step
    /// `at_step` (before sending anything for that step).
    KillWorker {
        /// Global transport rank of the worker.
        rank: usize,
        /// 0-based training step at which the worker dies.
        at_step: u64,
    },
    /// The PS server thread on `machine` exits with an error at the
    /// start of step `at_step`.
    KillServer {
        /// Machine index hosting the server shard.
        machine: usize,
        /// 0-based training step at which the server dies.
        at_step: u64,
    },
    /// The `nth` message from `from` to `to` is transmitted (and charged
    /// to both byte ledgers) but never enqueued at the receiver.
    DropMessage {
        /// Source rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// 0-based message index on the link.
        nth: u64,
    },
    /// The `nth` message from `from` to `to` is held for `millis`
    /// before delivery (sender-side sleep; ordering on the link is
    /// preserved).
    DelayMessage {
        /// Source rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// 0-based message index on the link.
        nth: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
    /// The `nth` message from `from` to `to` is delivered twice; both
    /// copies are charged to both byte ledgers.
    DuplicateMessage {
        /// Source rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// 0-based message index on the link.
        nth: u64,
    },
    /// Rank `rank` sleeps `millis` at the start of step `at_step`, then
    /// continues normally (a transient straggler, not a failure).
    Stall {
        /// Global transport rank.
        rank: usize,
        /// 0-based training step at which the stall occurs.
        at_step: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::KillWorker { rank, at_step } => {
                write!(f, "kill-worker rank {rank} at step {at_step}")
            }
            FaultAction::KillServer { machine, at_step } => {
                write!(f, "kill-server machine {machine} at step {at_step}")
            }
            FaultAction::DropMessage { from, to, nth } => {
                write!(f, "drop message #{nth} on link {from}->{to}")
            }
            FaultAction::DelayMessage {
                from,
                to,
                nth,
                millis,
            } => write!(f, "delay message #{nth} on link {from}->{to} by {millis}ms"),
            FaultAction::DuplicateMessage { from, to, nth } => {
                write!(f, "duplicate message #{nth} on link {from}->{to}")
            }
            FaultAction::Stall {
                rank,
                at_step,
                millis,
            } => write!(f, "stall rank {rank} at step {at_step} for {millis}ms"),
        }
    }
}

/// A fault spec token that did not parse ([`FaultAction::from_spec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// The offending token.
    pub token: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable fault spec token {:?}", self.token)
    }
}

impl std::error::Error for ParseSpecError {}

impl FaultAction {
    /// Compact machine-readable encoding (`kind:field:field...`), the
    /// form fault plans travel in through cluster spec files and the
    /// fired-event log. Round-trips through [`FaultAction::from_spec`].
    pub fn to_spec(&self) -> String {
        match *self {
            FaultAction::KillWorker { rank, at_step } => format!("kill-worker:{rank}:{at_step}"),
            FaultAction::KillServer { machine, at_step } => {
                format!("kill-server:{machine}:{at_step}")
            }
            FaultAction::DropMessage { from, to, nth } => format!("drop:{from}:{to}:{nth}"),
            FaultAction::DelayMessage {
                from,
                to,
                nth,
                millis,
            } => format!("delay:{from}:{to}:{nth}:{millis}"),
            FaultAction::DuplicateMessage { from, to, nth } => format!("dup:{from}:{to}:{nth}"),
            FaultAction::Stall {
                rank,
                at_step,
                millis,
            } => format!("stall:{rank}:{at_step}:{millis}"),
        }
    }

    /// Parses one [`FaultAction::to_spec`] token.
    pub fn from_spec(token: &str) -> Result<FaultAction, ParseSpecError> {
        let err = || ParseSpecError {
            token: token.to_string(),
        };
        let mut parts = token.split(':');
        let kind = parts.next().ok_or_else(err)?;
        let mut nums: Vec<u64> = Vec::new();
        for p in parts {
            nums.push(p.parse().map_err(|_| err())?);
        }
        let action = match (kind, nums.as_slice()) {
            ("kill-worker", &[rank, at_step]) => FaultAction::KillWorker {
                rank: rank as usize,
                at_step,
            },
            ("kill-server", &[machine, at_step]) => FaultAction::KillServer {
                machine: machine as usize,
                at_step,
            },
            ("drop", &[from, to, nth]) => FaultAction::DropMessage {
                from: from as usize,
                to: to as usize,
                nth,
            },
            ("delay", &[from, to, nth, millis]) => FaultAction::DelayMessage {
                from: from as usize,
                to: to as usize,
                nth,
                millis,
            },
            ("dup", &[from, to, nth]) => FaultAction::DuplicateMessage {
                from: from as usize,
                to: to as usize,
                nth,
            },
            ("stall", &[rank, at_step, millis]) => FaultAction::Stall {
                rank: rank as usize,
                at_step,
                millis,
            },
            _ => return Err(err()),
        };
        Ok(action)
    }
}

/// A deterministic list of one-shot faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan's actions, in insertion order.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Adds an arbitrary action.
    pub fn with(mut self, action: FaultAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Kills worker `rank` at step `at_step`.
    pub fn kill_worker(self, rank: usize, at_step: u64) -> Self {
        self.with(FaultAction::KillWorker { rank, at_step })
    }

    /// Kills the PS server on `machine` at step `at_step`.
    pub fn kill_server(self, machine: usize, at_step: u64) -> Self {
        self.with(FaultAction::KillServer { machine, at_step })
    }

    /// Drops the `nth` message on the `from -> to` link.
    pub fn drop_message(self, from: usize, to: usize, nth: u64) -> Self {
        self.with(FaultAction::DropMessage { from, to, nth })
    }

    /// Delays the `nth` message on the `from -> to` link by `millis`.
    pub fn delay_message(self, from: usize, to: usize, nth: u64, millis: u64) -> Self {
        self.with(FaultAction::DelayMessage {
            from,
            to,
            nth,
            millis,
        })
    }

    /// Duplicates the `nth` message on the `from -> to` link.
    pub fn duplicate_message(self, from: usize, to: usize, nth: u64) -> Self {
        self.with(FaultAction::DuplicateMessage { from, to, nth })
    }

    /// Stalls `rank` for `millis` at step `at_step`.
    pub fn stall(self, rank: usize, at_step: u64, millis: u64) -> Self {
        self.with(FaultAction::Stall {
            rank,
            at_step,
            millis,
        })
    }

    /// Encodes the whole plan as semicolon-joined spec tokens
    /// ([`FaultAction::to_spec`]); the form a plan travels in through a
    /// `CLUSTER.json` field. An empty plan encodes as the empty string.
    pub fn to_spec(&self) -> String {
        self.actions
            .iter()
            .map(FaultAction::to_spec)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a [`FaultPlan::to_spec`] string. Tokens may be separated
    /// by semicolons or newlines (the fired-event log is one token per
    /// line); whitespace around tokens and empty tokens are tolerated,
    /// so `""` parses as the empty plan.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, ParseSpecError> {
        let mut plan = FaultPlan::new();
        for token in spec.split([';', '\n']) {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            plan.actions.push(FaultAction::from_spec(token)?);
        }
        Ok(plan)
    }

    /// Generates a reproducible plan from a seed: `count` message-level
    /// faults (drop/delay/duplicate) over `ranks` transport ranks and
    /// message indices below `max_nth`. The same seed always yields the
    /// same plan (splitmix64 stream), which is what makes a chaos sweep
    /// replayable from its seed alone.
    pub fn random(seed: u64, ranks: usize, max_nth: u64, count: usize) -> Self {
        let mut state = seed;
        let ranks = ranks.max(2) as u64;
        let max_nth = max_nth.max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let from = (splitmix64(&mut state) % ranks) as usize;
            let mut to = (splitmix64(&mut state) % ranks) as usize;
            if to == from {
                to = (to + 1) % ranks as usize;
            }
            let nth = splitmix64(&mut state) % max_nth;
            plan = match splitmix64(&mut state) % 3 {
                0 => plan.drop_message(from, to, nth),
                1 => plan.delay_message(from, to, nth, 1 + splitmix64(&mut state) % 20),
                _ => plan.duplicate_message(from, to, nth),
            };
        }
        plan
    }
}

/// What the transport should do with one outbound message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Charge the ledgers but do not enqueue.
    Drop,
    /// Sleep this long, then deliver.
    Delay(Duration),
    /// Enqueue (and charge) the message twice.
    Duplicate,
}

#[derive(Default)]
struct InjectorState {
    /// Pending one-shot actions; matched actions are removed.
    pending: Vec<FaultAction>,
    /// Logical-send counters per (from, to) link.
    link_counts: HashMap<(usize, usize), u64>,
    /// Actions that actually fired, in firing order.
    fired: Vec<FaultAction>,
    /// Optional write-ahead log: every fire appends one spec line here
    /// *before* the verdict is returned, so the record survives even if
    /// the process is killed immediately after (the multi-process
    /// launcher SIGKILLs surviving ranks once any rank fails).
    log_path: Option<PathBuf>,
}

/// Runtime evaluator for a [`FaultPlan`]. Shared (behind an `Arc`)
/// between the transport layer and the runner/server loops; all methods
/// take `&self`.
#[derive(Default)]
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Mutex::new(InjectorState {
                pending: plan.actions,
                ..InjectorState::default()
            }),
        }
    }

    /// Builds an injector whose fires are write-ahead logged to
    /// `log_path` (one [`FaultAction::to_spec`] line per fire, appended
    /// and flushed before the verdict returns) and whose pending set is
    /// pre-cleared of every action already recorded there.
    ///
    /// This is how one-shot semantics survive process respawn: a
    /// restarted rank rebuilds the injector from the same plan and log,
    /// and any fault that fired in an earlier generation is treated as
    /// spent instead of firing again — exactly the in-process guarantee
    /// that a recovered run replaying the faulted step converges.
    pub fn new_logged(plan: FaultPlan, log_path: &Path) -> Result<Self, ParseSpecError> {
        let inj = Self::new(plan);
        if let Ok(text) = std::fs::read_to_string(log_path) {
            let already = FaultPlan::parse_spec(&text)?;
            inj.preclear(already.actions());
        }
        inj.state.lock().unwrap_or_else(|e| e.into_inner()).log_path = Some(log_path.to_path_buf());
        Ok(inj)
    }

    /// Removes each listed action from the pending set (first match
    /// wins) without logging it as fired by *this* injector. Used when
    /// the action fired in an earlier process generation.
    pub fn preclear(&self, actions: &[FaultAction]) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for action in actions {
            if let Some(idx) = state.pending.iter().position(|a| a == action) {
                state.pending.remove(idx);
            }
        }
    }

    /// Appends `action` to the fired log (write-ahead: called before the
    /// verdict is acted on). Log-write failures are swallowed — fault
    /// injection must never make the transport itself fail.
    fn record_fire(state: &mut InjectorState, action: FaultAction) {
        if let Some(path) = &state.log_path {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", action.to_spec());
                let _ = f.flush();
            }
        }
        state.fired.push(action);
    }

    /// Called by the transport once per logical send on `from -> to`.
    /// Advances the link counter and consumes at most one matching
    /// message fault.
    pub fn on_message(&self, from: usize, to: usize) -> Verdict {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let count = state.link_counts.entry((from, to)).or_insert(0);
        let nth_now = *count;
        *count += 1;
        let hit = state.pending.iter().position(|a| match *a {
            FaultAction::DropMessage {
                from: f,
                to: t,
                nth,
            }
            | FaultAction::DelayMessage {
                from: f,
                to: t,
                nth,
                ..
            }
            | FaultAction::DuplicateMessage {
                from: f,
                to: t,
                nth,
            } => f == from && t == to && nth == nth_now,
            _ => false,
        });
        let Some(idx) = hit else {
            return Verdict::Deliver;
        };
        let action = state.pending.remove(idx);
        Self::record_fire(&mut state, action);
        match action {
            FaultAction::DropMessage { .. } => Verdict::Drop,
            FaultAction::DelayMessage { millis, .. } => {
                Verdict::Delay(Duration::from_millis(millis))
            }
            FaultAction::DuplicateMessage { .. } => Verdict::Duplicate,
            _ => Verdict::Deliver,
        }
    }

    /// True when worker `rank` must die at `step` (consumes the action).
    pub fn kill_worker_at(&self, rank: usize, step: u64) -> bool {
        self.consume(|a| {
            matches!(a, FaultAction::KillWorker { rank: r, at_step } if r == rank && at_step == step)
        })
        .is_some()
    }

    /// True when the server on `machine` must die at `step` (consumes
    /// the action).
    pub fn kill_server_at(&self, machine: usize, step: u64) -> bool {
        self.consume(|a| {
            matches!(a, FaultAction::KillServer { machine: m, at_step }
                     if m == machine && at_step == step)
        })
        .is_some()
    }

    /// Stall duration for `rank` at `step`, if any (consumes the
    /// action).
    pub fn stall_for(&self, rank: usize, step: u64) -> Option<Duration> {
        match self.consume(|a| {
            matches!(a, FaultAction::Stall { rank: r, at_step, .. } if r == rank && at_step == step)
        }) {
            Some(FaultAction::Stall { millis, .. }) => Some(Duration::from_millis(millis)),
            _ => None,
        }
    }

    fn consume(&self, matcher: impl Fn(FaultAction) -> bool) -> Option<FaultAction> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let idx = state.pending.iter().position(|&a| matcher(a))?;
        let action = state.pending.remove(idx);
        Self::record_fire(&mut state, action);
        Some(action)
    }

    /// Actions that actually fired, in firing order.
    pub fn events(&self) -> Vec<FaultAction> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .fired
            .clone()
    }

    /// Actions still waiting to fire.
    pub fn remaining(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .len()
    }
}

/// splitmix64: tiny, high-quality, dependency-free PRNG used for
/// seed-reproducible random plans.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let inj = FaultInjector::new(FaultPlan::new());
        for i in 0..10 {
            assert_eq!(inj.on_message(0, 1), Verdict::Deliver, "message {i}");
        }
        assert!(!inj.kill_worker_at(0, 0));
        assert!(inj.stall_for(0, 0).is_none());
        assert!(inj.events().is_empty());
    }

    #[test]
    fn message_faults_match_nth_on_exact_link_once() {
        let plan = FaultPlan::new()
            .drop_message(0, 1, 2)
            .duplicate_message(1, 0, 0)
            .delay_message(0, 1, 0, 5);
        let inj = FaultInjector::new(plan);
        // Link 0->1: message 0 delayed, 1 delivered, 2 dropped, 3 delivered.
        assert_eq!(
            inj.on_message(0, 1),
            Verdict::Delay(Duration::from_millis(5))
        );
        assert_eq!(inj.on_message(0, 1), Verdict::Deliver);
        assert_eq!(inj.on_message(0, 1), Verdict::Drop);
        assert_eq!(inj.on_message(0, 1), Verdict::Deliver);
        // Reverse link has its own counter.
        assert_eq!(inj.on_message(1, 0), Verdict::Duplicate);
        assert_eq!(inj.on_message(1, 0), Verdict::Deliver);
        assert_eq!(inj.remaining(), 0);
        assert_eq!(inj.events().len(), 3);
    }

    #[test]
    fn process_faults_are_one_shot() {
        let plan = FaultPlan::new()
            .kill_worker(2, 3)
            .kill_server(1, 4)
            .stall(0, 1, 7);
        let inj = FaultInjector::new(plan);
        assert!(!inj.kill_worker_at(2, 2));
        assert!(inj.kill_worker_at(2, 3));
        // One-shot: a recovered run replaying step 3 does not die again.
        assert!(!inj.kill_worker_at(2, 3));
        assert!(inj.kill_server_at(1, 4));
        assert!(!inj.kill_server_at(1, 4));
        assert_eq!(inj.stall_for(0, 1), Some(Duration::from_millis(7)));
        assert_eq!(inj.stall_for(0, 1), None);
        assert_eq!(inj.events().len(), 3);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 8, 100, 5);
        let b = FaultPlan::random(42, 8, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.actions().len(), 5);
        let c = FaultPlan::random(43, 8, 100, 5);
        assert_ne!(a, c, "different seeds should differ");
        for action in a.actions() {
            match *action {
                FaultAction::DropMessage { from, to, .. }
                | FaultAction::DelayMessage { from, to, .. }
                | FaultAction::DuplicateMessage { from, to, .. } => {
                    assert!(from < 8 && to < 8 && from != to);
                }
                other => panic!("random plans are message-level only, got {other}"),
            }
        }
    }

    #[test]
    fn spec_roundtrips_every_action_kind() {
        let plan = FaultPlan::new()
            .kill_worker(2, 3)
            .kill_server(1, 4)
            .drop_message(0, 5, 0)
            .delay_message(0, 1, 2, 5)
            .duplicate_message(1, 0, 0)
            .stall(0, 1, 7);
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::parse_spec(&spec).unwrap(), plan);
        assert_eq!(FaultPlan::parse_spec("").unwrap(), FaultPlan::new());
        assert_eq!(
            FaultPlan::parse_spec(" drop:0:1:2 ; ").unwrap(),
            FaultPlan::new().drop_message(0, 1, 2)
        );
        assert!(FaultAction::from_spec("drop:0:1").is_err());
        assert!(FaultAction::from_spec("explode:0:1:2").is_err());
        assert!(FaultAction::from_spec("drop:0:1:x").is_err());
    }

    #[test]
    fn logged_injector_precleads_prior_generation_fires() {
        let dir = std::env::temp_dir();
        let log = dir.join(format!("parallax_fault_log_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&log);
        let plan = FaultPlan::new().drop_message(0, 1, 0).kill_worker(1, 2);
        // Generation 1: the drop fires and is write-ahead logged.
        let gen1 = FaultInjector::new_logged(plan.clone(), &log).unwrap();
        assert_eq!(gen1.on_message(0, 1), Verdict::Drop);
        assert!(gen1.kill_worker_at(1, 2));
        // Generation 2 (same plan, same log): both already spent.
        let gen2 = FaultInjector::new_logged(plan.clone(), &log).unwrap();
        assert_eq!(gen2.on_message(0, 1), Verdict::Deliver);
        assert!(!gen2.kill_worker_at(1, 2));
        assert_eq!(gen2.remaining(), 0);
        // Its own event log stays empty: nothing fired *this* generation.
        assert!(gen2.events().is_empty());
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn preclear_consumes_first_match_only() {
        // Two identical drops: preclearing one leaves the other armed.
        let plan = FaultPlan::new()
            .drop_message(0, 1, 0)
            .with(FaultAction::DropMessage {
                from: 0,
                to: 1,
                nth: 0,
            });
        let inj = FaultInjector::new(plan);
        inj.preclear(&[FaultAction::DropMessage {
            from: 0,
            to: 1,
            nth: 0,
        }]);
        assert_eq!(inj.remaining(), 1);
        assert_eq!(inj.on_message(0, 1), Verdict::Drop);
    }

    #[test]
    fn display_is_human_readable() {
        let s = FaultAction::DelayMessage {
            from: 1,
            to: 2,
            nth: 3,
            millis: 9,
        }
        .to_string();
        assert_eq!(s, "delay message #3 on link 1->2 by 9ms");
    }
}
