//! The LM model: LSTM language model with sampled softmax.
//!
//! Mirrors the paper's LM (Jozefowicz et al., "Exploring the Limits of
//! Language Modeling"): a word embedding, an LSTM with a projected
//! hidden state, and a softmax over an output embedding. Both
//! embeddings are accessed through `Gather` — the input by the batch's
//! token ids, the output by a sampled candidate set — so both are
//! *sparse* variables, while the LSTM kernel and projection are dense;
//! exactly the sparse-model profile of Table 1.

use parallax_core::runner::shard_range;
use parallax_dataflow::builder::{linear, lstm_step_fused, lstm_weights, Act};
use parallax_dataflow::graph::{Op, PhKind};
use parallax_dataflow::{Feed, Graph, VarId};
use parallax_tensor::{DetRng, Tensor};

use crate::data::ZipfCorpus;
use crate::BuiltModel;

/// LM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub emb: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Unrolled sequence length.
    pub length: usize,
    /// Sequences per batch.
    pub batch: usize,
    /// Sampled-softmax candidate count.
    pub candidates: usize,
    /// Stacked LSTM layers (the paper's LM uses one 2048-unit layer;
    /// deeper stacks are supported for experimentation).
    pub layers: usize,
}

impl LmConfig {
    /// An executed-scale configuration that trains in milliseconds.
    pub fn tiny() -> Self {
        LmConfig {
            vocab: 60,
            emb: 8,
            hidden: 10,
            length: 4,
            batch: 4,
            candidates: 12,
            layers: 1,
        }
    }

    /// A mid-size executed configuration for convergence experiments.
    pub fn small() -> Self {
        LmConfig {
            vocab: 800,
            emb: 16,
            hidden: 32,
            length: 8,
            batch: 8,
            candidates: 48,
            layers: 1,
        }
    }
}

/// A built LM and its variable handles.
#[derive(Debug, Clone)]
pub struct LmModel {
    /// Graph, loss and logits.
    pub built: BuiltModel,
    /// Hyperparameters.
    pub config: LmConfig,
    /// Input embedding (sparse).
    pub emb_in: VarId,
    /// Output (softmax) embedding (sparse).
    pub emb_out: VarId,
}

impl LmModel {
    /// Builds the single-GPU graph: one gather for the whole
    /// `batch x length` id block, per-timestep row slices, a shared
    /// LSTM cell, projection, and sampled softmax per timestep.
    pub fn build(config: LmConfig) -> parallax_dataflow::Result<LmModel> {
        let mut g = Graph::new();
        let grp = g.open_partition_group();
        let emb_in = parallax_dataflow::builder::embedding(
            &mut g,
            "lm/emb_in",
            config.vocab,
            config.emb,
            Some(grp),
        )?;
        let emb_out = parallax_dataflow::builder::embedding(
            &mut g,
            "lm/emb_out",
            config.vocab,
            config.emb,
            Some(grp),
        )?;
        let ids = g.placeholder("ids", PhKind::Ids)?;
        let cands = g.placeholder("cands", PhKind::Ids)?;
        let h0 = g.placeholder("h0", PhKind::Float)?;
        let c0 = g.placeholder("c0", PhKind::Float)?;

        // One gather for the full time-major id block.
        let embedded = g.add(Op::Gather { table: emb_in, ids })?;
        let cand_rows = g.add(Op::Gather {
            table: emb_out,
            ids: cands,
        })?;
        let mut cells = Vec::with_capacity(config.layers.max(1));
        for l in 0..config.layers.max(1) {
            let in_dim = if l == 0 { config.emb } else { config.hidden };
            cells.push(lstm_weights(
                &mut g,
                &format!("lm/lstm/l{l}"),
                in_dim,
                config.hidden,
            )?);
        }

        let mut state: Vec<(parallax_dataflow::NodeId, parallax_dataflow::NodeId)> =
            vec![(h0, c0); config.layers.max(1)];
        let mut step_losses = Vec::with_capacity(config.length);
        let mut last_logits = None;
        // The projection from hidden to embedding width is shared across
        // timesteps; create it on the first step and reuse.
        let mut proj: Option<(VarId, VarId)> = None;
        for t in 0..config.length {
            let x_t = g.add(Op::SliceRows {
                input: embedded,
                start: t * config.batch,
                rows: config.batch,
            })?;
            let mut layer_in = x_t;
            for (l, &(w, b)) in cells.iter().enumerate() {
                let (h_prev, c_prev) = state[l];
                let (h_t, c_t) =
                    lstm_step_fused(&mut g, layer_in, h_prev, c_prev, w, b, config.hidden)?;
                state[l] = (h_t, c_t);
                layer_in = h_t;
            }
            let h_t = layer_in;
            let projected = match proj {
                Some((pw, pb)) => {
                    let pwr = g.read(pw)?;
                    let pbr = g.read(pb)?;
                    let mm = g.add(Op::MatMul(h_t, pwr))?;
                    g.add(Op::AddBias { x: mm, bias: pbr })?
                }
                None => {
                    let (out, pw, pb) =
                        linear(&mut g, h_t, "lm/proj", config.hidden, config.emb, Act::None)?;
                    proj = Some((pw, pb));
                    out
                }
            };
            let logits = g.add(Op::MatMulBT(projected, cand_rows))?;
            last_logits = Some(logits);
            let labels_t = g.placeholder(format!("labels_{t}"), PhKind::Ids)?;
            let loss_t = g.add(Op::SoftmaxXent {
                logits,
                labels: labels_t,
            })?;
            step_losses.push(loss_t);
        }
        // Mean over timesteps.
        let mut total = step_losses[0];
        for &l in &step_losses[1..] {
            total = g.add(Op::Add(total, l))?;
        }
        let loss = g.add(Op::Scale(total, 1.0 / config.length as f32))?;
        let logits = last_logits.expect("length >= 1");
        Ok(LmModel {
            built: BuiltModel {
                graph: g,
                loss,
                logits,
            },
            config,
            emb_in,
            emb_out,
        })
    }

    /// Builds a feed from a corpus sample: ids time-major, a shared
    /// candidate set (true labels first, Zipf negatives appended), and
    /// per-timestep labels remapped to candidate indices.
    pub fn feed(&self, corpus: &ZipfCorpus, rng: &mut DetRng) -> Feed {
        let (ids, labels) = corpus.sample_batch(self.config.batch, self.config.length, rng);
        self.feed_from(ids, labels, corpus, rng)
    }

    /// Builds the per-worker shard of a global batch (the `shard` API).
    pub fn sharded_feed(
        &self,
        corpus: &ZipfCorpus,
        workers: usize,
        worker: usize,
        rng: &mut DetRng,
    ) -> Feed {
        // Sample a global batch deterministically, then cut this worker's
        // sequences out of it (columns of the time-major block).
        let global_batch = self.config.batch * workers;
        let (ids, labels) = corpus.sample_batch(global_batch, self.config.length, rng);
        let r = shard_range(global_batch, workers, worker);
        let mut my_ids = Vec::with_capacity(self.config.batch * self.config.length);
        let mut my_labels = Vec::with_capacity(self.config.batch * self.config.length);
        for t in 0..self.config.length {
            for bcol in r.clone() {
                my_ids.push(ids[t * global_batch + bcol]);
                my_labels.push(labels[t * global_batch + bcol]);
            }
        }
        self.feed_from(my_ids, my_labels, corpus, rng)
    }

    fn feed_from(
        &self,
        ids: Vec<usize>,
        labels: Vec<usize>,
        corpus: &ZipfCorpus,
        rng: &mut DetRng,
    ) -> Feed {
        let batch = ids.len() / self.config.length;
        // Candidate set: distinct true labels, then Zipf negatives.
        let mut cands: Vec<usize> = labels.clone();
        cands.sort_unstable();
        cands.dedup();
        while cands.len() < self.config.candidates {
            let neg = corpus.sample(rng);
            if !cands.contains(&neg) {
                cands.push(neg);
            }
        }
        cands.truncate(self.config.candidates.max(cands.len()));
        let index_of = |token: usize| -> usize {
            cands
                .iter()
                .position(|&c| c == token)
                .expect("label is in candidate set")
        };
        let mut feed = Feed::new()
            .with("ids", ids)
            .with("cands", cands.clone())
            .with("h0", Tensor::zeros([batch, self.config.hidden]))
            .with("c0", Tensor::zeros([batch, self.config.hidden]));
        for t in 0..self.config.length {
            let labels_t: Vec<usize> = labels[t * batch..(t + 1) * batch]
                .iter()
                .map(|&l| index_of(l))
                .collect();
            feed.insert(format!("labels_{t}"), labels_t);
        }
        feed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::grad::backward;
    use parallax_dataflow::{Session, VarStore};

    #[test]
    fn lm_builds_and_embeddings_are_sparse() {
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let g = &model.built.graph;
        assert!(g.is_sparse_variable(model.emb_in));
        assert!(g.is_sparse_variable(model.emb_out));
        // LSTM kernel is dense.
        let kernel = g.find_variable("lm/lstm/l0/kernel").unwrap();
        assert!(!g.is_sparse_variable(kernel));
        // Both embeddings share the partitioner group.
        assert_eq!(
            g.var_def(model.emb_in).unwrap().partition_group,
            g.var_def(model.emb_out).unwrap().partition_group,
        );
    }

    #[test]
    fn lm_forward_backward_produces_all_gradients() {
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let g = &model.built.graph;
        let mut rng = DetRng::seed(3);
        let corpus = ZipfCorpus::new(model.config.vocab, 1.0);
        let feed = model.feed(&corpus, &mut rng);
        let mut store = VarStore::init(g, &mut DetRng::seed(1));
        let acts = Session::new(g).forward(&feed, &mut store).unwrap();
        let loss = acts.scalar(model.built.loss).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        let grads = backward(g, &acts, model.built.loss).unwrap();
        // Every variable participates.
        assert_eq!(grads.len(), g.variables().len());
        assert!(grads.get(&model.emb_in).unwrap().is_sparse());
        assert!(grads.get(&model.emb_out).unwrap().is_sparse());
    }

    #[test]
    fn lm_trains_down_on_a_fixed_batch() {
        use parallax_dataflow::{Optimizer, Sgd};
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let g = &model.built.graph;
        let corpus = ZipfCorpus::new(model.config.vocab, 1.0);
        let feed = model.feed(&corpus, &mut DetRng::seed(5));
        let mut store = VarStore::init(g, &mut DetRng::seed(1));
        let mut opt = Sgd::new(1.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let acts = Session::new(g).forward(&feed, &mut store).unwrap();
            last = acts.scalar(model.built.loss).unwrap();
            first.get_or_insert(last);
            let grads = backward(g, &acts, model.built.loss).unwrap();
            for (var, grad) in grads {
                opt.apply(var.index() as u64, store.get_mut(var).unwrap(), &grad)
                    .unwrap();
            }
        }
        let first = first.unwrap();
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn sharded_feeds_partition_the_global_batch() {
        let model = LmModel::build(LmConfig::tiny()).unwrap();
        let corpus = ZipfCorpus::new(model.config.vocab, 1.0);
        // Two workers sharding a global batch must see disjoint columns
        // of the same sample when seeded identically.
        let f0 = model.sharded_feed(&corpus, 2, 0, &mut DetRng::seed(8));
        let f1 = model.sharded_feed(&corpus, 2, 1, &mut DetRng::seed(8));
        let ids0 = f0.get("ids").unwrap().as_ids("t").unwrap();
        let ids1 = f1.get("ids").unwrap().as_ids("t").unwrap();
        assert_eq!(ids0.len(), model.config.batch * model.config.length);
        assert_eq!(ids0.len(), ids1.len());
        assert_ne!(ids0, ids1);
    }
}
