//! ResNet-50-like dense model.
//!
//! The evaluation uses ResNet-50 only as an "all-dense, compute-heavy"
//! workload; its convolutional structure never matters to the
//! synchronization analysis. This stand-in keeps the two properties
//! that do: a deep stack of residual blocks (so gradients flow through
//! many dense matmuls) and zero sparse variables.

use parallax_dataflow::builder::{linear, residual_block, Act};
use parallax_dataflow::graph::{Op, PhKind};
use parallax_dataflow::{Graph, Result};

use crate::BuiltModel;

/// ResNet-like hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Flattened input feature dimension.
    pub features: usize,
    /// Residual trunk width.
    pub width: usize,
    /// Bottleneck width inside each block.
    pub bottleneck: usize,
    /// Number of residual blocks.
    pub blocks: usize,
    /// Output classes.
    pub classes: usize,
}

impl ResNetConfig {
    /// An executed-scale configuration.
    pub fn tiny() -> Self {
        ResNetConfig {
            features: 16,
            width: 12,
            bottleneck: 6,
            blocks: 2,
            classes: 5,
        }
    }

    /// A mid-size executed configuration.
    pub fn small() -> Self {
        ResNetConfig {
            features: 64,
            width: 48,
            bottleneck: 16,
            blocks: 6,
            classes: 10,
        }
    }
}

/// Builds the ResNet-like graph.
pub fn build(config: ResNetConfig) -> Result<BuiltModel> {
    let mut g = Graph::new();
    let x = g.placeholder("x", PhKind::Float)?;
    let labels = g.placeholder("labels", PhKind::Ids)?;
    let (mut h, _, _) = linear(&mut g, x, "stem", config.features, config.width, Act::Relu)?;
    for b in 0..config.blocks {
        h = residual_block(
            &mut g,
            h,
            &format!("block{b}"),
            config.width,
            config.bottleneck,
        )?;
    }
    let (logits, _, _) = linear(
        &mut g,
        h,
        "classifier",
        config.width,
        config.classes,
        Act::None,
    )?;
    let loss = g.add(Op::SoftmaxXent { logits, labels })?;
    Ok(BuiltModel {
        graph: g,
        loss,
        logits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ImageDataset;
    use parallax_dataflow::grad::backward;
    use parallax_dataflow::{Session, VarStore};
    use parallax_tensor::DetRng;

    #[test]
    fn resnet_is_fully_dense() {
        let model = build(ResNetConfig::tiny()).unwrap();
        for var in model.graph.var_ids() {
            assert!(!model.graph.is_sparse_variable(var));
        }
        // 1 stem + 2 per block + 1 classifier, each with weight and bias.
        let expected_vars = 2 * (1 + 2 * 2 + 1);
        assert_eq!(model.graph.variables().len(), expected_vars);
    }

    #[test]
    fn resnet_trains_down_on_a_fixed_batch() {
        use parallax_dataflow::{Optimizer, Sgd};
        let config = ResNetConfig::tiny();
        let model = build(config).unwrap();
        let ds = ImageDataset::new(config.features, config.classes);
        let feed = ds.feed(8, &mut DetRng::seed(3));
        let mut store = VarStore::init(&model.graph, &mut DetRng::seed(1));
        let mut opt = Sgd::new(0.1);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..20 {
            let acts = Session::new(&model.graph)
                .forward(&feed, &mut store)
                .unwrap();
            last = acts.scalar(model.loss).unwrap();
            first.get_or_insert(last);
            let grads = backward(&model.graph, &acts, model.loss).unwrap();
            for (var, grad) in grads {
                opt.apply(var.index() as u64, store.get_mut(var).unwrap(), &grad)
                    .unwrap();
            }
        }
        assert!(last < first.unwrap() * 0.8, "loss {first:?} -> {last}");
    }
}
