#![warn(missing_docs)]

//! Model zoo and synthetic datasets for the Parallax reproduction.
//!
//! Four models mirror the paper's evaluation set (Section 6.1):
//!
//! * [`lm`] — a word language model: embedding lookup, LSTM, projection,
//!   softmax (the paper's LM, Jozefowicz et al.). Sparse.
//! * [`nmt`] — a sequence-to-sequence translation model with encoder and
//!   decoder embeddings (the paper's NMT, GNMT-style). Sparse.
//! * [`resnet`] — a residual dense network standing in for ResNet-50
//!   (dense-matmul blocks; convolution structure is irrelevant to the
//!   evaluation, which only needs "all-dense, compute-heavy").
//! * [`inception`] — a multi-branch dense network standing in for
//!   Inception-v3.
//!
//! [`data`] provides synthetic datasets whose *access statistics* match
//! what drives the paper's results: Zipf-distributed token streams (so
//! embedding-row reuse behaves like natural text, with the `length`
//! knob of Table 6) and random images. [`presets`] carries paper-scale
//! workload descriptions for the analytic engine plus executed-scale
//! configurations for real training. [`metrics`] implements perplexity,
//! top-1 error and BLEU.

pub mod data;
pub mod inception;
pub mod lm;
pub mod metrics;
pub mod nmt;
pub mod presets;
pub mod resnet;

pub use lm::LmModel;
pub use nmt::NmtModel;

/// A built model: its graph, loss node, and feed metadata.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The single-GPU computation graph.
    pub graph: parallax_dataflow::Graph,
    /// The scalar loss node.
    pub loss: parallax_dataflow::NodeId,
    /// Logits node (for evaluation metrics).
    pub logits: parallax_dataflow::NodeId,
}
