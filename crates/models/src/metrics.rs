//! Evaluation metrics: perplexity, top-1 error, BLEU.

use std::collections::HashMap;

use parallax_tensor::{Result, Tensor};

/// Perplexity from a mean cross-entropy loss (Figure 7(b)'s metric).
pub fn perplexity(mean_xent: f32) -> f32 {
    mean_xent.exp()
}

/// Top-1 error rate (Figure 7(a)'s metric): fraction of rows whose
/// argmax logit disagrees with the label.
pub fn top1_error(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    let wrong = preds.iter().zip(labels).filter(|(p, l)| p != l).count();
    Ok(wrong as f32 / labels.len().max(1) as f32)
}

/// Corpus-level BLEU with up to `max_n`-gram precision and brevity
/// penalty (Figure 7(c)'s metric), over token-id sequences.
pub fn bleu(candidates: &[Vec<usize>], references: &[Vec<usize>], max_n: usize) -> f64 {
    assert_eq!(
        candidates.len(),
        references.len(),
        "paired corpora required"
    );
    let max_n = max_n.max(1);
    let mut log_precision_sum = 0.0f64;
    let mut any_zero = false;
    for n in 1..=max_n {
        let mut matched = 0usize;
        let mut total = 0usize;
        for (cand, reference) in candidates.iter().zip(references) {
            let cand_counts = ngram_counts(cand, n);
            let ref_counts = ngram_counts(reference, n);
            for (gram, &count) in &cand_counts {
                let clip = ref_counts.get(gram).copied().unwrap_or(0);
                matched += count.min(clip);
            }
            total += cand.len().saturating_sub(n - 1);
        }
        if total == 0 || matched == 0 {
            any_zero = true;
            break;
        }
        log_precision_sum += (matched as f64 / total as f64).ln();
    }
    if any_zero {
        return 0.0;
    }
    let cand_len: usize = candidates.iter().map(Vec::len).sum();
    let ref_len: usize = references.iter().map(Vec::len).sum();
    let brevity = if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len.max(1) as f64).exp()
    };
    brevity * (log_precision_sum / max_n as f64).exp()
}

fn ngram_counts(seq: &[usize], n: usize) -> HashMap<&[usize], usize> {
    let mut counts = HashMap::new();
    if seq.len() < n {
        return counts;
    }
    for i in 0..=seq.len() - n {
        *counts.entry(&seq[i..i + n]).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perplexity_of_uniform_prediction() {
        // Uniform over 4 classes: loss = ln 4, ppl = 4.
        assert!((perplexity(4.0f32.ln()) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn top1_error_counts_mismatches() {
        let logits = Tensor::new([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        // Predictions: 0, 1, 0.
        let err = top1_error(&logits, &[0, 1, 1]).unwrap();
        assert!((err - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bleu_perfect_match_is_one() {
        let corpus = vec![vec![1, 2, 3, 4, 5]];
        assert!((bleu(&corpus, &corpus, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bleu_no_overlap_is_zero() {
        let cand = vec![vec![9, 9, 9, 9]];
        let refs = vec![vec![1, 2, 3, 4]];
        assert_eq!(bleu(&cand, &refs, 4), 0.0);
    }

    #[test]
    fn bleu_partial_overlap_is_between() {
        let cand = vec![vec![1, 2, 3, 9, 9]];
        let refs = vec![vec![1, 2, 3, 4, 5]];
        let score = bleu(&cand, &refs, 2);
        assert!(score > 0.0 && score < 1.0, "score {score}");
    }

    #[test]
    fn bleu_brevity_penalizes_short_candidates() {
        let long = vec![vec![1, 2, 3, 4, 5, 6]];
        let short = vec![vec![1, 2, 3]];
        let full = bleu(&long, &long, 2);
        let clipped = bleu(&short, &long, 2);
        assert!(clipped < full);
    }
}
