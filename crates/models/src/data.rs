//! Synthetic datasets.
//!
//! The paper's data mattered through one statistic: which embedding rows
//! a mini-batch touches. [`ZipfCorpus`] samples token streams from a
//! Zipf distribution — the empirical shape of word frequencies — so
//! per-batch distinct-row counts (and hence `alpha`) behave like the
//! One Billion Word / WMT corpora. The `length` knob reproduces the
//! Table 6 sweep: longer instances touch more rows, raising
//! `alpha_model`. [`ImageDataset`] provides random dense inputs for the
//! image models.

use parallax_dataflow::Feed;
use parallax_tensor::{DetRng, Tensor};

/// A synthetic Zipf-distributed token stream.
#[derive(Debug, Clone)]
pub struct ZipfCorpus {
    vocab: usize,
    exponent: f64,
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
}

impl ZipfCorpus {
    /// # Examples
    ///
    /// ```
    /// use parallax_models::data::ZipfCorpus;
    /// use parallax_tensor::DetRng;
    /// let corpus = ZipfCorpus::new(100, 1.0);
    /// let (ids, labels) = corpus.sample_batch(4, 3, &mut DetRng::seed(1));
    /// assert_eq!(ids.len(), 12);
    /// assert!(ids.iter().all(|&t| t < 100));
    /// # let _ = labels;
    /// ```
    /// Creates a corpus over `vocab` token ids with Zipf exponent `s`
    /// (natural language is close to `s = 1.0`).
    pub fn new(vocab: usize, exponent: f64) -> Self {
        let mut cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for rank in 1..=vocab {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfCorpus {
            vocab,
            exponent,
            cdf,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Samples one token id.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform() as f64;
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.vocab - 1),
        }
    }

    /// Samples a batch of `batch` sequences of `length` tokens, flattened
    /// time-major (`t * batch + b`), plus next-token labels.
    pub fn sample_batch(
        &self,
        batch: usize,
        length: usize,
        rng: &mut DetRng,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut ids = Vec::with_capacity(batch * length);
        let mut labels = Vec::with_capacity(batch * length);
        // Sample per-sequence, then interleave time-major.
        let seqs: Vec<Vec<usize>> = (0..batch)
            .map(|_| (0..=length).map(|_| self.sample(rng)).collect())
            .collect();
        for t in 0..length {
            for seq in &seqs {
                ids.push(seq[t]);
                labels.push(seq[t + 1]);
            }
        }
        (ids, labels)
    }

    /// Average distinct tokens in a `batch x length` sample, estimated by
    /// drawing `trials` batches — the measured `alpha * vocab`.
    pub fn expected_distinct(
        &self,
        batch: usize,
        length: usize,
        trials: usize,
        rng: &mut DetRng,
    ) -> f64 {
        let mut total = 0usize;
        for _ in 0..trials {
            let (ids, _) = self.sample_batch(batch, length, rng);
            let mut sorted = ids;
            sorted.sort_unstable();
            sorted.dedup();
            total += sorted.len();
        }
        total as f64 / trials as f64
    }
}

/// Synthetic dense image data with class labels.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Flattened feature dimension.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
}

impl ImageDataset {
    /// Creates a dataset description.
    pub fn new(features: usize, classes: usize) -> Self {
        ImageDataset { features, classes }
    }

    /// Samples a `[batch, features]` input and labels.
    pub fn sample_batch(&self, batch: usize, rng: &mut DetRng) -> (Tensor, Vec<usize>) {
        let x = Tensor::randn([batch, self.features], 1.0, rng);
        let labels = (0..batch).map(|_| rng.below(self.classes)).collect();
        (x, labels)
    }

    /// Builds a feed for the image models.
    pub fn feed(&self, batch: usize, rng: &mut DetRng) -> Feed {
        let (x, labels) = self.sample_batch(batch, rng);
        Feed::new().with("x", x).with("labels", labels)
    }
}

/// A sharded view of a token dataset: worker `w` of `workers` sees a
/// disjoint, deterministic subset of every epoch — Figure 3's
/// `ds = parallax.shard(ds)`.
///
/// Sharding is by sequence index within the epoch: the global epoch
/// order is fixed by the epoch seed (identical on every worker), and
/// each worker takes its `shard_range` slice, so the union over workers
/// is exactly the global batch stream with no overlap.
#[derive(Debug, Clone)]
pub struct ShardedTokenDataset {
    corpus: ZipfCorpus,
    /// Sequences per *global* batch.
    pub global_batch: usize,
    /// Tokens per sequence.
    pub length: usize,
    workers: usize,
    worker: usize,
    base_seed: u64,
}

impl ShardedTokenDataset {
    /// Creates worker `worker`'s shard of a `workers`-way split.
    pub fn shard(
        corpus: ZipfCorpus,
        global_batch: usize,
        length: usize,
        workers: usize,
        worker: usize,
        base_seed: u64,
    ) -> Self {
        ShardedTokenDataset {
            corpus,
            global_batch,
            length,
            workers,
            worker,
            base_seed,
        }
    }

    /// Sequences this worker receives per batch.
    pub fn local_batch(&self) -> usize {
        parallax_core::runner::shard_range(self.global_batch, self.workers, self.worker).len()
    }

    /// This worker's `(ids, labels)` for global batch `iter`, time-major.
    /// Every worker draws the same global sample (same seed) and slices
    /// its own columns, so shards are disjoint and exhaustive.
    pub fn batch(&self, iter: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rng = DetRng::seed(self.base_seed.wrapping_add(iter as u64));
        let (ids, labels) = self
            .corpus
            .sample_batch(self.global_batch, self.length, &mut rng);
        let r = parallax_core::runner::shard_range(self.global_batch, self.workers, self.worker);
        let mut my_ids = Vec::with_capacity(r.len() * self.length);
        let mut my_labels = Vec::with_capacity(r.len() * self.length);
        for t in 0..self.length {
            for b in r.clone() {
                my_ids.push(ids[t * self.global_batch + b]);
                my_labels.push(labels[t * self.global_batch + b]);
            }
        }
        (my_ids, my_labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let corpus = ZipfCorpus::new(1000, 1.0);
        let mut rng = DetRng::seed(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[corpus.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // Rank 1 / rank 10 frequency ratio should be near 10 for s=1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((4.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn batch_is_time_major_with_next_token_labels() {
        let corpus = ZipfCorpus::new(50, 1.0);
        let mut rng = DetRng::seed(2);
        let (ids, labels) = corpus.sample_batch(4, 3, &mut rng);
        assert_eq!(ids.len(), 12);
        assert_eq!(labels.len(), 12);
        // Label of (t, b) equals id of (t+1, b) for t < length-1.
        for t in 0..2 {
            for b in 0..4 {
                assert_eq!(labels[t * 4 + b], ids[(t + 1) * 4 + b]);
            }
        }
    }

    #[test]
    fn longer_sequences_touch_more_distinct_rows_sublinearly() {
        // The Table 6 mechanism: distinct rows grow with length, but
        // slower than linearly (Zipf reuse).
        let corpus = ZipfCorpus::new(2000, 1.0);
        let mut rng = DetRng::seed(3);
        let d4 = corpus.expected_distinct(32, 4, 5, &mut rng);
        let d32 = corpus.expected_distinct(32, 32, 5, &mut rng);
        assert!(d32 > 2.0 * d4, "d4 {d4}, d32 {d32}");
        assert!(
            d32 < 8.0 * d4,
            "sublinear growth expected: d4 {d4}, d32 {d32}"
        );
    }

    #[test]
    fn images_have_requested_shape_and_label_range() {
        let ds = ImageDataset::new(64, 10);
        let mut rng = DetRng::seed(4);
        let (x, labels) = ds.sample_batch(8, &mut rng);
        assert_eq!(x.shape().dims(), &[8, 64]);
        assert!(labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn shards_are_disjoint_and_exhaustive() {
        let corpus = ZipfCorpus::new(200, 1.0);
        let workers = 3;
        let global_batch = 8;
        let length = 2;
        // The unsharded global batch.
        let mut rng = DetRng::seed(77);
        let (global_ids, _) = corpus.sample_batch(global_batch, length, &mut rng);
        // Reassemble from the shards.
        let mut rebuilt = vec![None; global_batch * length];
        let mut starts = 0usize;
        for w in 0..workers {
            let ds =
                ShardedTokenDataset::shard(corpus.clone(), global_batch, length, workers, w, 77);
            let (ids, _) = ds.batch(0);
            let r = parallax_core::runner::shard_range(global_batch, workers, w);
            starts += r.len();
            for t in 0..length {
                for (k, b) in r.clone().enumerate() {
                    let slot = t * global_batch + b;
                    assert!(rebuilt[slot].is_none(), "shards overlap");
                    rebuilt[slot] = Some(ids[t * r.len() + k]);
                }
            }
        }
        assert_eq!(starts, global_batch);
        let rebuilt: Vec<usize> = rebuilt.into_iter().map(|v| v.unwrap()).collect();
        assert_eq!(rebuilt, global_ids);
    }

    #[test]
    fn shard_batches_vary_by_iteration() {
        let corpus = ZipfCorpus::new(100, 1.0);
        let ds = ShardedTokenDataset::shard(corpus, 4, 3, 2, 0, 5);
        assert_eq!(ds.local_batch(), 2);
        let (a, _) = ds.batch(0);
        let (b, _) = ds.batch(1);
        assert_ne!(a, b, "different iterations draw different data");
        let (a2, _) = ds.batch(0);
        assert_eq!(a, a2, "batches are reproducible");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let corpus = ZipfCorpus::new(100, 1.0);
        let (a, _) = corpus.sample_batch(4, 4, &mut DetRng::seed(9));
        let (b, _) = corpus.sample_batch(4, 4, &mut DetRng::seed(9));
        assert_eq!(a, b);
    }
}
