//! Paper-scale workload presets for the analytic engine.
//!
//! Variable sizes follow Table 1 and Section 6.1: ResNet-50 (23.8M
//! dense), Inception-v3 (25.6M dense), LM (9.4M dense + 813.3M sparse,
//! `alpha_model = 0.02`, one-billion-word vocabulary of ~800K, LSTM 2048
//! projected to 512) and NMT (94.1M dense + 74.9M sparse,
//! `alpha_model = 0.65`, 8-layer LSTM of 1024 units, WMT vocabulary).
//! Per-variable alphas are chosen to reproduce the reported
//! `alpha_model` exactly; FLOP counts are standard estimates for the
//! architectures.

use parallax_core::analytic::{VarSpec, WorkloadSpec};

/// Splits a model's dense parameters into `count` equal variables,
/// mirroring the many weight tensors of the real architectures (ResNet-50
/// has ~160; a single giant variable would overstate the PS hot-server
/// effect, which in practice is spread across servers).
fn dense_group(name: &str, total_elements: f64, count: usize) -> Vec<VarSpec> {
    let per = total_elements / count as f64;
    (0..count)
        .map(|i| VarSpec::dense(format!("{name}_{i}"), per))
        .collect()
}

/// ResNet-50 at paper scale.
pub fn resnet50() -> WorkloadSpec {
    WorkloadSpec {
        name: "ResNet-50".into(),
        vars: dense_group("conv", 23.8e6, 54),
        forward_flops_per_unit: 3.3e9,
        units_per_gpu: 64.0,
        unit: "images",
    }
}

/// Inception-v3 at paper scale.
pub fn inception_v3() -> WorkloadSpec {
    WorkloadSpec {
        name: "Inception-v3".into(),
        vars: dense_group("conv", 25.6e6, 96),
        forward_flops_per_unit: 4.7e9,
        units_per_gpu: 64.0,
        unit: "images",
    }
}

/// LM at paper scale: 800K-word vocabulary, embeddings of width 512,
/// LSTM(2048) with 512 projection; batch 128 sequences of 20 steps.
pub fn lm() -> WorkloadSpec {
    let rows = 794_238.0;
    let cols = 512.0;
    let raw_in = 128.0 * 20.0; // One lookup per word.
    let raw_out = raw_in + 9_240.0; // True labels plus sampled negatives.
    WorkloadSpec {
        name: "LM".into(),
        vars: {
            let mut vars = dense_group("lstm+proj", 9.4e6, 8);
            // Input embedding: ~2.2K distinct tokens per worker batch.
            vars.push(VarSpec::sparse("emb_in", rows, cols, 0.0028, raw_in));
            // Softmax embedding: sampled softmax touches ~10K rows.
            vars.push(VarSpec::sparse("emb_softmax", rows, cols, 0.0126, raw_out));
            vars
        },
        forward_flops_per_unit: 2.2e7,
        units_per_gpu: 128.0 * 20.0,
        unit: "words",
    }
}

/// NMT at paper scale: GNMT-style 8-layer LSTM of 1024 units,
/// bidirectional encoder, 2048-wide embeddings over subword
/// vocabularies; batch 128 sentence pairs of ~30 tokens.
pub fn nmt() -> WorkloadSpec {
    let rows = 18_286.0;
    let cols = 2048.0;
    let raw = 128.0 * 30.0;
    WorkloadSpec {
        name: "NMT".into(),
        vars: {
            let mut vars = dense_group("lstm+attn+proj", 94.1e6, 34);
            vars.push(VarSpec::sparse("emb_src", rows, cols, 0.2103, raw));
            vars.push(VarSpec::sparse("emb_tgt", rows, cols, 0.2103, raw));
            vars
        },
        forward_flops_per_unit: 5.7e7,
        units_per_gpu: 128.0 * 30.0,
        unit: "words",
    }
}

/// The constructed LM of Table 6: dense variables plus a smaller
/// vocabulary, with `length` words per data instance controlling the
/// sparsity degree `alpha_model`.
pub fn constructed_lm(length: usize, alpha_model_target: f64) -> WorkloadSpec {
    // "A constructed LM model that uses dense variables and vocabulary
    // smaller than those of the original LM": the vocabulary equals the
    // words per iteration at length 120 (so alpha reaches 1.0 there),
    // and the dense core is small enough that the length-1 row's
    // alpha_model of 0.04 is attainable.
    let rows = 128.0 * 120.0;
    let cols = 512.0;
    let dense = 0.45e6;
    let sparse = 2.0 * rows * cols;
    // Solve the element-weighted average for the per-variable alpha.
    let alpha = (((alpha_model_target * (dense + sparse)) - dense).max(0.0) / sparse).min(1.0);
    let raw = 128.0 * length as f64;
    WorkloadSpec {
        name: format!("LM(length={length})"),
        vars: {
            let mut vars = dense_group("lstm+proj", dense, 4);
            vars.push(VarSpec::sparse("emb_in", rows, cols, alpha, raw));
            vars.push(VarSpec::sparse("emb_softmax", rows, cols, alpha, raw));
            vars
        },
        forward_flops_per_unit: 5.5e7,
        units_per_gpu: 128.0 * length as f64,
        unit: "words",
    }
}

/// All four headline presets in Table 1 order.
pub fn all_models() -> Vec<WorkloadSpec> {
    vec![resnet50(), inception_v3(), lm(), nmt()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts_match_table1() {
        let rn = resnet50();
        assert!((rn.dense_elements() - 23.8e6).abs() < 1e3);
        assert_eq!(rn.sparse_elements(), 0.0);

        let iv = inception_v3();
        assert!((iv.dense_elements() - 25.6e6).abs() < 1e3);

        let lm = lm();
        assert!((lm.dense_elements() - 9.4e6).abs() < 1e3);
        let sparse_m = lm.sparse_elements() / 1e6;
        assert!((sparse_m - 813.3).abs() < 1.0, "LM sparse {sparse_m}M");

        let nmt = nmt();
        assert!((nmt.dense_elements() - 94.1e6).abs() < 1e3);
        let sparse_m = nmt.sparse_elements() / 1e6;
        assert!((sparse_m - 74.9).abs() < 0.5, "NMT sparse {sparse_m}M");
    }

    #[test]
    fn alpha_model_matches_table1() {
        assert!((resnet50().alpha_model() - 1.0).abs() < 1e-12);
        let lm_alpha = lm().alpha_model();
        assert!((lm_alpha - 0.02).abs() < 0.002, "LM alpha_model {lm_alpha}");
        let nmt_alpha = nmt().alpha_model();
        assert!(
            (nmt_alpha - 0.65).abs() < 0.01,
            "NMT alpha_model {nmt_alpha}"
        );
    }

    #[test]
    fn constructed_lm_hits_requested_alpha() {
        for (length, target) in [
            (120usize, 1.0),
            (60, 0.52),
            (30, 0.28),
            (15, 0.16),
            (8, 0.1),
            (4, 0.07),
            (1, 0.04),
        ] {
            let spec = constructed_lm(length, target);
            assert!(
                (spec.alpha_model() - target).abs() < 0.01,
                "length {length}: {} vs {target}",
                spec.alpha_model()
            );
            assert_eq!(spec.units_per_gpu, 128.0 * length as f64);
        }
    }

    #[test]
    fn model_order_is_table1() {
        let names: Vec<String> = all_models().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["ResNet-50", "Inception-v3", "LM", "NMT"]);
    }
}
