//! Inception-v3-like dense model.
//!
//! Stands in for Inception-v3 with its characteristic multi-branch
//! blocks: each block runs parallel dense paths of different widths and
//! concatenates them, mirroring Inception's mixed modules. All
//! variables are dense.

use parallax_dataflow::builder::{linear, Act};
use parallax_dataflow::graph::{Op, PhKind};
use parallax_dataflow::{Graph, NodeId, Result};

use crate::BuiltModel;

/// Inception-like hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionConfig {
    /// Flattened input feature dimension.
    pub features: usize,
    /// Trunk width between blocks.
    pub width: usize,
    /// Number of mixed blocks.
    pub blocks: usize,
    /// Output classes.
    pub classes: usize,
}

impl InceptionConfig {
    /// An executed-scale configuration.
    pub fn tiny() -> Self {
        InceptionConfig {
            features: 16,
            width: 12,
            blocks: 2,
            classes: 5,
        }
    }

    /// A mid-size executed configuration.
    pub fn small() -> Self {
        InceptionConfig {
            features: 64,
            width: 48,
            blocks: 4,
            classes: 10,
        }
    }
}

/// One mixed block: three parallel branches (1/2, 1/4, 1/4 of the
/// width), concatenated back to `width` columns.
fn mixed_block(g: &mut Graph, x: NodeId, name: &str, width: usize) -> Result<NodeId> {
    let w1 = width / 2;
    let w2 = width / 4;
    let w3 = width - w1 - w2;
    let (b1, _, _) = linear(g, x, &format!("{name}/branch1"), width, w1, Act::Relu)?;
    let (b2a, _, _) = linear(g, x, &format!("{name}/branch2a"), width, w2, Act::Relu)?;
    let (b2, _, _) = linear(g, b2a, &format!("{name}/branch2b"), w2, w2, Act::Relu)?;
    let (b3, _, _) = linear(g, x, &format!("{name}/branch3"), width, w3, Act::Relu)?;
    g.add(Op::ConcatCols(vec![b1, b2, b3]))
}

/// Builds the Inception-like graph.
pub fn build(config: InceptionConfig) -> Result<BuiltModel> {
    let mut g = Graph::new();
    let x = g.placeholder("x", PhKind::Float)?;
    let labels = g.placeholder("labels", PhKind::Ids)?;
    let (mut h, _, _) = linear(&mut g, x, "stem", config.features, config.width, Act::Relu)?;
    for b in 0..config.blocks {
        h = mixed_block(&mut g, h, &format!("mixed{b}"), config.width)?;
    }
    let (logits, _, _) = linear(
        &mut g,
        h,
        "classifier",
        config.width,
        config.classes,
        Act::None,
    )?;
    let loss = g.add(Op::SoftmaxXent { logits, labels })?;
    Ok(BuiltModel {
        graph: g,
        loss,
        logits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ImageDataset;
    use parallax_dataflow::grad::backward;
    use parallax_dataflow::{Session, VarStore};
    use parallax_tensor::DetRng;

    #[test]
    fn inception_is_fully_dense_with_branches() {
        let model = build(InceptionConfig::tiny()).unwrap();
        for var in model.graph.var_ids() {
            assert!(!model.graph.is_sparse_variable(var));
        }
        // Branch structure exists: at least one ConcatCols of 3 inputs.
        let has_concat = model
            .graph
            .ops()
            .iter()
            .any(|op| matches!(op, Op::ConcatCols(parts) if parts.len() == 3));
        assert!(has_concat);
    }

    #[test]
    fn inception_forward_backward_covers_all_variables() {
        let config = InceptionConfig::tiny();
        let model = build(config).unwrap();
        let ds = ImageDataset::new(config.features, config.classes);
        let feed = ds.feed(4, &mut DetRng::seed(3));
        let mut store = VarStore::init(&model.graph, &mut DetRng::seed(1));
        let acts = Session::new(&model.graph)
            .forward(&feed, &mut store)
            .unwrap();
        assert!(acts.scalar(model.loss).unwrap().is_finite());
        let grads = backward(&model.graph, &acts, model.loss).unwrap();
        assert_eq!(grads.len(), model.graph.variables().len());
    }
}
