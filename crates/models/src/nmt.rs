//! The NMT model: sequence-to-sequence translation with attention.
//!
//! Mirrors the paper's NMT (GNMT-style, Wu et al.): a source-side
//! multi-layer LSTM encoder over one embedding, a target-side decoder
//! over another, dot-product attention from each decoder step onto the
//! encoder's top-layer states, and a dense output projection over the
//! target vocabulary. The two embeddings are sparse; the LSTM kernels,
//! attention path and projection are dense — giving the balanced
//! dense/sparse profile that makes NMT the model where the hybrid
//! architecture's gains are largest (Table 4).

use parallax_core::runner::shard_range;
use parallax_dataflow::builder::{linear, lstm_step_fused, lstm_weights, Act};
use parallax_dataflow::graph::{Op, PhKind};
use parallax_dataflow::{Feed, Graph, NodeId, VarId};
use parallax_tensor::{DetRng, Tensor};

use crate::data::ZipfCorpus;
use crate::BuiltModel;

/// NMT hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NmtConfig {
    /// Source vocabulary size.
    pub src_vocab: usize,
    /// Target vocabulary size.
    pub tgt_vocab: usize,
    /// Embedding width.
    pub emb: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// LSTM layers in encoder and decoder (GNMT uses 8).
    pub layers: usize,
    /// Source/target sequence length.
    pub length: usize,
    /// Sentence pairs per batch.
    pub batch: usize,
    /// Dot-product attention from decoder onto encoder states.
    pub attention: bool,
}

impl NmtConfig {
    /// An executed-scale configuration.
    pub fn tiny() -> Self {
        NmtConfig {
            src_vocab: 50,
            tgt_vocab: 40,
            emb: 8,
            hidden: 10,
            layers: 1,
            length: 3,
            batch: 4,
            attention: true,
        }
    }

    /// A mid-size executed configuration with a 2-layer stack.
    pub fn small() -> Self {
        NmtConfig {
            src_vocab: 600,
            tgt_vocab: 500,
            emb: 16,
            hidden: 24,
            layers: 2,
            length: 6,
            batch: 8,
            attention: true,
        }
    }
}

/// A stack of LSTM layers stepped together; layer `l`'s hidden state
/// feeds layer `l+1`'s input.
struct LstmStack {
    cells: Vec<(VarId, VarId)>,
    hidden: usize,
}

impl LstmStack {
    fn new(
        g: &mut Graph,
        name: &str,
        input_dim: usize,
        hidden: usize,
        layers: usize,
    ) -> parallax_dataflow::Result<Self> {
        let mut cells = Vec::with_capacity(layers);
        for l in 0..layers {
            let in_dim = if l == 0 { input_dim } else { hidden };
            cells.push(lstm_weights(g, &format!("{name}/l{l}"), in_dim, hidden)?);
        }
        Ok(LstmStack { cells, hidden })
    }

    /// Steps the whole stack; `state` holds `(h, c)` per layer and is
    /// updated in place. Returns the top layer's hidden output.
    fn step(
        &self,
        g: &mut Graph,
        x: NodeId,
        state: &mut [(NodeId, NodeId)],
    ) -> parallax_dataflow::Result<NodeId> {
        let mut input = x;
        for (l, &(w, b)) in self.cells.iter().enumerate() {
            let (h_prev, c_prev) = state[l];
            let (h, c) = lstm_step_fused(g, input, h_prev, c_prev, w, b, self.hidden)?;
            state[l] = (h, c);
            input = h;
        }
        Ok(input)
    }
}

/// A built NMT model and its variable handles.
#[derive(Debug, Clone)]
pub struct NmtModel {
    /// Graph, loss and logits.
    pub built: BuiltModel,
    /// Hyperparameters.
    pub config: NmtConfig,
    /// Encoder embedding (sparse).
    pub emb_enc: VarId,
    /// Decoder embedding (sparse).
    pub emb_dec: VarId,
}

impl NmtModel {
    /// Builds the single-GPU graph: multi-layer encoder over gathered
    /// source embeddings, decoder seeded with the encoder's final state,
    /// per-step attention over the encoder's top-layer outputs, and a
    /// dense projection to target-vocabulary logits.
    pub fn build(config: NmtConfig) -> parallax_dataflow::Result<NmtModel> {
        let mut g = Graph::new();
        // The Figure 3 example: both embeddings under one partitioner.
        let grp = g.open_partition_group();
        let emb_enc = parallax_dataflow::builder::embedding(
            &mut g,
            "nmt/emb_enc",
            config.src_vocab,
            config.emb,
            Some(grp),
        )?;
        let emb_dec = parallax_dataflow::builder::embedding(
            &mut g,
            "nmt/emb_dec",
            config.tgt_vocab,
            config.emb,
            Some(grp),
        )?;
        let src_ids = g.placeholder("src_ids", PhKind::Ids)?;
        let tgt_ids = g.placeholder("tgt_ids", PhKind::Ids)?;
        let h0 = g.placeholder("h0", PhKind::Float)?;
        let c0 = g.placeholder("c0", PhKind::Float)?;

        let src_embedded = g.add(Op::Gather {
            table: emb_enc,
            ids: src_ids,
        })?;
        let tgt_embedded = g.add(Op::Gather {
            table: emb_dec,
            ids: tgt_ids,
        })?;

        // Encoder stack; keep top-layer states for attention.
        let enc = LstmStack::new(&mut g, "nmt/enc", config.emb, config.hidden, config.layers)?;
        let mut state: Vec<(NodeId, NodeId)> = vec![(h0, c0); config.layers];
        let mut enc_tops = Vec::with_capacity(config.length);
        for t in 0..config.length {
            let x_t = g.add(Op::SliceRows {
                input: src_embedded,
                start: t * config.batch,
                rows: config.batch,
            })?;
            let top = enc.step(&mut g, x_t, &mut state)?;
            enc_tops.push(top);
        }

        // Decoder stack, initialized from the encoder's final state.
        let dec = LstmStack::new(&mut g, "nmt/dec", config.emb, config.hidden, config.layers)?;
        let mut proj: Option<(VarId, VarId)> = None;
        let mut step_losses = Vec::with_capacity(config.length);
        let mut last_logits = None;
        let proj_in = if config.attention {
            2 * config.hidden
        } else {
            config.hidden
        };
        for t in 0..config.length {
            let x_t = g.add(Op::SliceRows {
                input: tgt_embedded,
                start: t * config.batch,
                rows: config.batch,
            })?;
            let top = dec.step(&mut g, x_t, &mut state)?;

            // Dot-product attention over the encoder's top states:
            // weights = softmax_u(dec_top . enc_top_u); context is the
            // weighted sum of encoder states; read-out concatenates.
            let readout = if config.attention {
                let mut score_cols = Vec::with_capacity(enc_tops.len());
                for &enc_h in &enc_tops {
                    let prod = g.add(Op::Hadamard(top, enc_h))?;
                    let dot = g.add(Op::SumRowsToColumn(prod))?;
                    score_cols.push(dot);
                }
                let scores = g.add(Op::ConcatCols(score_cols))?;
                let weights = g.add(Op::SoftmaxRows(scores))?;
                let mut context: Option<NodeId> = None;
                for (u, &enc_h) in enc_tops.iter().enumerate() {
                    let w_u = g.add(Op::SliceCols {
                        input: weights,
                        start: u,
                        width: 1,
                    })?;
                    let weighted = g.add(Op::ScaleRows { x: enc_h, s: w_u })?;
                    context = Some(match context {
                        Some(acc) => g.add(Op::Add(acc, weighted))?,
                        None => weighted,
                    });
                }
                let context = context.expect("length >= 1");
                g.add(Op::ConcatCols(vec![top, context]))?
            } else {
                top
            };

            let logits = match proj {
                Some((pw, pb)) => {
                    let pwr = g.read(pw)?;
                    let pbr = g.read(pb)?;
                    let mm = g.add(Op::MatMul(readout, pwr))?;
                    g.add(Op::AddBias { x: mm, bias: pbr })?
                }
                None => {
                    let (out, pw, pb) = linear(
                        &mut g,
                        readout,
                        "nmt/proj",
                        proj_in,
                        config.tgt_vocab,
                        Act::None,
                    )?;
                    proj = Some((pw, pb));
                    out
                }
            };
            last_logits = Some(logits);
            let labels_t = g.placeholder(format!("labels_{t}"), PhKind::Ids)?;
            let loss_t = g.add(Op::SoftmaxXent {
                logits,
                labels: labels_t,
            })?;
            step_losses.push(loss_t);
        }
        let mut total = step_losses[0];
        for &l in &step_losses[1..] {
            total = g.add(Op::Add(total, l))?;
        }
        let loss = g.add(Op::Scale(total, 1.0 / config.length as f32))?;
        let logits = last_logits.expect("length >= 1");
        Ok(NmtModel {
            built: BuiltModel {
                graph: g,
                loss,
                logits,
            },
            config,
            emb_enc,
            emb_dec,
        })
    }

    /// Builds a feed from source and target corpora.
    pub fn feed(&self, src: &ZipfCorpus, tgt: &ZipfCorpus, rng: &mut DetRng) -> Feed {
        let (src_ids, _) = src.sample_batch(self.config.batch, self.config.length, rng);
        let (tgt_ids, tgt_labels) = tgt.sample_batch(self.config.batch, self.config.length, rng);
        self.feed_from(src_ids, tgt_ids, tgt_labels)
    }

    /// Builds the per-worker shard of a deterministic global batch.
    pub fn sharded_feed(
        &self,
        src: &ZipfCorpus,
        tgt: &ZipfCorpus,
        workers: usize,
        worker: usize,
        rng: &mut DetRng,
    ) -> Feed {
        let global = self.config.batch * workers;
        let (src_ids, _) = src.sample_batch(global, self.config.length, rng);
        let (tgt_ids, tgt_labels) = tgt.sample_batch(global, self.config.length, rng);
        let r = shard_range(global, workers, worker);
        let cut = |v: &[usize]| -> Vec<usize> {
            let mut out = Vec::with_capacity(self.config.batch * self.config.length);
            for t in 0..self.config.length {
                for bcol in r.clone() {
                    out.push(v[t * global + bcol]);
                }
            }
            out
        };
        self.feed_from(cut(&src_ids), cut(&tgt_ids), cut(&tgt_labels))
    }

    fn feed_from(&self, src_ids: Vec<usize>, tgt_ids: Vec<usize>, tgt_labels: Vec<usize>) -> Feed {
        let batch = src_ids.len() / self.config.length;
        let mut feed = Feed::new()
            .with("src_ids", src_ids)
            .with("tgt_ids", tgt_ids)
            .with("h0", Tensor::zeros([batch, self.config.hidden]))
            .with("c0", Tensor::zeros([batch, self.config.hidden]));
        for t in 0..self.config.length {
            feed.insert(
                format!("labels_{t}"),
                tgt_labels[t * batch..(t + 1) * batch].to_vec(),
            );
        }
        feed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::grad::backward;
    use parallax_dataflow::{Session, VarStore};

    #[test]
    fn nmt_builds_with_two_sparse_embeddings_and_dense_rest() {
        let model = NmtModel::build(NmtConfig::tiny()).unwrap();
        let g = &model.built.graph;
        assert!(g.is_sparse_variable(model.emb_enc));
        assert!(g.is_sparse_variable(model.emb_dec));
        for name in ["nmt/enc/l0/kernel", "nmt/dec/l0/kernel", "nmt/proj/w"] {
            let v = g.find_variable(name).unwrap();
            assert!(!g.is_sparse_variable(v), "{name} must be dense");
        }
    }

    #[test]
    fn attention_widens_the_projection() {
        let with = NmtModel::build(NmtConfig::tiny()).unwrap();
        let without = NmtModel::build(NmtConfig {
            attention: false,
            ..NmtConfig::tiny()
        })
        .unwrap();
        let proj_w = |m: &NmtModel| {
            let g = &m.built.graph;
            g.var_def(g.find_variable("nmt/proj/w").unwrap())
                .unwrap()
                .shape
                .dim(0)
        };
        assert_eq!(proj_w(&with), 2 * NmtConfig::tiny().hidden);
        assert_eq!(proj_w(&without), NmtConfig::tiny().hidden);
    }

    #[test]
    fn multilayer_stack_creates_per_layer_kernels() {
        let config = NmtConfig {
            layers: 3,
            ..NmtConfig::tiny()
        };
        let model = NmtModel::build(config).unwrap();
        let g = &model.built.graph;
        for l in 0..3 {
            assert!(g.find_variable(&format!("nmt/enc/l{l}/kernel")).is_some());
            assert!(g.find_variable(&format!("nmt/dec/l{l}/kernel")).is_some());
        }
    }

    #[test]
    fn nmt_forward_backward_is_finite_and_complete() {
        for config in [
            NmtConfig::tiny(),
            NmtConfig {
                layers: 2,
                ..NmtConfig::tiny()
            },
        ] {
            let model = NmtModel::build(config).unwrap();
            let g = &model.built.graph;
            let src = ZipfCorpus::new(model.config.src_vocab, 1.0);
            let tgt = ZipfCorpus::new(model.config.tgt_vocab, 1.0);
            let feed = model.feed(&src, &tgt, &mut DetRng::seed(2));
            let mut store = VarStore::init(g, &mut DetRng::seed(1));
            let acts = Session::new(g).forward(&feed, &mut store).unwrap();
            assert!(acts.scalar(model.built.loss).unwrap().is_finite());
            let grads = backward(g, &acts, model.built.loss).unwrap();
            assert_eq!(grads.len(), g.variables().len());
            assert!(grads.get(&model.emb_enc).unwrap().is_sparse());
            assert!(grads.get(&model.emb_dec).unwrap().is_sparse());
        }
    }

    #[test]
    fn attention_weights_gradients_flow_to_encoder() {
        // With attention, the encoder embedding must receive gradient
        // through the attention path even for source tokens whose final
        // encoder state is otherwise dominated by later steps.
        let model = NmtModel::build(NmtConfig::tiny()).unwrap();
        let g = &model.built.graph;
        let src = ZipfCorpus::new(model.config.src_vocab, 1.0);
        let tgt = ZipfCorpus::new(model.config.tgt_vocab, 1.0);
        let feed = model.feed(&src, &tgt, &mut DetRng::seed(9));
        let mut store = VarStore::init(g, &mut DetRng::seed(1));
        let acts = Session::new(g).forward(&feed, &mut store).unwrap();
        let grads = backward(g, &acts, model.built.loss).unwrap();
        let enc_grad = grads.get(&model.emb_enc).unwrap();
        match enc_grad {
            parallax_tensor::sparse::Grad::Sparse(s) => {
                assert!(
                    s.values().l2_norm() > 0.0,
                    "attention path carries gradient"
                );
            }
            _ => panic!("encoder embedding gradient must stay sparse"),
        }
    }

    #[test]
    fn nmt_trains_down_on_a_fixed_batch() {
        use parallax_dataflow::{Optimizer, Sgd};
        let model = NmtModel::build(NmtConfig::tiny()).unwrap();
        let g = &model.built.graph;
        let src = ZipfCorpus::new(model.config.src_vocab, 1.0);
        let tgt = ZipfCorpus::new(model.config.tgt_vocab, 1.0);
        let feed = model.feed(&src, &tgt, &mut DetRng::seed(4));
        let mut store = VarStore::init(g, &mut DetRng::seed(1));
        let mut opt = Sgd::new(1.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let acts = Session::new(g).forward(&feed, &mut store).unwrap();
            last = acts.scalar(model.built.loss).unwrap();
            first.get_or_insert(last);
            let grads = backward(g, &acts, model.built.loss).unwrap();
            for (var, grad) in grads {
                opt.apply(var.index() as u64, store.get_mut(var).unwrap(), &grad)
                    .unwrap();
            }
        }
        assert!(last < first.unwrap() * 0.7, "loss {first:?} -> {last}");
    }
}
