//! Extended topology with one server endpoint per machine.
//!
//! Parallax "launches a (parameter) server on each machine and a worker
//! on each GPU" (Section 4.3). Communication ranks are laid out
//! machine-major with each machine's server occupying the rank after its
//! workers: machine `m` with `g` GPUs holds worker ranks
//! `off .. off+g` and server rank `off+g`.

use parallax_comm::Topology;

use crate::{PsError, Result};

/// Rank layout for a PS (or hybrid) job: workers plus per-machine servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsTopology {
    comm: Topology,
    gpus_per_machine: Vec<usize>,
    /// Rank offsets of each machine in the extended layout.
    offsets: Vec<usize>,
}

impl PsTopology {
    /// Builds the extended topology from per-machine GPU counts.
    pub fn new(gpus_per_machine: Vec<usize>) -> Result<Self> {
        let comm = Topology::new(gpus_per_machine.iter().map(|&g| g + 1).collect())
            .map_err(PsError::Comm)?;
        let mut offsets = Vec::with_capacity(gpus_per_machine.len());
        let mut off = 0usize;
        for &g in &gpus_per_machine {
            offsets.push(off);
            off += g + 1;
        }
        Ok(PsTopology {
            comm,
            gpus_per_machine,
            offsets,
        })
    }

    /// Homogeneous cluster.
    pub fn uniform(machines: usize, gpus: usize) -> Result<Self> {
        PsTopology::new(vec![gpus; machines])
    }

    /// The underlying communication topology (workers + servers).
    pub fn comm(&self) -> &Topology {
        &self.comm
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.gpus_per_machine.len()
    }

    /// Total number of workers (GPUs).
    pub fn num_workers(&self) -> usize {
        self.gpus_per_machine.iter().sum()
    }

    /// Total endpoints (workers + servers).
    pub fn num_endpoints(&self) -> usize {
        self.num_workers() + self.num_machines()
    }

    /// The server's communication rank on `machine`.
    pub fn server_rank(&self, machine: usize) -> usize {
        self.offsets[machine] + self.gpus_per_machine[machine]
    }

    /// All worker communication ranks, machine-major.
    pub fn worker_ranks(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_workers());
        for (m, &g) in self.gpus_per_machine.iter().enumerate() {
            out.extend(self.offsets[m]..self.offsets[m] + g);
        }
        out
    }

    /// Worker ranks on one machine.
    pub fn workers_of(&self, machine: usize) -> Vec<usize> {
        (self.offsets[machine]..self.offsets[machine] + self.gpus_per_machine[machine]).collect()
    }

    /// True when `rank` is a server endpoint.
    pub fn is_server(&self, rank: usize) -> bool {
        (0..self.num_machines()).any(|m| self.server_rank(m) == rank)
    }

    /// The machine hosting communication rank `rank`.
    pub fn machine_of(&self, rank: usize) -> Result<usize> {
        self.comm.machine_of(rank).map_err(PsError::Comm)
    }

    /// The position of a worker rank in [`PsTopology::worker_ranks`]
    /// order (machine-major). This is the slot index accumulators use,
    /// and the ring position for the AllReduce fold.
    pub fn worker_position(&self, rank: usize) -> Result<usize> {
        let machine = self.machine_of(rank)?;
        let off = self.offsets[machine];
        if rank >= off + self.gpus_per_machine[machine] {
            return Err(PsError::Protocol(format!(
                "rank {rank} is not a worker rank"
            )));
        }
        let before: usize = self.gpus_per_machine[..machine].iter().sum();
        Ok(before + (rank - off))
    }

    /// The *local chief* worker of a machine — the lowest worker rank,
    /// responsible for local aggregation.
    pub fn local_chief(&self, machine: usize) -> usize {
        self.offsets[machine]
    }

    /// The global chief worker (lowest worker rank overall), which
    /// triggers variable updates (Section 5).
    pub fn chief(&self) -> usize {
        self.local_chief(0)
    }

    /// GPUs per machine.
    pub fn gpus_per_machine(&self) -> &[usize] {
        &self.gpus_per_machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_places_server_last_per_machine() {
        let t = PsTopology::uniform(2, 3).unwrap();
        assert_eq!(t.num_endpoints(), 8);
        assert_eq!(t.worker_ranks(), vec![0, 1, 2, 4, 5, 6]);
        assert_eq!(t.server_rank(0), 3);
        assert_eq!(t.server_rank(1), 7);
        assert!(t.is_server(3));
        assert!(!t.is_server(2));
    }

    #[test]
    fn server_and_workers_share_machine() {
        let t = PsTopology::uniform(2, 2).unwrap();
        assert_eq!(t.machine_of(t.server_rank(1)).unwrap(), 1);
        assert_eq!(t.machine_of(4).unwrap(), 1);
        assert_eq!(t.workers_of(1), vec![3, 4]);
    }

    #[test]
    fn chiefs() {
        let t = PsTopology::new(vec![2, 3]).unwrap();
        assert_eq!(t.chief(), 0);
        assert_eq!(t.local_chief(1), 3);
    }

    #[test]
    fn heterogeneous_offsets() {
        let t = PsTopology::new(vec![1, 4]).unwrap();
        assert_eq!(t.server_rank(0), 1);
        assert_eq!(t.worker_ranks(), vec![0, 2, 3, 4, 5]);
        assert_eq!(t.server_rank(1), 6);
    }

    #[test]
    fn worker_positions_follow_worker_ranks_order() {
        let t = PsTopology::new(vec![2, 3]).unwrap();
        for (i, r) in t.worker_ranks().into_iter().enumerate() {
            assert_eq!(t.worker_position(r).unwrap(), i);
        }
        // Server ranks are not worker positions.
        assert!(t.worker_position(t.server_rank(0)).is_err());
        assert!(t.worker_position(t.server_rank(1)).is_err());
    }
}
