//! Wire protocol: request headers and tag layout.
//!
//! All worker->server requests of one iteration travel under a single
//! *request tag* and carry a packed header identifying the request kind
//! and target `(variable, partition)`. Server->worker responses use
//! per-target *response tags* so a worker can block on exactly the
//! response it needs.
//!
//! Packing layout (64 bits): `kind:6 | var:14 | part:14 | iter:30`.

use crate::{PsError, Result};

/// Request/response kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Worker pulls a full dense variable. Body: `Control(0)`.
    PullDense = 1,
    /// Worker pulls rows of one partition. Body: `Ids(local rows)`.
    PullSparse = 2,
    /// Worker (or local chief) pushes a dense gradient. Body: `Tensor`.
    PushDense = 3,
    /// Worker (or local chief) pushes a sparse gradient partition.
    /// Body: `Slices` (indices already partition-local).
    PushSparse = 4,
    /// The chief worker triggers the read-aggregated-gradient-and-update
    /// step for a variable (Section 5). Body: `Control(0)`.
    ChiefUpdate = 5,
    /// Server notifies workers that a shard's update is applied (the
    /// shared-queue notification). Body: `Control(0)`.
    UpdateDone = 6,
    /// Worker reads the shard's last aggregated gradient (saved by the
    /// update step) for tracing or global-norm clipping (Section 5).
    /// Body: `Control(0)`; response: `Slices` or `Tensor`.
    ReadAgg = 7,
    /// The chief fetches a shard's current (post-update) value for
    /// checkpointing. Body: `Control(0)`; response: `Tensor`.
    ///
    /// Note on traffic classing: `8 << 58` carries into the tag's top
    /// nibble, so FetchShard response tags read back as `0xA...` —
    /// `TrafficClass::from_tag` maps that nibble to PS traffic.
    FetchShard = 8,
}

impl ReqKind {
    fn from_bits(bits: u64) -> Result<Self> {
        Ok(match bits {
            1 => ReqKind::PullDense,
            2 => ReqKind::PullSparse,
            3 => ReqKind::PushDense,
            4 => ReqKind::PushSparse,
            5 => ReqKind::ChiefUpdate,
            6 => ReqKind::UpdateDone,
            7 => ReqKind::ReadAgg,
            8 => ReqKind::FetchShard,
            other => return Err(PsError::Protocol(format!("bad request kind {other}"))),
        })
    }
}

const VAR_BITS: u64 = 14;
const PART_BITS: u64 = 14;
const ITER_BITS: u64 = 30;

/// Maximum variable index representable in a header.
pub const MAX_VARS: usize = (1 << VAR_BITS) - 1;
/// Maximum partition index representable in a header.
pub const MAX_PARTS: usize = (1 << PART_BITS) - 1;

/// Packs a header word.
pub fn pack(kind: ReqKind, var: usize, part: usize, iter: u64) -> u64 {
    debug_assert!(var <= MAX_VARS, "variable index {var} exceeds header space");
    debug_assert!(
        part <= MAX_PARTS,
        "partition index {part} exceeds header space"
    );
    let iter = iter & ((1 << ITER_BITS) - 1);
    ((kind as u64) << (VAR_BITS + PART_BITS + ITER_BITS))
        | ((var as u64) << (PART_BITS + ITER_BITS))
        | ((part as u64) << ITER_BITS)
        | iter
}

/// Unpacks a header word into `(kind, var, part, iter)`.
pub fn unpack(header: u64) -> Result<(ReqKind, usize, usize, u64)> {
    let kind = ReqKind::from_bits(header >> (VAR_BITS + PART_BITS + ITER_BITS))?;
    let var = ((header >> (PART_BITS + ITER_BITS)) & ((1 << VAR_BITS) - 1)) as usize;
    let part = ((header >> ITER_BITS) & ((1 << PART_BITS) - 1)) as usize;
    let iter = header & ((1 << ITER_BITS) - 1);
    Ok((kind, var, part, iter))
}

/// The single tag all requests of iteration `iter` travel under.
pub fn request_tag(iter: u64) -> u64 {
    0x4000_0000_0000_0000 | (iter & ((1 << ITER_BITS) - 1))
}

/// The tag of a response (or notification) for `(kind, var, part)` in
/// iteration `iter`.
pub fn response_tag(kind: ReqKind, var: usize, part: usize, iter: u64) -> u64 {
    0x8000_0000_0000_0000 | pack(kind, var, part, iter)
}

/// Tag space for worker-side local aggregation of a variable (intra-
/// machine reduce/gather), disjoint from request/response tags.
pub fn local_agg_tag(var: usize, iter: u64) -> u64 {
    0x2000_0000_0000_0000 | pack(ReqKind::PushDense, var, 0, iter)
}

/// Tag space for AllReduce collectives per variable, disjoint from PS tags.
pub fn allreduce_tag(var: usize, iter: u64) -> u64 {
    0x1000_0000_0000_0000 | pack(ReqKind::PushDense, var, 0, iter)
}

const FLOW_RANK_BITS: u64 = 10;
const FLOW_ITER_BITS: u64 = 20;

/// Chrome-trace flow-correlation id linking a worker's push-request
/// span to the server span that serves it. Both sides can compute it
/// independently: the pusher knows its own rank, the server reads the
/// sender from the transport envelope. Layout:
/// `kind:6 | var:14 | part:14 | from:10 | iter:20` — unique while
/// sender ranks stay below 1024 and iterations below 2^20 (traced runs
/// are far smaller than either bound).
pub fn flow_id(kind: ReqKind, var: usize, part: usize, from: usize, iter: u64) -> u64 {
    let from = (from as u64) & ((1 << FLOW_RANK_BITS) - 1);
    let iter = iter & ((1 << FLOW_ITER_BITS) - 1);
    ((kind as u64) << (VAR_BITS + PART_BITS + FLOW_RANK_BITS + FLOW_ITER_BITS))
        | ((var as u64) << (PART_BITS + FLOW_RANK_BITS + FLOW_ITER_BITS))
        | ((part as u64) << (FLOW_RANK_BITS + FLOW_ITER_BITS))
        | (from << FLOW_ITER_BITS)
        | iter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (kind, var, part, iter) in [
            (ReqKind::PullDense, 0usize, 0usize, 0u64),
            (ReqKind::PullSparse, 17, 255, 12345),
            (ReqKind::PushSparse, MAX_VARS, MAX_PARTS, (1 << 30) - 1),
            (ReqKind::UpdateDone, 1, 2, 3),
            (ReqKind::FetchShard, 3, 1, 9),
        ] {
            let h = pack(kind, var, part, iter);
            let (k2, v2, p2, i2) = unpack(h).unwrap();
            assert_eq!((k2, v2, p2, i2), (kind, var, part, iter));
        }
    }

    #[test]
    fn bad_kind_rejected() {
        assert!(unpack(0).is_err());
        assert!(unpack(u64::MAX).is_err());
    }

    #[test]
    fn tag_spaces_are_disjoint() {
        let r = request_tag(5);
        let resp = response_tag(ReqKind::PullDense, 1, 0, 5);
        let agg = local_agg_tag(1, 5);
        let ar = allreduce_tag(1, 5);
        let tags = [r, resp, agg, ar];
        for (i, a) in tags.iter().enumerate() {
            for (j, b) in tags.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn flow_ids_distinguish_sender_and_target() {
        let a = flow_id(ReqKind::PushSparse, 1, 0, 0, 7);
        let b = flow_id(ReqKind::PushSparse, 1, 0, 1, 7);
        let c = flow_id(ReqKind::PushSparse, 1, 1, 0, 7);
        let d = flow_id(ReqKind::PushSparse, 1, 0, 0, 8);
        let e = flow_id(ReqKind::PushDense, 1, 0, 0, 7);
        let ids = [a, b, c, d, e];
        for (i, x) in ids.iter().enumerate() {
            for (j, y) in ids.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "ids {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn distinct_targets_distinct_response_tags() {
        let a = response_tag(ReqKind::PullSparse, 1, 0, 7);
        let b = response_tag(ReqKind::PullSparse, 1, 1, 7);
        let c = response_tag(ReqKind::PullSparse, 2, 0, 7);
        let d = response_tag(ReqKind::PullSparse, 1, 0, 8);
        assert!(a != b && a != c && a != d && b != c);
    }
}
