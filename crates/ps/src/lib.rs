#![warn(missing_docs)]

//! Parameter Server architecture.
//!
//! Implements the PS half of Parallax's hybrid design (Sections 3-5):
//! one server process per machine holding variable shards, workers
//! pulling values and pushing gradients, gradient accumulators on
//! servers, optional per-machine *local aggregation* with a local chief
//! worker, chief-triggered updates with shared-queue-style notification,
//! and partitioned sparse variables with balanced placement.
//!
//! The crate provides both the paper's baselines and its optimized PS:
//!
//! * **NaivePS** (the TF-PS baseline): every variable lives on servers,
//!   round-robin placement, every worker pushes its own gradients.
//! * **OptPS**: local aggregation (one push per machine), byte-balanced
//!   greedy placement, aggregation and update ops colocated with the
//!   variable's server.

pub mod accumulator;
pub mod client;
pub mod error;
pub mod placement;
pub mod plan;
pub mod protocol;
pub mod server;
pub mod topology;

pub use client::{locally_aggregate, PsClient, PsWorkerContext};
pub use error::PsError;
pub use placement::PlacementStrategy;
pub use plan::{RowPartition, ShardingPlan, VarPlacement};
pub use server::{Server, ServerConfig};
pub use topology::PsTopology;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, PsError>;
