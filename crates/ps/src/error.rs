//! Parameter Server errors.

use std::fmt;

use parallax_comm::CommError;
use parallax_dataflow::DataflowError;
use parallax_tensor::TensorError;

/// Errors from PS planning, serving and client protocol handling.
#[derive(Debug, Clone, PartialEq)]
pub enum PsError {
    /// Underlying transport failure.
    Comm(CommError),
    /// Underlying dataflow failure.
    Dataflow(DataflowError),
    /// Underlying tensor failure.
    Tensor(TensorError),
    /// The sharding plan is inconsistent with the request.
    Plan(String),
    /// A protocol invariant was violated.
    Protocol(String),
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::Comm(e) => write!(f, "comm: {e}"),
            PsError::Dataflow(e) => write!(f, "dataflow: {e}"),
            PsError::Tensor(e) => write!(f, "tensor: {e}"),
            PsError::Plan(msg) => write!(f, "plan: {msg}"),
            PsError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for PsError {}

impl From<CommError> for PsError {
    fn from(e: CommError) -> Self {
        PsError::Comm(e)
    }
}

impl From<DataflowError> for PsError {
    fn from(e: DataflowError) -> Self {
        PsError::Dataflow(e)
    }
}

impl From<TensorError> for PsError {
    fn from(e: TensorError) -> Self {
        PsError::Tensor(e)
    }
}
