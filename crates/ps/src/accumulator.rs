//! Server-side gradient accumulators.
//!
//! Parallax "place\[s\] accumulators on servers to aggregate the gradients
//! of sparse variables, where each accumulator handles gradients of a
//! single sparse variable" (Section 5). An accumulator knows how many
//! pushes to expect per synchronous step (all workers, or one local
//! chief per machine under local aggregation) and releases the aggregate
//! exactly once when complete.
//!
//! Both accumulators are *positional*: a push names the slot it fills
//! (the pusher's worker position, or its machine under local
//! aggregation) and the release folds the slots in a canonical order
//! that is independent of arrival order. This is what makes every
//! placement strategy bitwise interchangeable:
//!
//! * dense slots fold through [`ring_reduce_reference`], the exact
//!   per-chunk association the ring AllReduce produces, so a variable
//!   moved between AllReduce and a PS shard keeps identical bits;
//! * sparse slots fold machine-blocked — coalesce each machine's slots
//!   in slot order, then coalesce the per-machine subtotals in machine
//!   order — the only association compatible with local aggregation
//!   both on (chiefs pre-sum their machine) and off.

use parallax_comm::collectives::ring_reduce_reference;
use parallax_tensor::{IndexedSlices, Tensor};

use crate::{PsError, Result};

/// Accumulates dense gradient pushes positionally; the release replays
/// the ring-AllReduce fold over the slots so the aggregate is bitwise
/// identical to what a ring over the same contributions would produce.
#[derive(Debug, Clone)]
pub struct DenseAccumulator {
    slots: Vec<Option<Tensor>>,
    received: usize,
}

impl DenseAccumulator {
    /// An accumulator expecting one push per slot position per step.
    pub fn new(expected: usize) -> Self {
        DenseAccumulator {
            slots: vec![None; expected],
            received: 0,
        }
    }

    /// Adds the push for slot `position`; returns the ring-ordered sum
    /// when the step is complete and resets for the next step.
    pub fn push(&mut self, position: usize, grad: Tensor) -> Result<Option<Tensor>> {
        if position >= self.slots.len() {
            return Err(PsError::Protocol(format!(
                "dense push position {position} out of range (expected {})",
                self.slots.len()
            )));
        }
        if self.slots[position].is_some() {
            return Err(PsError::Protocol("dense accumulator overfilled".into()));
        }
        if let Some(first) = self.slots.iter().flatten().next() {
            if first.shape() != grad.shape() {
                return Err(PsError::Protocol(format!(
                    "dense push shape {:?} != accumulated {:?}",
                    grad.shape(),
                    first.shape()
                )));
            }
        }
        self.slots[position] = Some(grad);
        self.received += 1;
        if self.received < self.slots.len() {
            return Ok(None);
        }
        self.received = 0;
        let parts: Vec<Tensor> = self
            .slots
            .iter_mut()
            .map(|s| s.take().expect("all slots filled"))
            .collect();
        let views: Vec<&[f32]> = parts.iter().map(|t| t.data()).collect();
        let folded = ring_reduce_reference(&views).map_err(|e| PsError::Protocol(e.to_string()))?;
        let shape = parts[0].shape().clone();
        Ok(Some(Tensor::new(shape, folded).map_err(PsError::Tensor)?))
    }

    /// True when mid-step.
    pub fn is_pending(&self) -> bool {
        self.received > 0
    }

    /// Pushes expected per step.
    pub fn expected(&self) -> usize {
        self.slots.len()
    }
}

/// Accumulates sparse gradient pushes positionally, coalescing (merging
/// duplicate row indices) on release in the canonical machine-blocked
/// order: each machine's slots coalesce first (ascending slot order),
/// then the per-machine subtotals coalesce in machine order.
#[derive(Debug, Clone)]
pub struct SparseAccumulator {
    machine_of: Vec<usize>,
    slots: Vec<Option<IndexedSlices>>,
    received: usize,
}

impl SparseAccumulator {
    /// An accumulator with one slot per pusher, each its own machine
    /// block (correct when each pusher already holds a full machine
    /// subtotal — the local-aggregation arrangement — or when every
    /// machine contributes exactly one pusher).
    pub fn new(expected: usize) -> Self {
        SparseAccumulator::grouped((0..expected).collect())
    }

    /// An accumulator whose slot `i` belongs to machine `machine_of[i]`.
    /// Slots must be machine-major (non-decreasing machine ids), the
    /// order `PsTopology::worker_ranks` yields.
    pub fn grouped(machine_of: Vec<usize>) -> Self {
        debug_assert!(
            machine_of.windows(2).all(|w| w[0] <= w[1]),
            "sparse accumulator slots must be machine-major"
        );
        let slots = vec![None; machine_of.len()];
        SparseAccumulator {
            machine_of,
            slots,
            received: 0,
        }
    }

    /// Adds the push for slot `position`; returns the machine-blocked
    /// coalesced aggregate when complete.
    pub fn push(&mut self, position: usize, grad: IndexedSlices) -> Result<Option<IndexedSlices>> {
        if position >= self.slots.len() {
            return Err(PsError::Protocol(format!(
                "sparse push position {position} out of range (expected {})",
                self.slots.len()
            )));
        }
        if self.slots[position].is_some() {
            return Err(PsError::Protocol("sparse accumulator overfilled".into()));
        }
        self.slots[position] = Some(grad);
        self.received += 1;
        if self.received < self.slots.len() {
            return Ok(None);
        }
        self.received = 0;
        let parts: Vec<IndexedSlices> = self
            .slots
            .iter_mut()
            .map(|s| s.take().expect("all slots filled"))
            .collect();
        // Canonical machine-blocked fold: each machine's contributions
        // coalesce in slot order, then the machine subtotals coalesce in
        // machine order. A subtotal pushed by a local chief is already
        // sorted-unique, and coalescing is idempotent on such input, so
        // pre-aggregated pushes pass through the inner level unchanged.
        Ok(Some(IndexedSlices::coalesce_grouped(
            &parts,
            &self.machine_of,
        )?))
    }

    /// True when mid-step.
    pub fn is_pending(&self) -> bool {
        self.received > 0
    }

    /// Pushes expected per step.
    pub fn expected(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_releases_sum_exactly_once() {
        let mut acc = DenseAccumulator::new(3);
        assert!(acc.push(0, Tensor::full([2], 1.0)).unwrap().is_none());
        assert!(acc.push(2, Tensor::full([2], 2.0)).unwrap().is_none());
        let sum = acc.push(1, Tensor::full([2], 3.0)).unwrap().unwrap();
        assert_eq!(sum.data(), &[6.0, 6.0]);
        assert!(!acc.is_pending());
        // Next step starts fresh.
        assert!(acc.push(0, Tensor::full([2], 1.0)).unwrap().is_none());
        assert!(acc.is_pending());
    }

    #[test]
    fn dense_release_is_arrival_order_independent() {
        // Non-associative values: the release must fold in ring order,
        // not arrival order, so any arrival permutation gives the same
        // bits.
        let grads = [
            Tensor::new([3], vec![0.1, 1e8, 7.25]).unwrap(),
            Tensor::new([3], vec![0.2, -1e8, 0.5]).unwrap(),
            Tensor::new([3], vec![0.3, 1.0, -0.125]).unwrap(),
        ];
        let mut reference: Option<Vec<u32>> = None;
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2], [2, 0, 1]] {
            let mut acc = DenseAccumulator::new(3);
            let mut out = None;
            for &pos in &order {
                out = acc.push(pos, grads[pos].clone()).unwrap();
            }
            let bits: Vec<u32> = out.unwrap().data().iter().map(|f| f.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => assert_eq!(&bits, want, "order {order:?}"),
            }
        }
    }

    #[test]
    fn dense_single_pusher_releases_immediately() {
        let mut acc = DenseAccumulator::new(1);
        let sum = acc.push(0, Tensor::full([1], 5.0)).unwrap().unwrap();
        assert_eq!(sum.data(), &[5.0]);
    }

    #[test]
    fn sparse_coalesces_across_pushers() {
        let mut acc = SparseAccumulator::new(2);
        let a = IndexedSlices::new(vec![1, 3], Tensor::full([2, 2], 1.0), 5).unwrap();
        let b = IndexedSlices::new(vec![3], Tensor::full([1, 2], 2.0), 5).unwrap();
        assert!(acc.push(0, a).unwrap().is_none());
        let merged = acc.push(1, b).unwrap().unwrap();
        assert_eq!(merged.indices(), &[1, 3]);
        assert_eq!(merged.values().data(), &[1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn sparse_grouped_matches_preaggregated_machines() {
        // Two machines × two workers each; a row touched twice on the
        // second machine. The grouped release must equal coalescing each
        // machine first (what local chiefs do), not a flat fold.
        let mk = |v: f32| IndexedSlices::new(vec![2], Tensor::full([1, 1], v), 4).unwrap();
        let parts = [mk(0.1), mk(1e8), mk(-1e8), mk(0.3)];
        let mut grouped = SparseAccumulator::grouped(vec![0, 0, 1, 1]);
        let mut out = None;
        for (i, p) in parts.iter().enumerate() {
            out = grouped.push(i, p.clone()).unwrap();
        }
        let grouped_bits: Vec<u32> = out
            .unwrap()
            .values()
            .data()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        // Pre-aggregate per machine, then push one subtotal per machine.
        let m0 = IndexedSlices::coalesce_parts(&parts[0..2]).unwrap();
        let m1 = IndexedSlices::coalesce_parts(&parts[2..4]).unwrap();
        let mut chiefs = SparseAccumulator::new(2);
        assert!(chiefs.push(0, m0).unwrap().is_none());
        let merged = chiefs.push(1, m1).unwrap().unwrap();
        let chief_bits: Vec<u32> = merged.values().data().iter().map(|f| f.to_bits()).collect();
        assert_eq!(grouped_bits, chief_bits);
    }

    #[test]
    fn completed_accumulators_reset_for_the_next_step() {
        let mut acc = DenseAccumulator::new(1);
        assert!(acc.push(0, Tensor::zeros([1])).unwrap().is_some());
        // Completed and reset; the next step starts a fresh sum.
        assert!(acc.push(0, Tensor::zeros([1])).unwrap().is_some());
        let mut sparse = SparseAccumulator::new(1);
        assert!(sparse
            .push(0, IndexedSlices::empty(4, 1))
            .unwrap()
            .is_some());
        assert!(sparse
            .push(0, IndexedSlices::empty(4, 1))
            .unwrap()
            .is_some());
    }

    #[test]
    fn dense_shape_mismatch_surfaces() {
        let mut acc = DenseAccumulator::new(2);
        acc.push(0, Tensor::zeros([2])).unwrap();
        assert!(acc.push(1, Tensor::zeros([3])).is_err());
    }

    #[test]
    fn duplicate_position_is_a_protocol_error() {
        let mut acc = DenseAccumulator::new(2);
        acc.push(1, Tensor::zeros([2])).unwrap();
        assert!(acc.push(1, Tensor::zeros([2])).is_err());
        let mut sparse = SparseAccumulator::new(2);
        sparse.push(0, IndexedSlices::empty(4, 1)).unwrap();
        assert!(sparse.push(0, IndexedSlices::empty(4, 1)).is_err());
    }
}
