//! Server-side gradient accumulators.
//!
//! Parallax "place\[s\] accumulators on servers to aggregate the gradients
//! of sparse variables, where each accumulator handles gradients of a
//! single sparse variable" (Section 5). An accumulator knows how many
//! pushes to expect per synchronous step (all workers, or one local
//! chief per machine under local aggregation) and releases the aggregate
//! exactly once when complete.

use parallax_tensor::{ops, IndexedSlices, Tensor};

use crate::{PsError, Result};

/// Accumulates dense gradient pushes by elementwise sum.
#[derive(Debug, Clone)]
pub struct DenseAccumulator {
    expected: usize,
    received: usize,
    sum: Option<Tensor>,
}

impl DenseAccumulator {
    /// An accumulator expecting `expected` pushes per step.
    pub fn new(expected: usize) -> Self {
        DenseAccumulator {
            expected,
            received: 0,
            sum: None,
        }
    }

    /// Adds one push; returns the sum when the step is complete and
    /// resets for the next step.
    pub fn push(&mut self, grad: Tensor) -> Result<Option<Tensor>> {
        if self.received >= self.expected {
            return Err(PsError::Protocol("dense accumulator overfilled".into()));
        }
        match &mut self.sum {
            Some(acc) => ops::axpy(1.0, &grad, acc)?,
            None => self.sum = Some(grad),
        }
        self.received += 1;
        if self.received == self.expected {
            self.received = 0;
            Ok(self.sum.take())
        } else {
            Ok(None)
        }
    }

    /// True when mid-step.
    pub fn is_pending(&self) -> bool {
        self.received > 0
    }

    /// Pushes expected per step.
    pub fn expected(&self) -> usize {
        self.expected
    }
}

/// Accumulates sparse gradient pushes by concatenation, coalescing
/// (merging duplicate row indices) on release.
#[derive(Debug, Clone)]
pub struct SparseAccumulator {
    expected: usize,
    parts: Vec<IndexedSlices>,
}

impl SparseAccumulator {
    /// An accumulator expecting `expected` pushes per step.
    pub fn new(expected: usize) -> Self {
        SparseAccumulator {
            expected,
            parts: Vec::new(),
        }
    }

    /// Adds one push; returns the coalesced aggregate when complete.
    pub fn push(&mut self, grad: IndexedSlices) -> Result<Option<IndexedSlices>> {
        if self.parts.len() >= self.expected {
            return Err(PsError::Protocol("sparse accumulator overfilled".into()));
        }
        self.parts.push(grad);
        if self.parts.len() == self.expected {
            // Fused merge: sorts (index, part, slot) once and writes the
            // coalesced rows directly, skipping the intermediate
            // concatenated slice set.
            let merged = IndexedSlices::coalesce_parts(&self.parts)?;
            self.parts.clear();
            Ok(Some(merged))
        } else {
            Ok(None)
        }
    }

    /// True when mid-step.
    pub fn is_pending(&self) -> bool {
        !self.parts.is_empty()
    }

    /// Pushes expected per step.
    pub fn expected(&self) -> usize {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_releases_sum_exactly_once() {
        let mut acc = DenseAccumulator::new(3);
        assert!(acc.push(Tensor::full([2], 1.0)).unwrap().is_none());
        assert!(acc.push(Tensor::full([2], 2.0)).unwrap().is_none());
        let sum = acc.push(Tensor::full([2], 3.0)).unwrap().unwrap();
        assert_eq!(sum.data(), &[6.0, 6.0]);
        assert!(!acc.is_pending());
        // Next step starts fresh.
        assert!(acc.push(Tensor::full([2], 1.0)).unwrap().is_none());
        assert!(acc.is_pending());
    }

    #[test]
    fn dense_single_pusher_releases_immediately() {
        let mut acc = DenseAccumulator::new(1);
        let sum = acc.push(Tensor::full([1], 5.0)).unwrap().unwrap();
        assert_eq!(sum.data(), &[5.0]);
    }

    #[test]
    fn sparse_coalesces_across_pushers() {
        let mut acc = SparseAccumulator::new(2);
        let a = IndexedSlices::new(vec![1, 3], Tensor::full([2, 2], 1.0), 5).unwrap();
        let b = IndexedSlices::new(vec![3], Tensor::full([1, 2], 2.0), 5).unwrap();
        assert!(acc.push(a).unwrap().is_none());
        let merged = acc.push(b).unwrap().unwrap();
        assert_eq!(merged.indices(), &[1, 3]);
        assert_eq!(merged.values().data(), &[1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn completed_accumulators_reset_for_the_next_step() {
        let mut acc = DenseAccumulator::new(1);
        assert!(acc.push(Tensor::zeros([1])).unwrap().is_some());
        // Completed and reset; the next step starts a fresh sum.
        assert!(acc.push(Tensor::zeros([1])).unwrap().is_some());
        let mut sparse = SparseAccumulator::new(1);
        assert!(sparse.push(IndexedSlices::empty(4, 1)).unwrap().is_some());
        assert!(sparse.push(IndexedSlices::empty(4, 1)).unwrap().is_some());
    }

    #[test]
    fn dense_shape_mismatch_surfaces() {
        let mut acc = DenseAccumulator::new(2);
        acc.push(Tensor::zeros([2])).unwrap();
        assert!(acc.push(Tensor::zeros([3])).is_err());
    }
}
