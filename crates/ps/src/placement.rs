//! Variable-to-server placement strategies.
//!
//! The TF-PS baseline places variables round-robin in declaration order
//! (TensorFlow's `replica_device_setter`), which can leave one server
//! hosting most of the bytes. Parallax's optimized PS balances placement
//! greedily by byte size and spreads the partitions of one variable
//! across servers to parallelize aggregation.

use parallax_dataflow::{Graph, VarId};

use crate::plan::{RowPartition, ShardingPlan, VarPlacement};
use crate::{PsError, Result};

/// How shards are assigned to server machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Round-robin in declaration order (TF `replica_device_setter`).
    RoundRobin,
    /// Greedy balance: heaviest shard first onto the least-loaded server.
    Balanced,
}

/// Per-variable synchronization decision fed into planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncDecision {
    /// Replicate and AllReduce.
    AllReduce,
    /// Host on servers, unpartitioned.
    PsDense,
    /// Host on servers, row-partitioned into the given number of parts.
    PsSparse {
        /// Partition count.
        partitions: usize,
    },
}

/// Builds a [`ShardingPlan`] from per-variable decisions.
///
/// `decisions` must have one entry per graph variable. Sparse partitions
/// are distributed round-robin over machines starting at the variable's
/// first server so consecutive partitions land on different machines
/// (parallelizing aggregation); dense PS variables are placed whole.
pub fn build_plan(
    graph: &Graph,
    decisions: &[SyncDecision],
    machines: usize,
    strategy: PlacementStrategy,
) -> Result<ShardingPlan> {
    if decisions.len() != graph.variables().len() {
        return Err(PsError::Plan(format!(
            "{} decisions for {} variables",
            decisions.len(),
            graph.variables().len()
        )));
    }
    if machines == 0 {
        return Err(PsError::Plan("no machines".into()));
    }

    // Collect shards: (var, part_count, part_index, bytes).
    struct Shard {
        var: usize,
        part: usize,
        bytes: u64,
    }
    let mut partitions: Vec<Option<RowPartition>> = vec![None; decisions.len()];
    let mut shards: Vec<Shard> = Vec::new();
    for (idx, decision) in decisions.iter().enumerate() {
        let def = &graph.variables()[idx];
        match decision {
            SyncDecision::AllReduce => {}
            SyncDecision::PsDense => {
                shards.push(Shard {
                    var: idx,
                    part: 0,
                    bytes: def.byte_size(),
                });
            }
            SyncDecision::PsSparse { partitions: p } => {
                let rows = if def.shape.rank() == 0 {
                    1
                } else {
                    def.shape.dim(0)
                };
                let cols = def.num_elements() / rows.max(1);
                let partition = RowPartition::even(rows, (*p).min(rows.max(1)))?;
                for part in 0..partition.parts() {
                    shards.push(Shard {
                        var: idx,
                        part,
                        bytes: (partition.part_rows(part) * cols * 4) as u64,
                    });
                }
                partitions[idx] = Some(partition);
            }
        }
    }

    // Assign shards to machines.
    let mut assignment: Vec<Vec<usize>> = decisions
        .iter()
        .enumerate()
        .map(|(idx, d)| match d {
            SyncDecision::PsSparse { .. } => {
                vec![0; partitions[idx].as_ref().map(|p| p.parts()).unwrap_or(0)]
            }
            _ => vec![0; 1],
        })
        .collect();
    match strategy {
        PlacementStrategy::RoundRobin => {
            for (i, shard) in shards.iter().enumerate() {
                assignment[shard.var][shard.part] = i % machines;
            }
        }
        PlacementStrategy::Balanced => {
            let mut loads = vec![0u64; machines];
            let mut order: Vec<usize> = (0..shards.len()).collect();
            order.sort_by(|&a, &b| shards[b].bytes.cmp(&shards[a].bytes).then(a.cmp(&b)));
            for i in order {
                let shard = &shards[i];
                let target = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|(m, &l)| (l, *m))
                    .map(|(m, _)| m)
                    .expect("machines > 0");
                assignment[shard.var][shard.part] = target;
                loads[target] += shard.bytes;
            }
        }
    }

    // Materialize placements.
    let placements = decisions
        .iter()
        .enumerate()
        .map(|(idx, d)| match d {
            SyncDecision::AllReduce => VarPlacement::AllReduce,
            SyncDecision::PsDense => VarPlacement::PsDense {
                server: assignment[idx][0],
            },
            SyncDecision::PsSparse { .. } => VarPlacement::PsSparse {
                partition: partitions[idx].clone().expect("partition built above"),
                servers: assignment[idx].clone(),
            },
        })
        .collect();
    Ok(ShardingPlan::from_placements(placements))
}

/// The TF-PS baseline decision vector: every variable on the PS, sparse
/// variables (by usage analysis) partitioned into `sparse_partitions`.
pub fn naive_ps_decisions(graph: &Graph, sparse_partitions: usize) -> Vec<SyncDecision> {
    graph
        .var_ids()
        .map(|v| decision_for(graph, v, sparse_partitions, false))
        .collect()
}

/// The hybrid decision vector: dense variables AllReduce, sparse on PS.
pub fn hybrid_decisions(graph: &Graph, sparse_partitions: usize) -> Vec<SyncDecision> {
    graph
        .var_ids()
        .map(|v| decision_for(graph, v, sparse_partitions, true))
        .collect()
}

fn decision_for(
    graph: &Graph,
    var: VarId,
    sparse_partitions: usize,
    dense_via_ar: bool,
) -> SyncDecision {
    if graph.is_sparse_variable(var) {
        SyncDecision::PsSparse {
            partitions: sparse_partitions,
        }
    } else if dense_via_ar {
        SyncDecision::AllReduce
    } else {
        SyncDecision::PsDense
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_dataflow::graph::{Init, Op, PhKind};
    use parallax_dataflow::VariableDef;

    fn graph() -> Graph {
        let mut g = Graph::new();
        let emb = g
            .variable(VariableDef::new("emb", [100, 8], Init::Glorot))
            .unwrap();
        let _w1 = g
            .variable(VariableDef::new("w1", [8, 8], Init::Glorot))
            .unwrap();
        let _w2 = g
            .variable(VariableDef::new("w2", [8, 4], Init::Glorot))
            .unwrap();
        let ids = g.placeholder("ids", PhKind::Ids).unwrap();
        g.add(Op::Gather { table: emb, ids }).unwrap();
        g
    }

    #[test]
    fn naive_puts_everything_on_ps() {
        let g = graph();
        let d = naive_ps_decisions(&g, 4);
        assert!(matches!(d[0], SyncDecision::PsSparse { partitions: 4 }));
        assert!(matches!(d[1], SyncDecision::PsDense));
        assert!(matches!(d[2], SyncDecision::PsDense));
    }

    #[test]
    fn hybrid_sends_dense_to_allreduce() {
        let g = graph();
        let d = hybrid_decisions(&g, 4);
        assert!(matches!(d[0], SyncDecision::PsSparse { .. }));
        assert!(matches!(d[1], SyncDecision::AllReduce));
    }

    #[test]
    fn round_robin_spreads_partitions() {
        let g = graph();
        let plan = build_plan(
            &g,
            &naive_ps_decisions(&g, 4),
            2,
            PlacementStrategy::RoundRobin,
        )
        .unwrap();
        match plan.placement(g.find_variable("emb").unwrap()).unwrap() {
            VarPlacement::PsSparse { servers, .. } => {
                assert_eq!(servers, &vec![0, 1, 0, 1]);
            }
            other => panic!("unexpected placement {other:?}"),
        }
    }

    #[test]
    fn balanced_equalizes_bytes() {
        let mut g = Graph::new();
        g.variable(VariableDef::new("big", [1000, 10], Init::Glorot))
            .unwrap();
        g.variable(VariableDef::new("small1", [10, 10], Init::Glorot))
            .unwrap();
        g.variable(VariableDef::new("small2", [10, 10], Init::Glorot))
            .unwrap();
        let d = vec![SyncDecision::PsDense; 3];
        let plan = build_plan(&g, &d, 2, PlacementStrategy::Balanced).unwrap();
        // Big variable on one machine, both small ones on the other.
        let big_server = match plan.placement(g.find_variable("big").unwrap()).unwrap() {
            VarPlacement::PsDense { server } => *server,
            _ => unreachable!(),
        };
        for name in ["small1", "small2"] {
            match plan.placement(g.find_variable(name).unwrap()).unwrap() {
                VarPlacement::PsDense { server } => assert_ne!(*server, big_server),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn partitions_capped_at_rows() {
        let mut g = Graph::new();
        let v = g
            .variable(VariableDef::new("tiny", [3, 2], Init::Glorot))
            .unwrap();
        let d = vec![SyncDecision::PsSparse { partitions: 16 }];
        let plan = build_plan(&g, &d, 2, PlacementStrategy::Balanced).unwrap();
        match plan.placement(v).unwrap() {
            VarPlacement::PsSparse { partition, .. } => assert_eq!(partition.parts(), 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn wrong_decision_count_rejected() {
        let g = graph();
        assert!(build_plan(&g, &[], 2, PlacementStrategy::Balanced).is_err());
    }
}
