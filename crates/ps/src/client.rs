//! Worker-side Parameter Server client and the hybrid variable provider.
//!
//! [`PsClient`] speaks the pull/push protocol; [`PsWorkerContext`]
//! bundles a client, a worker's communication endpoint and a local
//! replica store into a [`VarProvider`], so the *same* computation graph
//! executes with each variable served by whichever path the sharding
//! plan chose — the runtime realization of the paper's transformed
//! graph (Figure 6).

use std::collections::HashMap;
use std::sync::Arc;

use parallax_comm::{Endpoint, Payload};
use parallax_dataflow::{DataflowError, VarId, VarProvider, VarStore, VariableDef};
use parallax_tensor::{sparse::Grad, IndexedSlices, Tensor};
use parallax_trace::{span, span_with_flow, FlowPoint, SpanCat};

use crate::plan::{RowPartition, ShardingPlan, VarPlacement};
use crate::protocol::{self, ReqKind};
use crate::topology::PsTopology;
use crate::{PsError, Result};

/// Worker-side protocol client.
#[derive(Debug)]
pub struct PsClient {
    plan: Arc<ShardingPlan>,
    topo: PsTopology,
    iter: u64,
    dense_cache: HashMap<usize, Tensor>,
}

impl PsClient {
    /// Creates a client over a plan and topology.
    pub fn new(plan: Arc<ShardingPlan>, topo: PsTopology) -> Self {
        PsClient {
            plan,
            topo,
            iter: 0,
            dense_cache: HashMap::new(),
        }
    }

    /// The plan this client routes against.
    pub fn plan(&self) -> &ShardingPlan {
        &self.plan
    }

    /// Starts iteration `iter`: clears the per-iteration pull cache.
    pub fn begin_iteration(&mut self, iter: u64) {
        self.iter = iter;
        self.dense_cache.clear();
    }

    fn request(
        &self,
        ep: &Endpoint,
        machine: usize,
        kind: ReqKind,
        var: usize,
        part: usize,
        body: Payload,
    ) -> Result<()> {
        let server = self.topo.server_rank(machine);
        let header = protocol::pack(kind, var, part, self.iter);
        ep.send(
            server,
            protocol::request_tag(self.iter),
            Payload::Packet {
                header,
                body: Box::new(body),
            },
        )?;
        Ok(())
    }

    /// Pulls a full dense variable from its server (cached per iteration,
    /// as each variable read appears once in the transformed graph).
    pub fn pull_dense(&mut self, ep: &mut Endpoint, var: VarId) -> Result<Tensor> {
        if let Some(t) = self.dense_cache.get(&var.index()) {
            return Ok(t.clone());
        }
        let _span = span(SpanCat::Ps, "ps.pull_dense");
        let machine = match self.plan.placement(var)? {
            VarPlacement::PsDense { server } => *server,
            other => {
                return Err(PsError::Plan(format!(
                    "pull_dense on variable with placement {other:?}"
                )))
            }
        };
        self.request(
            ep,
            machine,
            ReqKind::PullDense,
            var.index(),
            0,
            Payload::Control(0),
        )?;
        let server = self.topo.server_rank(machine);
        let t = ep
            .recv(
                server,
                protocol::response_tag(ReqKind::PullDense, var.index(), 0, self.iter),
            )?
            .into_tensor()?;
        self.dense_cache.insert(var.index(), t.clone());
        Ok(t)
    }

    /// Pulls only the rows `ids` of a partitioned sparse variable: ids are
    /// routed to their partitions, each owning server gathers its rows
    /// (transferring `alpha * w` bytes instead of `w`), and the client
    /// reassembles the result in request order.
    pub fn pull_sparse(&mut self, ep: &mut Endpoint, var: VarId, ids: &[usize]) -> Result<Tensor> {
        let _span = span(SpanCat::Ps, "ps.pull_sparse");
        let (partition, servers) = self.sparse_plan(var)?;
        let parts = partition.parts();
        // Route each id to its partition, remembering output positions.
        let mut local_ids: Vec<Vec<usize>> = vec![Vec::new(); parts];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); parts];
        for (pos, &id) in ids.iter().enumerate() {
            let (p, local) = partition.route(id)?;
            local_ids[p].push(local);
            positions[p].push(pos);
        }
        // Request every partition (empty requests included: the server's
        // per-iteration quota counts one request per worker per gather).
        for p in 0..parts {
            self.request(
                ep,
                servers[p],
                ReqKind::PullSparse,
                var.index(),
                p,
                Payload::Ids(local_ids[p].clone()),
            )?;
        }
        // Collect responses and scatter rows into place.
        let mut cols = 0usize;
        let mut rows_by_part: Vec<Tensor> = Vec::with_capacity(parts);
        for (p, &machine) in servers.iter().enumerate().take(parts) {
            let server = self.topo.server_rank(machine);
            let t = ep
                .recv(
                    server,
                    protocol::response_tag(ReqKind::PullSparse, var.index(), p, self.iter),
                )?
                .into_tensor()?;
            let (_, c) = t.shape().as_matrix()?;
            cols = cols.max(c);
            rows_by_part.push(t);
        }
        let mut out = Tensor::zeros([ids.len(), cols]);
        for (p, t) in rows_by_part.iter().enumerate() {
            for (slot, &pos) in positions[p].iter().enumerate() {
                let src = t.row(slot)?;
                out.row_mut(pos)?.copy_from_slice(src);
            }
        }
        Ok(out)
    }

    /// Pushes a gradient for a PS-hosted variable: dense gradients go
    /// whole to the owning server; sparse gradients are split per
    /// partition with indices rebased to partition-local rows.
    pub fn push(&mut self, ep: &mut Endpoint, var: VarId, grad: &Grad) -> Result<()> {
        let _span = span(SpanCat::Ps, "ps.push");
        match (self.plan.placement(var)?.clone(), grad) {
            (VarPlacement::PsDense { server }, Grad::Dense(t)) => {
                // Flow start: pairs with the server's push_dense serve span.
                let _req = span_with_flow(
                    SpanCat::Ps,
                    "ps.push_req",
                    FlowPoint::Start(protocol::flow_id(
                        ReqKind::PushDense,
                        var.index(),
                        0,
                        ep.rank(),
                        self.iter,
                    )),
                );
                self.request(
                    ep,
                    server,
                    ReqKind::PushDense,
                    var.index(),
                    0,
                    Payload::Tensor(Arc::new(t.clone())),
                )?;
                Ok(())
            }
            (VarPlacement::PsSparse { partition, servers }, Grad::Sparse(slices)) => {
                let parts = split_to_partitions(slices, &partition)?;
                for (p, part_grad) in parts.into_iter().enumerate() {
                    let _req = span_with_flow(
                        SpanCat::Ps,
                        "ps.push_req",
                        FlowPoint::Start(protocol::flow_id(
                            ReqKind::PushSparse,
                            var.index(),
                            p,
                            ep.rank(),
                            self.iter,
                        )),
                    );
                    self.request(
                        ep,
                        servers[p],
                        ReqKind::PushSparse,
                        var.index(),
                        p,
                        Payload::Slices(Arc::new(part_grad)),
                    )?;
                }
                Ok(())
            }
            (VarPlacement::AllReduce, _) => {
                Err(PsError::Plan("push on an AllReduce variable".into()))
            }
            (placement, _) => Err(PsError::Plan(format!(
                "gradient kind does not match placement {placement:?}"
            ))),
        }
    }

    /// Chief-only: triggers the read-aggregated-gradients-and-update step
    /// for every shard of `var` (Section 5).
    pub fn chief_update(&mut self, ep: &mut Endpoint, var: VarId) -> Result<()> {
        let _span = span(SpanCat::Ps, "ps.chief_update");
        for (machine, part) in self.shard_targets(var)? {
            self.request(
                ep,
                machine,
                ReqKind::ChiefUpdate,
                var.index(),
                part,
                Payload::Control(0),
            )?;
        }
        Ok(())
    }

    /// Reads back every shard's aggregated gradient for `var` (requires
    /// the server's `serve_aggregates`; call after
    /// [`PsClient::await_update_done`]). Returns one gradient per shard
    /// in partition order — the paper's mechanism for workers that "need
    /// aggregated gradients to trace their status during training or to
    /// compute a global norm of gradients for clipping" (Section 5).
    pub fn read_aggregates(&mut self, ep: &mut Endpoint, var: VarId) -> Result<Vec<Grad>> {
        let _span = span(SpanCat::Ps, "ps.read_agg");
        let mut out = Vec::new();
        for (machine, part) in self.shard_targets(var)? {
            self.request(
                ep,
                machine,
                ReqKind::ReadAgg,
                var.index(),
                part,
                Payload::Control(0),
            )?;
            let server = self.topo.server_rank(machine);
            let payload = ep.recv(
                server,
                protocol::response_tag(ReqKind::ReadAgg, var.index(), part, self.iter),
            )?;
            out.push(match payload {
                // The server may still share the aggregate with other
                // readers; clone only in that case.
                Payload::Tensor(t) => {
                    Grad::Dense(Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
                }
                Payload::Slices(s) => {
                    Grad::Sparse(Arc::try_unwrap(s).unwrap_or_else(|a| (*a).clone()))
                }
                _ => return Err(PsError::Protocol("unexpected ReadAgg payload".into())),
            });
        }
        Ok(out)
    }

    /// Chief-only: fetches the current (post-update) value of a PS
    /// variable for checkpointing, stitching partitioned sparse shards
    /// back into one tensor. Returns `None` for AllReduce variables
    /// (their authoritative copy is the chief's local replica). Call
    /// after [`PsClient::await_update_done`] so every shard is applied.
    ///
    /// The result is row-major over the variable's *rows*; the caller
    /// reshapes to the variable's full shape.
    pub fn fetch_var(&mut self, ep: &mut Endpoint, var: VarId) -> Result<Option<Tensor>> {
        Ok(self
            .fetch_var_with_state(ep, var)?
            .map(|(value, _state)| value))
    }

    /// Like [`PsClient::fetch_var`], but also returns the optimizer's
    /// slot state (velocity/accum) for the variable, stitched across
    /// shards the same way as the value. `None` state means the server's
    /// optimizer is stateless (or some shard had no state yet).
    ///
    /// The server piggybacks the state as a second message under the
    /// fetch response tag; both messages are always consumed, so callers
    /// that discard the state leave no strays in the transport.
    pub fn fetch_var_with_state(
        &mut self,
        ep: &mut Endpoint,
        var: VarId,
    ) -> Result<Option<(Tensor, Option<Tensor>)>> {
        let _span = span(SpanCat::Ps, "ps.fetch_shard");
        let targets = self.shard_targets(var)?;
        if targets.is_empty() {
            return Ok(None);
        }
        for &(machine, part) in &targets {
            self.request(
                ep,
                machine,
                ReqKind::FetchShard,
                var.index(),
                part,
                Payload::Control(0),
            )?;
        }
        let mut tensors = Vec::with_capacity(targets.len());
        let mut states = Vec::with_capacity(targets.len());
        for (machine, part) in targets {
            let server = self.topo.server_rank(machine);
            let tag = protocol::response_tag(ReqKind::FetchShard, var.index(), part, self.iter);
            tensors.push(ep.recv(server, tag)?.into_tensor()?);
            states.push(match ep.recv(server, tag)? {
                Payload::Tensor(t) => Some(Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone())),
                Payload::Control(_) => None,
                _ => {
                    return Err(PsError::Protocol(
                        "unexpected FetchShard state payload".into(),
                    ))
                }
            });
        }
        // All-or-nothing: a slot tensor is only meaningful if every
        // shard contributed its slice.
        let state = if states.iter().all(Option::is_some) {
            let parts: Vec<Tensor> = states.into_iter().map(|s| s.expect("checked")).collect();
            Some(match self.plan.placement(var)? {
                VarPlacement::PsDense { .. } => parts.into_iter().next().expect("one part"),
                VarPlacement::PsSparse { partition, .. } => partition.stitch(&parts)?,
                VarPlacement::AllReduce => unreachable!("empty targets handled above"),
            })
        } else {
            None
        };
        match self.plan.placement(var)? {
            VarPlacement::PsDense { .. } => Ok(Some((tensors.swap_remove(0), state))),
            VarPlacement::PsSparse { partition, .. } => {
                Ok(Some((partition.stitch(&tensors)?, state)))
            }
            VarPlacement::AllReduce => unreachable!("empty targets handled above"),
        }
    }

    /// Blocks until every shard of `var` reports its update applied (the
    /// shared-queue notification read).
    pub fn await_update_done(&mut self, ep: &mut Endpoint, var: VarId) -> Result<()> {
        // Worker-side queueing: time spent blocked on the server's
        // UpdateDone notifications.
        let _span = span(SpanCat::Ps, "ps.await_update");
        for (machine, part) in self.shard_targets(var)? {
            let server = self.topo.server_rank(machine);
            ep.recv(
                server,
                protocol::response_tag(ReqKind::UpdateDone, var.index(), part, self.iter),
            )?
            .into_control()?;
        }
        Ok(())
    }

    /// `(machine, partition)` shard coordinates of a PS variable.
    fn shard_targets(&self, var: VarId) -> Result<Vec<(usize, usize)>> {
        Ok(match self.plan.placement(var)? {
            VarPlacement::AllReduce => vec![],
            VarPlacement::PsDense { server } => vec![(*server, 0)],
            VarPlacement::PsSparse { servers, .. } => servers
                .iter()
                .copied()
                .enumerate()
                .map(|(p, m)| (m, p))
                .collect(),
        })
    }

    fn sparse_plan(&self, var: VarId) -> Result<(RowPartition, Vec<usize>)> {
        match self.plan.placement(var)? {
            VarPlacement::PsSparse { partition, servers } => {
                Ok((partition.clone(), servers.clone()))
            }
            other => Err(PsError::Plan(format!(
                "sparse access to variable with placement {other:?}"
            ))),
        }
    }
}

/// Splits a global-index slice set into per-partition slice sets with
/// partition-local indices and `dense_rows` equal to each partition's row
/// count (so server-side concatenation across workers validates).
pub fn split_to_partitions(
    slices: &IndexedSlices,
    partition: &RowPartition,
) -> Result<Vec<IndexedSlices>> {
    let parts = partition.parts();
    let cols = slices.cols();
    let mut idx: Vec<Vec<usize>> = vec![Vec::new(); parts];
    let mut val: Vec<Vec<f32>> = vec![Vec::new(); parts];
    for (slot, &row) in slices.indices().iter().enumerate() {
        let (p, local) = partition.route(row)?;
        idx[p].push(local);
        val[p].extend_from_slice(&slices.values().data()[slot * cols..(slot + 1) * cols]);
    }
    idx.into_iter()
        .zip(val)
        .enumerate()
        .map(|(p, (indices, data))| {
            let n = indices.len();
            Ok(IndexedSlices::new(
                indices,
                Tensor::new([n, cols], data)?,
                partition.part_rows(p),
            )?)
        })
        .collect()
}

/// Worker-side *local aggregation* (Section 4.3): the workers of one
/// machine combine their gradients for `var` — dense by reduction, sparse
/// by concatenation + coalescing — so that only the machine's local chief
/// pushes to the server, cutting worker->server traffic by the number of
/// GPUs per machine.
///
/// Every worker on the machine must call this; the local chief receives
/// `Some(aggregate)` (and is responsible for the push), others get `None`.
pub fn locally_aggregate(
    ep: &mut Endpoint,
    topo: &PsTopology,
    iter: u64,
    var: VarId,
    grad: &Grad,
) -> Result<Option<Grad>> {
    let _span = span(SpanCat::Ps, "ps.local_agg");
    let machine = topo.machine_of(ep.rank())?;
    let peers = topo.workers_of(machine);
    let chief = topo.local_chief(machine);
    let tag = protocol::local_agg_tag(var.index(), iter);
    match grad {
        Grad::Dense(t) => {
            let summed =
                parallax_comm::collectives::reduce_to(ep, &peers, tag, chief, t.data().to_vec())?;
            Ok(summed.map(|data| {
                Grad::Dense(Tensor::new(t.shape().clone(), data).expect("reduce preserves length"))
            }))
        }
        Grad::Sparse(s) => {
            let gathered =
                parallax_comm::collectives::gather_slices_to(ep, &peers, tag, chief, s.clone())?;
            Ok(gathered.map(|joined| Grad::Sparse(joined.coalesce())))
        }
    }
}

/// A worker's complete variable-access context: local replicas for
/// AllReduce variables, the PS client for server-hosted ones.
pub struct PsWorkerContext {
    /// The worker's communication endpoint.
    pub endpoint: Endpoint,
    /// The PS protocol client.
    pub client: PsClient,
    /// Local replica storage (authoritative for AllReduce variables).
    pub local: VarStore,
}

impl PsWorkerContext {
    /// Bundles the pieces into a provider.
    pub fn new(endpoint: Endpoint, client: PsClient, local: VarStore) -> Self {
        PsWorkerContext {
            endpoint,
            client,
            local,
        }
    }

    /// Starts an iteration (clears pull caches).
    pub fn begin_iteration(&mut self, iter: u64) {
        self.client.begin_iteration(iter);
    }
}

fn provider_err(e: PsError) -> DataflowError {
    DataflowError::Provider(e.to_string())
}

impl VarProvider for PsWorkerContext {
    fn fetch_dense(&mut self, var: VarId, def: &VariableDef) -> parallax_dataflow::Result<Tensor> {
        let placement = self
            .client
            .plan
            .placement(var)
            .map_err(provider_err)?
            .clone();
        match placement {
            VarPlacement::AllReduce => self.local.fetch_dense(var, def),
            VarPlacement::PsDense { .. } => self
                .client
                .pull_dense(&mut self.endpoint, var)
                .map_err(provider_err),
            VarPlacement::PsSparse { .. } => Err(DataflowError::Provider(format!(
                "dense read of partitioned sparse variable '{}'",
                def.name
            ))),
        }
    }

    fn fetch_sparse_rows(
        &mut self,
        var: VarId,
        def: &VariableDef,
        ids: &[usize],
    ) -> parallax_dataflow::Result<Tensor> {
        let placement = self
            .client
            .plan
            .placement(var)
            .map_err(provider_err)?
            .clone();
        match placement {
            VarPlacement::AllReduce => self.local.fetch_sparse_rows(var, def, ids),
            VarPlacement::PsDense { .. } => {
                // Unpartitioned PS variable accessed sparsely: pull the
                // needed rows from its single server via a one-partition
                // route.
                let whole = self
                    .client
                    .pull_dense(&mut self.endpoint, var)
                    .map_err(provider_err)?;
                Ok(parallax_tensor::ops::gather_rows(&whole, ids)?)
            }
            VarPlacement::PsSparse { .. } => self
                .client
                .pull_sparse(&mut self.endpoint, var, ids)
                .map_err(provider_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_partitions_rebases_and_sizes() {
        let partition = RowPartition::even(10, 3).unwrap();
        // Ranges: 0..4, 4..7, 7..10.
        let slices = IndexedSlices::new(
            vec![0, 5, 9, 4],
            Tensor::new([4, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            10,
        )
        .unwrap();
        let parts = split_to_partitions(&slices, &partition).unwrap();
        assert_eq!(parts[0].indices(), &[0]);
        assert_eq!(parts[0].dense_rows(), 4);
        assert_eq!(parts[1].indices(), &[1, 0]);
        assert_eq!(parts[1].values().data(), &[2.0, 4.0]);
        assert_eq!(parts[2].indices(), &[2]);
        assert_eq!(parts[2].dense_rows(), 3);
    }

    #[test]
    fn split_reassembles_to_same_dense() {
        let partition = RowPartition::even(8, 4).unwrap();
        let slices = IndexedSlices::new(
            vec![7, 0, 3, 3],
            Tensor::new([4, 2], (0..8).map(|x| x as f32).collect()).unwrap(),
            8,
        )
        .unwrap();
        let parts = split_to_partitions(&slices, &partition).unwrap();
        // Densify each partition and stitch: must equal densifying whole.
        let stitched: Vec<Tensor> = parts.iter().map(|p| p.to_dense()).collect();
        let rebuilt = partition.stitch(&stitched).unwrap();
        assert_eq!(rebuilt, slices.to_dense());
    }

    #[test]
    fn empty_partitions_still_present() {
        let partition = RowPartition::even(6, 3).unwrap();
        let slices =
            IndexedSlices::new(vec![0], Tensor::new([1, 1], vec![1.0]).unwrap(), 6).unwrap();
        let parts = split_to_partitions(&slices, &partition).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].nnz_rows(), 0);
        assert_eq!(parts[2].nnz_rows(), 0);
    }
}
