//! Sharding plans: how each variable is synchronized and where it lives.
//!
//! A [`ShardingPlan`] is the distributed-execution artifact that
//! Parallax's graph transformation produces: for every variable, whether
//! it is replicated and AllReduce-synchronized, hosted whole on one
//! server, or row-partitioned across servers.

use parallax_dataflow::{Graph, VarId};
use parallax_tensor::Tensor;

use crate::{PsError, Result};

/// An even row-partitioning of a 2-D (or 1-D, treated as single-column)
/// variable into `P` contiguous row ranges, mirroring TensorFlow's
/// `fixed_size_partitioner` on axis 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    rows: usize,
    bounds: Vec<usize>,
}

impl RowPartition {
    /// # Examples
    ///
    /// ```
    /// use parallax_ps::RowPartition;
    /// let p = RowPartition::even(10, 3).unwrap();
    /// assert_eq!(p.range(0), 0..4);
    /// assert_eq!(p.route(5).unwrap(), (1, 1));
    /// ```
    /// Splits `rows` rows into `parts` near-equal contiguous ranges.
    pub fn even(rows: usize, parts: usize) -> Result<Self> {
        if parts == 0 {
            return Err(PsError::Plan("partition count must be positive".into()));
        }
        if parts > rows.max(1) {
            return Err(PsError::Plan(format!("{parts} partitions for {rows} rows")));
        }
        let base = rows / parts;
        let rem = rows % parts;
        let mut bounds = Vec::with_capacity(parts + 1);
        let mut off = 0usize;
        bounds.push(0);
        for i in 0..parts {
            off += base + usize::from(i < rem);
            bounds.push(off);
        }
        Ok(RowPartition { rows, bounds })
    }

    /// Builds a partition from explicit bounds **without** validating
    /// monotonicity or coverage. The static plan verifier
    /// (`parallax-core::plancheck`) is the component that diagnoses bad
    /// bounds, so its negative-path tests need a way to construct them;
    /// everything else should use [`RowPartition::even`].
    #[doc(hidden)]
    pub fn from_bounds(rows: usize, bounds: Vec<usize>) -> Self {
        RowPartition { rows, bounds }
    }

    /// The raw partition bounds: `bounds[p]..bounds[p+1]` is partition
    /// `p`'s row range. A well-formed partition has `bounds[0] == 0`,
    /// strictly increasing entries, and `bounds[parts] == rows` — the
    /// tiling invariant the plan verifier checks.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The row range of partition `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// Rows in partition `p`.
    pub fn part_rows(&self, p: usize) -> usize {
        self.bounds[p + 1] - self.bounds[p]
    }

    /// Routes a global row to `(partition, local_row)`.
    pub fn route(&self, row: usize) -> Result<(usize, usize)> {
        if row >= self.rows {
            return Err(PsError::Plan(format!(
                "row {row} out of {} rows",
                self.rows
            )));
        }
        // Bounds are sorted; find the partition whose range contains row.
        let p = match self.bounds.binary_search(&row) {
            Ok(exact) if exact == self.parts() => self.parts() - 1,
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        Ok((p, row - self.bounds[p]))
    }

    /// Reassembles partition tensors (row blocks in order) into the full
    /// variable — the "stitching" operation whose cost grows with `P`.
    pub fn stitch(&self, parts: &[Tensor]) -> Result<Tensor> {
        if parts.len() != self.parts() {
            return Err(PsError::Plan(format!(
                "stitch got {} parts, expected {}",
                parts.len(),
                self.parts()
            )));
        }
        let cols = parts
            .first()
            .map(|t| t.shape().as_matrix().map(|(_, c)| c))
            .transpose()?
            .unwrap_or(0);
        let mut data = Vec::with_capacity(self.rows * cols);
        for (p, t) in parts.iter().enumerate() {
            let (r, c) = t.shape().as_matrix()?;
            if r != self.part_rows(p) || c != cols {
                return Err(PsError::Plan(format!("partition {p} has shape {r}x{c}")));
            }
            data.extend_from_slice(t.data());
        }
        Ok(Tensor::new([self.rows, cols], data)?)
    }
}

/// How one variable is synchronized and placed.
#[derive(Debug, Clone, PartialEq)]
pub enum VarPlacement {
    /// Replicated on every worker; gradients exchanged by AllReduce
    /// (dense) or AllGatherv (sparse).
    AllReduce,
    /// Hosted whole on the server of one machine.
    PsDense {
        /// Hosting machine.
        server: usize,
    },
    /// Row-partitioned across servers.
    PsSparse {
        /// The row partitioning.
        partition: RowPartition,
        /// Hosting machine of each partition.
        servers: Vec<usize>,
    },
}

impl VarPlacement {
    /// True when the variable is served by the PS path.
    pub fn is_ps(&self) -> bool {
        !matches!(self, VarPlacement::AllReduce)
    }
}

/// The full per-variable plan for a graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardingPlan {
    placements: Vec<VarPlacement>,
}

impl ShardingPlan {
    /// A plan that AllReduces every variable (pure-AR baseline).
    pub fn all_reduce(graph: &Graph) -> Self {
        ShardingPlan {
            placements: vec![VarPlacement::AllReduce; graph.variables().len()],
        }
    }

    /// Builds a plan from explicit placements (must cover every variable).
    pub fn from_placements(placements: Vec<VarPlacement>) -> Self {
        ShardingPlan { placements }
    }

    /// The placement of a variable.
    pub fn placement(&self, var: VarId) -> Result<&VarPlacement> {
        self.placements
            .get(var.index())
            .ok_or_else(|| PsError::Plan(format!("no placement for variable {}", var.index())))
    }

    /// All placements in [`VarId`] order.
    pub fn placements(&self) -> &[VarPlacement] {
        &self.placements
    }

    /// True when at least one variable is PS-hosted (servers needed).
    pub fn needs_servers(&self) -> bool {
        self.placements.iter().any(|p| p.is_ps())
    }

    /// Variables hosted (wholly or partly) on `machine`'s server, as
    /// `(var, partition_index, row_range)` shard descriptors.
    pub fn shards_of_machine(&self, machine: usize) -> Vec<(VarId, usize, std::ops::Range<usize>)> {
        let mut out = Vec::new();
        for (idx, placement) in self.placements.iter().enumerate() {
            match placement {
                VarPlacement::AllReduce => {}
                VarPlacement::PsDense { server } => {
                    if *server == machine {
                        out.push((VarId::from_index(idx), 0, 0..usize::MAX));
                    }
                }
                VarPlacement::PsSparse { partition, servers } => {
                    for (p, &s) in servers.iter().enumerate() {
                        if s == machine {
                            out.push((VarId::from_index(idx), p, partition.range(p)));
                        }
                    }
                }
            }
        }
        out
    }

    /// Machines hosting any shard of `var`, deduplicated and sorted.
    pub fn servers_of_var(&self, var: VarId) -> Result<Vec<usize>> {
        let mut machines = match self.placement(var)? {
            VarPlacement::AllReduce => vec![],
            VarPlacement::PsDense { server } => vec![*server],
            VarPlacement::PsSparse { servers, .. } => servers.clone(),
        };
        machines.sort_unstable();
        machines.dedup();
        Ok(machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_rows() {
        let p = RowPartition::even(10, 3).unwrap();
        assert_eq!(p.parts(), 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        assert_eq!((0..3).map(|i| p.part_rows(i)).sum::<usize>(), 10);
    }

    #[test]
    fn route_is_total_and_consistent() {
        let p = RowPartition::even(97, 8).unwrap();
        for row in 0..97 {
            let (part, local) = p.route(row).unwrap();
            assert!(p.range(part).contains(&row));
            assert_eq!(p.range(part).start + local, row);
        }
        assert!(p.route(97).is_err());
    }

    #[test]
    fn stitch_inverts_slicing() {
        let p = RowPartition::even(5, 2).unwrap();
        let full = Tensor::new([5, 2], (0..10).map(|x| x as f32).collect()).unwrap();
        let parts: Vec<Tensor> = (0..p.parts())
            .map(|i| {
                let r = p.range(i);
                full.slice_rows(r.start, r.end).unwrap()
            })
            .collect();
        assert_eq!(p.stitch(&parts).unwrap(), full);
    }

    #[test]
    fn stitch_rejects_wrong_shapes() {
        let p = RowPartition::even(4, 2).unwrap();
        let bad = vec![Tensor::zeros([2, 2]), Tensor::zeros([1, 2])];
        assert!(p.stitch(&bad).is_err());
        assert!(p.stitch(&[Tensor::zeros([4, 2])]).is_err());
    }

    #[test]
    fn partition_bounds_validation() {
        assert!(RowPartition::even(4, 0).is_err());
        assert!(RowPartition::even(4, 5).is_err());
        assert!(RowPartition::even(4, 4).is_ok());
    }

    #[test]
    fn shards_of_machine_lists_owned() {
        let partition = RowPartition::even(8, 2).unwrap();
        let plan = ShardingPlan::from_placements(vec![
            VarPlacement::AllReduce,
            VarPlacement::PsDense { server: 1 },
            VarPlacement::PsSparse {
                partition,
                servers: vec![0, 1],
            },
        ]);
        let m0 = plan.shards_of_machine(0);
        assert_eq!(m0.len(), 1);
        assert_eq!(m0[0].1, 0);
        assert_eq!(m0[0].2, 0..4);
        let m1 = plan.shards_of_machine(1);
        assert_eq!(m1.len(), 2);
        assert!(plan.needs_servers());
    }

    #[test]
    fn pure_ar_plan_needs_no_servers() {
        let mut g = Graph::new();
        g.variable(parallax_dataflow::VariableDef::new(
            "v",
            [2],
            parallax_dataflow::graph::Init::Zeros,
        ))
        .unwrap();
        let plan = ShardingPlan::all_reduce(&g);
        assert!(!plan.needs_servers());
        assert!(plan.shards_of_machine(0).is_empty());
    }
}
