//! The server process: shard storage, request serving, updates.
//!
//! One server runs per machine (colocated with that machine's workers —
//! "this colocation works well since workers are GPU-intensive while
//! servers run lightweight computation", Section 4.3). A server owns the
//! shards its machine was assigned, serves pulls, accumulates pushes,
//! and applies updates; with `chief_triggers_update` the update is gated
//! on the chief worker's trigger and completion is announced to every
//! worker — the shared-queue notification of Section 5.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use parallax_comm::{Endpoint, Payload};
use parallax_dataflow::optimizer::LrSchedule;
use parallax_dataflow::{Graph, Optimizer, VarId, VarStore};
use parallax_tensor::{ops, sparse::Grad, DetRng, Tensor};
use parallax_trace::{span, span_with_flow, FlowPoint, SpanCat};

use crate::accumulator::{DenseAccumulator, SparseAccumulator};
use crate::plan::ShardingPlan;
use crate::protocol::{self, ReqKind};
use crate::topology::PsTopology;
use crate::{PsError, Result};

/// Server behaviour knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Training iterations to serve.
    pub iterations: usize,
    /// Divide aggregated gradients by the worker count (averaging) before
    /// the update; otherwise apply the sum.
    pub average_gradients: bool,
    /// Per-machine local aggregation of *sparse* gradients: only each
    /// machine's local chief pushes to sparse shards, which then expect
    /// `machines` pushes instead of `workers`. Dense shards always take
    /// one push per worker — a machine pre-sum would change the fold
    /// association away from the ring-AllReduce order dense aggregation
    /// replays.
    pub local_aggregation: bool,
    /// Gate each shard's update on a `ChiefUpdate` trigger from the chief
    /// worker (the paper's exact mechanism). When false the update fires
    /// as soon as the accumulator completes.
    pub chief_triggers_update: bool,
    /// Synchronous training (the default). When false, every push is
    /// applied immediately without waiting for the other workers —
    /// asynchronous SGD, with all the staleness that implies
    /// (Section 2.1; Parallax supports both modes).
    pub synchronous: bool,
    /// Serve `ReadAgg` requests: keep each shard's last aggregated
    /// gradient and let every worker read it (gradient tracing /
    /// global-norm clipping support, Section 5). Synchronous mode only.
    pub serve_aggregates: bool,
    /// Seed shared with workers so initial shard values match replicas.
    pub seed: u64,
    /// Learning-rate schedule, applied per iteration in lockstep with
    /// the workers' replicas.
    pub lr_schedule: LrSchedule,
    /// First iteration to serve (non-zero when resuming from a
    /// checkpoint; absolute iteration numbers keep tags and the lr
    /// schedule identical to an uninterrupted run).
    pub start_iteration: usize,
    /// Checkpoint cadence shared with the chief: on iterations where
    /// `(iter + 1) % interval == 0` the chief fetches every shard's
    /// value (`FetchShard`), and the server must count those messages in
    /// its drain loop. `0` disables checkpointing.
    pub checkpoint_interval: usize,
    /// Minimum parameter rows per pool chunk when the server shards an
    /// optimizer apply across the shared compute pool (`0` keeps applies
    /// fully serial). Results are bitwise identical for every setting;
    /// only the time spent inside `ps.apply` changes.
    pub apply_min_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            iterations: 1,
            average_gradients: true,
            local_aggregation: false,
            chief_triggers_update: true,
            synchronous: true,
            serve_aggregates: false,
            seed: 0,
            lr_schedule: LrSchedule::Constant,
            start_iteration: 0,
            checkpoint_interval: 0,
            apply_min_rows: parallax_dataflow::optimizer::DEFAULT_APPLY_MIN_ROWS,
        }
    }
}

struct ShardState {
    var: VarId,
    part: usize,
    /// Global row range for sparse shards (`0..MAX` marker for dense).
    rows: Range<usize>,
    value: Tensor,
    sparse: bool,
    /// Pull requests expected per iteration.
    pulls_expected: usize,
    dense_acc: DenseAccumulator,
    sparse_acc: SparseAccumulator,
    /// Aggregate released by an accumulator, awaiting the chief trigger.
    pending: Option<Grad>,
    /// The last applied aggregate, kept for `ReadAgg` requests. Stored
    /// as a ready-to-send payload so all readers share one allocation.
    last_aggregate: Option<Payload>,
    chief_seen: bool,
    pulls_seen: usize,
    applied: bool,
    pushes_seen: usize,
}

/// Trace span name for serving one request kind.
fn serve_span_name(kind: ReqKind) -> &'static str {
    match kind {
        ReqKind::PullDense => "ps.serve.pull_dense",
        ReqKind::PullSparse => "ps.serve.pull_sparse",
        ReqKind::PushDense => "ps.serve.push_dense",
        ReqKind::PushSparse => "ps.serve.push_sparse",
        ReqKind::ChiefUpdate => "ps.serve.chief_update",
        ReqKind::UpdateDone => "ps.serve.update_done",
        ReqKind::ReadAgg => "ps.serve.read_agg",
        ReqKind::FetchShard => "ps.serve.fetch_shard",
    }
}

/// A Parameter Server process.
pub struct Server {
    endpoint: Endpoint,
    topo: PsTopology,
    machine: usize,
    config: ServerConfig,
    optimizer: Box<dyn Optimizer>,
    base_lr: f32,
    shards: Vec<ShardState>,
    index: HashMap<(usize, usize), usize>,
    // Cached trace handles: looked up once here so the serve loop never
    // touches the tracer's name registry lock.
    wait_hist: parallax_trace::HistogramHandle,
    service_hist: parallax_trace::HistogramHandle,
    requests: parallax_trace::Counter,
    /// Optional fault injector: consulted at every iteration boundary
    /// for server-kill and stall faults (the runner installs this).
    faults: Option<std::sync::Arc<parallax_fault::FaultInjector>>,
}

impl Server {
    /// Builds the server for `machine`, initializing its shards from the
    /// deterministic initializer shared with workers.
    pub fn new(
        graph: &Graph,
        plan: &ShardingPlan,
        topo: PsTopology,
        endpoint: Endpoint,
        config: ServerConfig,
        mut optimizer: Box<dyn Optimizer>,
    ) -> Result<Self> {
        optimizer.set_apply_min_rows(config.apply_min_rows);
        let machine = topo
            .machine_of(endpoint.rank())
            .map_err(|_| PsError::Protocol("server endpoint has no machine".into()))?;
        if topo.server_rank(machine) != endpoint.rank() {
            return Err(PsError::Protocol(format!(
                "endpoint rank {} is not machine {}'s server rank",
                endpoint.rank(),
                machine
            )));
        }
        let store = VarStore::init(graph, &mut DetRng::seed(config.seed));
        let workers = topo.num_workers();
        let machines = topo.num_machines();
        // Accumulator shapes. Dense shards always take one push per
        // worker (positional, released in ring-fold order so PS-dense is
        // bitwise interchangeable with AllReduce; local aggregation is
        // sparse-only because a machine pre-sum has the wrong
        // association for the ring). Sparse shards take one push per
        // machine under local aggregation, or one per worker grouped by
        // machine otherwise — the release folds machine-blocked either
        // way, so both arrangements produce identical bits.
        let sparse_acc = if config.local_aggregation {
            SparseAccumulator::new(machines)
        } else {
            let mut machine_of = Vec::with_capacity(workers);
            for r in topo.worker_ranks() {
                machine_of.push(topo.machine_of(r)?);
            }
            SparseAccumulator::grouped(machine_of)
        };

        let mut shards = Vec::new();
        let mut index = HashMap::new();
        for (var, part, rows) in plan.shards_of_machine(machine) {
            let full = store.get(var)?;
            let sparse = rows != (0..usize::MAX);
            let value = if sparse {
                full.slice_rows(rows.start, rows.end)?
            } else {
                full.clone()
            };
            let gathers = graph.gather_nodes_of(var).len().max(1);
            let pulls_expected = if sparse { workers * gathers } else { workers };
            index.insert((var.index(), part), shards.len());
            shards.push(ShardState {
                var,
                part,
                rows,
                value,
                sparse,
                pulls_expected,
                dense_acc: DenseAccumulator::new(workers),
                sparse_acc: sparse_acc.clone(),
                pending: None,
                last_aggregate: None,
                chief_seen: false,
                pulls_seen: 0,
                applied: false,
                pushes_seen: 0,
            });
        }
        let base_lr = optimizer.learning_rate();
        Ok(Server {
            endpoint,
            topo,
            machine,
            config,
            optimizer,
            base_lr,
            shards,
            index,
            wait_hist: parallax_trace::histogram("ps.wait_ns"),
            service_hist: parallax_trace::histogram("ps.service_ns"),
            requests: parallax_trace::counter("ps.requests"),
            faults: None,
        })
    }

    /// Installs a fault injector; the server then honours `KillServer`
    /// and `Stall` actions at iteration boundaries.
    pub fn set_faults(&mut self, faults: std::sync::Arc<parallax_fault::FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Number of shards this server owns.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The machine this server runs on.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// Overwrites every shard's value from `store` (restored checkpoint
    /// state), re-slicing sparse shards by their row ranges exactly as
    /// [`Server::new`] does from the initializer.
    pub fn restore_from(&mut self, store: &VarStore) -> Result<()> {
        for shard in &mut self.shards {
            let full = store.get(shard.var)?;
            shard.value = if shard.sparse {
                full.slice_rows(shard.rows.start, shard.rows.end)?
            } else {
                full.clone()
            };
        }
        Ok(())
    }

    /// Restores the optimizer's slot state for `var` from a checkpointed
    /// full-size tensor, re-slicing sparse shards by their row ranges
    /// exactly like [`Server::restore_from`] does for values. A slot
    /// name that does not match this optimizer's state kind (a config
    /// change between save and resume) is ignored, not an error.
    pub fn restore_slot(&mut self, var: VarId, slot_name: &str, full: &Tensor) -> Result<()> {
        if self.optimizer.state_name() != Some(slot_name) {
            return Ok(());
        }
        let targets: Vec<(u64, Option<std::ops::Range<usize>>)> = self
            .shards
            .iter()
            .filter(|s| s.var == var)
            .map(|s| {
                let slot = ((s.var.index() as u64) << 20) | s.part as u64;
                (slot, s.sparse.then(|| s.rows.clone()))
            })
            .collect();
        for (slot, rows) in targets {
            let state = match rows {
                Some(r) => full.slice_rows(r.start, r.end)?,
                None => full.clone(),
            };
            self.optimizer.import_slot(slot, state);
        }
        Ok(())
    }

    /// Serves all configured iterations (starting from
    /// `config.start_iteration` when resuming), then returns the final
    /// shard values as `((var, part), tensor)` pairs.
    pub fn run(mut self) -> Result<Vec<((VarId, usize), Tensor)>> {
        parallax_trace::set_thread_track(
            self.machine as u32,
            self.endpoint.rank() as u32,
            &format!("server(m{})", self.machine),
        );
        for iter in self.config.start_iteration as u64..self.config.iterations as u64 {
            parallax_trace::set_thread_iter(iter);
            self.run_iteration(iter)?;
        }
        Ok(self
            .shards
            .into_iter()
            .map(|s| ((s.var, s.part), s.value))
            .collect())
    }

    fn run_iteration(&mut self, iter: u64) -> Result<()> {
        // Fault hooks, mirroring the worker loop: a stall stretches this
        // iteration, a kill tears the server down before it serves any
        // request of step `iter` (its endpoint drop marks it dead so
        // blocked peers get `PeerDead` instead of hanging).
        if let Some(faults) = &self.faults {
            if let Some(d) = faults.stall_for(self.endpoint.rank(), iter) {
                std::thread::sleep(d);
            }
            if faults.kill_server_at(self.machine, iter) {
                return Err(PsError::Protocol(format!(
                    "fault injection: server on machine {} killed at step {iter}",
                    self.machine
                )));
            }
        }
        self.optimizer
            .set_learning_rate(self.config.lr_schedule.at(self.base_lr, iter));
        let sync = self.config.synchronous;
        let chief_msgs = usize::from(sync && self.config.chief_triggers_update);
        let readagg_msgs = if sync && self.config.serve_aggregates {
            self.topo.num_workers()
        } else {
            0
        };
        // On checkpoint-boundary iterations the chief fetches every
        // shard's post-update value (one FetchShard per shard).
        let interval = self.config.checkpoint_interval as u64;
        let fetch_msgs = usize::from(sync && interval > 0 && (iter + 1).is_multiple_of(interval));
        // Total messages this iteration must consume.
        let mut outstanding: usize = self
            .shards
            .iter()
            .map(|s| {
                let pushes = if sync {
                    if s.sparse {
                        s.sparse_acc.expected()
                    } else {
                        s.dense_acc.expected()
                    }
                } else {
                    // Async: every worker pushes individually.
                    self.topo.num_workers()
                };
                s.pulls_expected + pushes + chief_msgs + readagg_msgs + fetch_msgs
            })
            .sum();
        for shard in &mut self.shards {
            shard.pending = None;
            shard.chief_seen = false;
            shard.pulls_seen = 0;
            shard.applied = false;
            shard.pushes_seen = 0;
        }
        let mut seen_once: std::collections::HashSet<(usize, u64)> =
            std::collections::HashSet::new();
        while outstanding > 0 {
            // Queueing time: how long the server sat waiting for the next
            // request (its receive queue was empty that whole time).
            let traced = parallax_trace::enabled();
            let t0 = if traced { parallax_trace::now_ns() } else { 0 };
            let (from, payload) = {
                let _wait = span(SpanCat::Ps, "ps.wait");
                self.endpoint.recv_any(protocol::request_tag(iter))?
            };
            let t1 = if traced { parallax_trace::now_ns() } else { 0 };
            let (header, body) = payload.into_packet()?;
            let (kind, var, part, hdr_iter) = protocol::unpack(header)?;
            if hdr_iter != (iter & ((1 << 30) - 1)) {
                return Err(PsError::Protocol(format!(
                    "iteration mismatch: header {hdr_iter}, serving {iter}"
                )));
            }
            // At-most-once guard: every request kind except the pulls has
            // a legitimate per-sender cardinality of exactly one per
            // iteration, so a second copy of the same `(sender, header)`
            // is a duplicated delivery (e.g. an injected `Duplicate`
            // fault) and is dropped here — consuming it would double-
            // count a push into the aggregate, silently corrupting the
            // update. Pulls are exempt: a variable with several gather
            // nodes legitimately pulls the same shard more than once,
            // and pull responses are idempotent reads anyway. Spurious
            // copies do not count against `outstanding`.
            let once = !matches!(kind, ReqKind::PullDense | ReqKind::PullSparse);
            if once && !seen_once.insert((from, header)) {
                continue;
            }
            {
                // Service time: the span also absorbs the bytes of any
                // response sends issued while handling the request. Push
                // serves close the flow opened by the worker's push span
                // (the sender rank comes from the transport envelope).
                let flow = match kind {
                    ReqKind::PushDense | ReqKind::PushSparse => {
                        FlowPoint::Finish(protocol::flow_id(kind, var, part, from, iter))
                    }
                    _ => FlowPoint::None,
                };
                let _serve = span_with_flow(SpanCat::Ps, serve_span_name(kind), flow);
                self.dispatch(iter, from, kind, var, part, body)?;
            }
            if traced {
                self.wait_hist.record(t1.saturating_sub(t0));
                self.service_hist
                    .record(parallax_trace::now_ns().saturating_sub(t1));
                self.requests.add(1);
            }
            outstanding -= 1;
        }
        // In synchronous mode every shard's update must have fired.
        if self.config.synchronous {
            if let Some(s) = self.shards.iter().find(|s| !s.applied) {
                return Err(PsError::Protocol(format!(
                    "iteration {iter} ended with unapplied shard (var {}, part {})",
                    s.var.index(),
                    s.part
                )));
            }
        }
        Ok(())
    }

    fn shard_idx(&self, var: usize, part: usize) -> Result<usize> {
        self.index
            .get(&(var, part))
            .copied()
            .ok_or_else(|| PsError::Plan(format!("shard (var {var}, part {part}) not owned")))
    }

    fn dispatch(
        &mut self,
        iter: u64,
        from: usize,
        kind: ReqKind,
        var: usize,
        part: usize,
        body: Payload,
    ) -> Result<()> {
        let idx = self.shard_idx(var, part)?;
        match kind {
            ReqKind::PullDense => {
                body.into_control()?;
                let shard = &mut self.shards[idx];
                shard.pulls_seen += 1;
                let value = shard.value.clone();
                self.endpoint.send(
                    from,
                    protocol::response_tag(ReqKind::PullDense, var, part, iter),
                    Payload::Tensor(Arc::new(value)),
                )?;
            }
            ReqKind::PullSparse => {
                let ids = body.into_ids()?;
                let shard = &mut self.shards[idx];
                shard.pulls_seen += 1;
                let rows = ops::gather_rows(&shard.value, &ids)?;
                self.endpoint.send(
                    from,
                    protocol::response_tag(ReqKind::PullSparse, var, part, iter),
                    Payload::Tensor(Arc::new(rows)),
                )?;
            }
            ReqKind::PushDense => {
                let grad = body.into_tensor()?;
                // The pusher's worker position doubles as its ring
                // position, fixing the fold slot regardless of arrival
                // order.
                let position = self.topo.worker_position(from)?;
                let shard = &mut self.shards[idx];
                if shard.sparse {
                    return Err(PsError::Protocol("dense push to a sparse shard".into()));
                }
                shard.pushes_seen += 1;
                if !self.config.synchronous {
                    self.apply_async(idx, Grad::Dense(grad))?;
                } else {
                    if let Some(sum) = shard.dense_acc.push(position, grad)? {
                        shard.pending = Some(Grad::Dense(sum));
                    }
                    self.maybe_apply(idx, iter)?;
                }
            }
            ReqKind::PushSparse => {
                let grad = body.into_slices()?;
                // Under local aggregation the pusher is a machine's local
                // chief and fills that machine's slot; otherwise each
                // worker fills its own (machine-grouped) slot.
                let position = if self.config.local_aggregation && self.config.synchronous {
                    self.topo.machine_of(from)?
                } else {
                    self.topo.worker_position(from)?
                };
                let shard = &mut self.shards[idx];
                if !shard.sparse {
                    return Err(PsError::Protocol("sparse push to a dense shard".into()));
                }
                shard.pushes_seen += 1;
                if !self.config.synchronous {
                    self.apply_async(idx, Grad::Sparse(grad))?;
                } else {
                    if let Some(agg) = shard.sparse_acc.push(position, grad)? {
                        shard.pending = Some(Grad::Sparse(agg));
                    }
                    self.maybe_apply(idx, iter)?;
                }
            }
            ReqKind::ChiefUpdate => {
                body.into_control()?;
                if from != self.topo.chief() {
                    return Err(PsError::Protocol(format!(
                        "ChiefUpdate from non-chief worker {from}"
                    )));
                }
                self.shards[idx].chief_seen = true;
                self.maybe_apply(idx, iter)?;
            }
            ReqKind::UpdateDone => {
                return Err(PsError::Protocol(
                    "UpdateDone is server-to-worker only".into(),
                ));
            }
            ReqKind::FetchShard => {
                body.into_control()?;
                if from != self.topo.chief() {
                    return Err(PsError::Protocol(format!(
                        "FetchShard from non-chief worker {from}"
                    )));
                }
                let shard = &self.shards[idx];
                if self.config.synchronous && !shard.applied {
                    return Err(PsError::Protocol(
                        "FetchShard before the shard's update applied".into(),
                    ));
                }
                let value = shard.value.clone();
                let tag = protocol::response_tag(ReqKind::FetchShard, var, part, iter);
                self.endpoint
                    .send(from, tag, Payload::Tensor(Arc::new(value)))?;
                // Piggyback the optimizer slot state (velocity/accum) on
                // the same tag so checkpoints can capture it: the
                // transport is FIFO per (peer, tag), so the client reads
                // value-then-state in order. Stateless optimizers send a
                // zero-cost control marker instead.
                let slot = ((var as u64) << 20) | part as u64;
                let state = match self.optimizer.export_slot(slot) {
                    Some(t) => Payload::Tensor(Arc::new(t.clone())),
                    None => Payload::Control(0),
                };
                self.endpoint.send(from, tag, state)?;
            }
            ReqKind::ReadAgg => {
                body.into_control()?;
                if !self.config.serve_aggregates {
                    return Err(PsError::Protocol(
                        "ReadAgg requires serve_aggregates".into(),
                    ));
                }
                let shard = &self.shards[idx];
                if !shard.applied {
                    return Err(PsError::Protocol(
                        "ReadAgg before the shard's update applied".into(),
                    ));
                }
                // Cloning the stored payload bumps a reference count, so
                // every reader of this shard shares one buffer.
                let payload = match &shard.last_aggregate {
                    Some(p) => p.clone(),
                    None => return Err(PsError::Protocol("no aggregate saved for shard".into())),
                };
                self.endpoint.send(
                    from,
                    protocol::response_tag(ReqKind::ReadAgg, var, part, iter),
                    payload,
                )?;
            }
        }
        Ok(())
    }

    /// Asynchronous update: applies one worker's gradient immediately,
    /// without accumulation, chief gating, or notifications — stale reads
    /// and writes are inherent to the mode (Section 2.1).
    fn apply_async(&mut self, idx: usize, grad: Grad) -> Result<()> {
        let shard = &mut self.shards[idx];
        let slot = ((shard.var.index() as u64) << 20) | shard.part as u64;
        {
            let _apply = span(SpanCat::Ps, "ps.apply");
            self.optimizer.apply(slot, &mut shard.value, &grad)?;
        }
        shard.applied = true;
        Ok(())
    }

    /// Applies the update for shard `idx` once all pushes (and the chief
    /// trigger, when enabled) have arrived, then notifies all workers.
    fn maybe_apply(&mut self, idx: usize, iter: u64) -> Result<()> {
        let workers = self.topo.num_workers() as f32;
        let shard = &mut self.shards[idx];
        let gated = self.config.chief_triggers_update && !shard.chief_seen;
        if shard.applied || shard.pending.is_none() || gated {
            return Ok(());
        }
        // Pulls must all have been served before mutating the value
        // (synchronous-semantics guard; see module docs).
        if shard.pulls_seen != shard.pulls_expected {
            return Err(PsError::Protocol(format!(
                "update ready but only {}/{} pulls served (var {}, part {})",
                shard.pulls_seen,
                shard.pulls_expected,
                shard.var.index(),
                shard.part
            )));
        }
        let scale = if self.config.average_gradients {
            1.0 / workers
        } else {
            1.0
        };
        let slot = ((shard.var.index() as u64) << 20) | shard.part as u64;
        let agg = shard.pending.take().expect("checked above").scale(scale);
        {
            // The apply is the server's heaviest unit of work; it gets
            // its own span so measured serve time can be split into
            // queueing/serving/applying phases.
            let _apply = span(SpanCat::Ps, "ps.apply");
            self.optimizer.apply(slot, &mut shard.value, &agg)?;
        }
        shard.last_aggregate = if self.config.serve_aggregates {
            Some(match agg {
                Grad::Dense(t) => Payload::Tensor(Arc::new(t)),
                Grad::Sparse(s) => Payload::Slices(Arc::new(s)),
            })
        } else {
            None
        };
        shard.applied = true;
        let (var, part) = (shard.var.index(), shard.part);
        for w in self.topo.worker_ranks() {
            self.endpoint.send(
                w,
                protocol::response_tag(ReqKind::UpdateDone, var, part, iter),
                Payload::Control(0),
            )?;
        }
        Ok(())
    }
}
