//! End-to-end Parameter Server training: distributed synchronous SGD over
//! worker threads must match single-process sequential SGD bit-for-bit
//! (up to float summation-order tolerance).

use std::collections::HashMap;
use std::sync::Arc;

use parallax_comm::{Router, Topology};
use parallax_dataflow::grad::backward;
use parallax_dataflow::graph::{Init, Op, PhKind};
use parallax_dataflow::optimizer::LrSchedule;
use parallax_dataflow::{Feed, Graph, NodeId, Session, Sgd, VarId, VarStore, VariableDef};
use parallax_ps::placement::{build_plan, naive_ps_decisions};
use parallax_ps::{
    locally_aggregate, PlacementStrategy, PsClient, PsTopology, PsWorkerContext, Server,
    ServerConfig, ShardingPlan, VarPlacement,
};
use parallax_tensor::{DetRng, Tensor};

const SEED: u64 = 42;
const LR: f32 = 0.2;

/// Embedding -> linear -> softmax cross-entropy classifier.
fn build_model() -> (Graph, NodeId) {
    let mut g = Graph::new();
    let emb = g
        .variable(VariableDef::new("emb", [12, 4], Init::Normal(0.3)))
        .unwrap();
    let w = g
        .variable(VariableDef::new("w", [4, 3], Init::Glorot))
        .unwrap();
    let b = g.variable(VariableDef::new("b", [3], Init::Zeros)).unwrap();
    let ids = g.placeholder("ids", PhKind::Ids).unwrap();
    let labels = g.placeholder("labels", PhKind::Ids).unwrap();
    let x = g.add(Op::Gather { table: emb, ids }).unwrap();
    let wr = g.read(w).unwrap();
    let br = g.read(b).unwrap();
    let mm = g.add(Op::MatMul(x, wr)).unwrap();
    let logits = g.add(Op::AddBias { x: mm, bias: br }).unwrap();
    let loss = g.add(Op::SoftmaxXent { logits, labels }).unwrap();
    (g, loss)
}

/// Deterministic global batch for one iteration: ids and labels.
fn global_batch(iter: usize, total: usize) -> (Vec<usize>, Vec<usize>) {
    let ids = (0..total).map(|i| (iter * 5 + i * 3) % 12).collect();
    let labels = (0..total).map(|i| (iter + i) % 3).collect();
    (ids, labels)
}

/// The per-worker slice of the global batch.
fn worker_batch(iter: usize, worker: usize, per_worker: usize, workers: usize) -> Feed {
    let (ids, labels) = global_batch(iter, per_worker * workers);
    let lo = worker * per_worker;
    let hi = lo + per_worker;
    Feed::new()
        .with("ids", ids[lo..hi].to_vec())
        .with("labels", labels[lo..hi].to_vec())
}

/// Runs the reference: sequential SGD over the full global batch.
fn sequential_reference(graph: &Graph, loss: NodeId, iters: usize, global: usize) -> VarStore {
    let mut store = VarStore::init(graph, &mut DetRng::seed(SEED));
    let mut opt = Sgd::new(LR);
    let session = Session::new(graph);
    for iter in 0..iters {
        let (ids, labels) = global_batch(iter, global);
        let feed = Feed::new().with("ids", ids).with("labels", labels);
        let acts = session.forward(&feed, &mut store).unwrap();
        let grads = backward(graph, &acts, loss).unwrap();
        for (var, grad) in grads {
            use parallax_dataflow::Optimizer;
            opt.apply(var.index() as u64, store.get_mut(var).unwrap(), &grad)
                .unwrap();
        }
    }
    store
}

/// Runs distributed PS training and returns the final full variable values.
fn distributed_ps(
    graph: &Graph,
    loss: NodeId,
    iters: usize,
    machines: usize,
    gpus: usize,
    partitions: usize,
    local_aggregation: bool,
) -> HashMap<usize, Tensor> {
    let topo = PsTopology::uniform(machines, gpus).unwrap();
    let decisions = naive_ps_decisions(graph, partitions);
    let plan =
        Arc::new(build_plan(graph, &decisions, machines, PlacementStrategy::Balanced).unwrap());
    let comm_topo: Topology = topo.comm().clone();
    let (mut endpoints, _traffic) = Router::build(comm_topo);
    // Hand endpoints out by rank: workers and servers.
    let mut by_rank: Vec<Option<parallax_comm::Endpoint>> = endpoints.drain(..).map(Some).collect();

    let workers = topo.num_workers();
    let per_worker = 2usize;
    let ps_vars: Vec<VarId> = graph
        .var_ids()
        .filter(|v| plan.placement(*v).unwrap().is_ps())
        .collect();

    let mut shard_values: Vec<((VarId, usize), Tensor)> = Vec::new();
    std::thread::scope(|s| {
        let mut server_handles = Vec::new();
        for m in 0..machines {
            let endpoint = by_rank[topo.server_rank(m)].take().unwrap();
            let config = ServerConfig {
                iterations: iters,
                average_gradients: true,
                local_aggregation,
                chief_triggers_update: true,
                synchronous: true,
                serve_aggregates: false,
                seed: SEED,
                lr_schedule: LrSchedule::Constant,
                ..ServerConfig::default()
            };
            let server = Server::new(
                graph,
                &plan,
                topo.clone(),
                endpoint,
                config,
                Box::new(Sgd::new(LR)),
            )
            .unwrap();
            server_handles.push(s.spawn(move || server.run().unwrap()));
        }
        let mut worker_handles = Vec::new();
        for (widx, &rank) in topo.worker_ranks().iter().enumerate() {
            let endpoint = by_rank[rank].take().unwrap();
            let plan = Arc::clone(&plan);
            let topo = topo.clone();
            let ps_vars = ps_vars.clone();
            worker_handles.push(s.spawn(move || {
                let client = PsClient::new(plan, topo.clone());
                let local = VarStore::init(graph, &mut DetRng::seed(SEED));
                let mut ctx = PsWorkerContext::new(endpoint, client, local);
                let session = Session::new(graph);
                let chief = topo.chief() == rank;
                for iter in 0..iters {
                    ctx.begin_iteration(iter as u64);
                    let feed = worker_batch(iter, widx, per_worker, workers);
                    let acts = session.forward(&feed, &mut ctx).unwrap();
                    let grads = backward(graph, &acts, loss).unwrap();
                    let PsWorkerContext {
                        endpoint, client, ..
                    } = &mut ctx;
                    for &var in &ps_vars {
                        let grad = grads.get(&var).expect("all vars used");
                        // Local aggregation is sparse-only: dense gradients
                        // keep one push per worker so the server can replay
                        // the ring fold order.
                        if local_aggregation && grad.is_sparse() {
                            let agg =
                                locally_aggregate(endpoint, &topo, iter as u64, var, grad).unwrap();
                            if let Some(agg) = agg {
                                client.push(endpoint, var, &agg).unwrap();
                            }
                        } else {
                            client.push(endpoint, var, grad).unwrap();
                        }
                    }
                    if chief {
                        for &var in &ps_vars {
                            client.chief_update(endpoint, var).unwrap();
                        }
                    }
                    for &var in &ps_vars {
                        client.await_update_done(endpoint, var).unwrap();
                    }
                }
            }));
        }
        for h in worker_handles {
            h.join().expect("worker panicked");
        }
        for h in server_handles {
            shard_values.extend(h.join().expect("server panicked"));
        }
    });

    // Reassemble full variables from shards.
    reassemble(graph, &plan, shard_values)
}

fn reassemble(
    graph: &Graph,
    plan: &ShardingPlan,
    shards: Vec<((VarId, usize), Tensor)>,
) -> HashMap<usize, Tensor> {
    let mut by_var: HashMap<usize, Vec<(usize, Tensor)>> = HashMap::new();
    for ((var, part), value) in shards {
        by_var.entry(var.index()).or_default().push((part, value));
    }
    let mut out = HashMap::new();
    for (var_idx, mut parts) in by_var {
        parts.sort_by_key(|(p, _)| *p);
        let var = VarId::from_index(var_idx);
        match plan.placement(var).unwrap() {
            VarPlacement::PsDense { .. } => {
                assert_eq!(parts.len(), 1);
                out.insert(var_idx, parts.pop().unwrap().1);
            }
            VarPlacement::PsSparse { partition, .. } => {
                let tensors: Vec<Tensor> = parts.into_iter().map(|(_, t)| t).collect();
                let full = partition.stitch(&tensors).unwrap();
                let shape = graph.var_def(var).unwrap().shape.clone();
                out.insert(var_idx, full.reshape(shape).unwrap());
            }
            VarPlacement::AllReduce => unreachable!("naive PS has no AR vars"),
        }
    }
    out
}

fn assert_matches_reference(
    graph: &Graph,
    reference: &VarStore,
    distributed: &HashMap<usize, Tensor>,
) {
    for var in graph.var_ids() {
        let expected = reference.get(var).unwrap();
        let actual = distributed
            .get(&var.index())
            .unwrap_or_else(|| panic!("variable {} missing from distributed result", var.index()));
        let diff = expected.max_abs_diff(actual).unwrap();
        assert!(
            diff < 1e-4,
            "variable '{}' diverged by {diff}",
            graph.var_def(var).unwrap().name
        );
    }
}

#[test]
fn ps_training_matches_sequential_sgd() {
    let (graph, loss) = build_model();
    let (machines, gpus, iters) = (2, 2, 5);
    let reference = sequential_reference(&graph, loss, iters, 2 * machines * gpus);
    let result = distributed_ps(&graph, loss, iters, machines, gpus, 3, false);
    assert_matches_reference(&graph, &reference, &result);
}

#[test]
fn ps_training_with_local_aggregation_matches_sequential_sgd() {
    let (graph, loss) = build_model();
    let (machines, gpus, iters) = (2, 3, 4);
    let reference = sequential_reference(&graph, loss, iters, 2 * machines * gpus);
    let result = distributed_ps(&graph, loss, iters, machines, gpus, 4, true);
    assert_matches_reference(&graph, &reference, &result);
}

#[test]
fn ps_training_single_machine_many_partitions() {
    let (graph, loss) = build_model();
    let (machines, gpus, iters) = (1, 4, 3);
    let reference = sequential_reference(&graph, loss, iters, 2 * machines * gpus);
    let result = distributed_ps(&graph, loss, iters, machines, gpus, 12, false);
    assert_matches_reference(&graph, &reference, &result);
}

#[test]
fn local_aggregation_reduces_network_traffic() {
    // Same training twice; with local aggregation the worker->server
    // gradient traffic must shrink (duplicate rows merged per machine,
    // single push per machine).
    let (graph, loss) = build_model();
    let run = |local_agg: bool| -> u64 {
        let machines = 2;
        let gpus = 3;
        let topo = PsTopology::uniform(machines, gpus).unwrap();
        let decisions = naive_ps_decisions(&graph, 2);
        let plan = Arc::new(
            build_plan(&graph, &decisions, machines, PlacementStrategy::Balanced).unwrap(),
        );
        let (mut endpoints, traffic) = Router::build(topo.comm().clone());
        let mut by_rank: Vec<Option<parallax_comm::Endpoint>> =
            endpoints.drain(..).map(Some).collect();
        let workers = topo.num_workers();
        let ps_vars: Vec<VarId> = graph.var_ids().collect();
        std::thread::scope(|s| {
            for m in 0..machines {
                let endpoint = by_rank[topo.server_rank(m)].take().unwrap();
                let config = ServerConfig {
                    iterations: 2,
                    average_gradients: true,
                    local_aggregation: local_agg,
                    chief_triggers_update: true,
                    synchronous: true,
                    serve_aggregates: false,
                    seed: SEED,
                    lr_schedule: LrSchedule::Constant,
                    ..ServerConfig::default()
                };
                let server = Server::new(
                    &graph,
                    &plan,
                    topo.clone(),
                    endpoint,
                    config,
                    Box::new(Sgd::new(LR)),
                )
                .unwrap();
                s.spawn(move || server.run().unwrap());
            }
            for (widx, &rank) in topo.worker_ranks().iter().enumerate() {
                let endpoint = by_rank[rank].take().unwrap();
                let plan = Arc::clone(&plan);
                let topo = topo.clone();
                let ps_vars = ps_vars.clone();
                let graph = &graph;
                s.spawn(move || {
                    let client = PsClient::new(plan, topo.clone());
                    let local = VarStore::init(graph, &mut DetRng::seed(SEED));
                    let mut ctx = PsWorkerContext::new(endpoint, client, local);
                    let session = Session::new(graph);
                    let chief = topo.chief() == rank;
                    for iter in 0..2usize {
                        ctx.begin_iteration(iter as u64);
                        let feed = worker_batch(iter, widx, 2, workers);
                        let acts = session.forward(&feed, &mut ctx).unwrap();
                        let grads = backward(graph, &acts, loss).unwrap();
                        let PsWorkerContext {
                            endpoint, client, ..
                        } = &mut ctx;
                        for &var in &ps_vars {
                            let grad = grads.get(&var).unwrap();
                            if local_agg && grad.is_sparse() {
                                if let Some(agg) =
                                    locally_aggregate(endpoint, &topo, iter as u64, var, grad)
                                        .unwrap()
                                {
                                    client.push(endpoint, var, &agg).unwrap();
                                }
                            } else {
                                client.push(endpoint, var, grad).unwrap();
                            }
                        }
                        if chief {
                            for &var in &ps_vars {
                                client.chief_update(endpoint, var).unwrap();
                            }
                        }
                        for &var in &ps_vars {
                            client.await_update_done(endpoint, var).unwrap();
                        }
                    }
                });
            }
        });
        traffic.snapshot().total_network_bytes()
    };
    let naive = run(false);
    let aggregated = run(true);
    assert!(
        aggregated < naive,
        "local aggregation must reduce network bytes: {aggregated} vs {naive}"
    );
}

/// One worker per machine: measured PS traffic for a sparse variable must
/// match the paper's Table 3 within the tolerance of index/control
/// overhead the formulas neglect.
#[test]
fn sparse_ps_traffic_tracks_alpha() {
    let mut g = Graph::new();
    let rows = 64usize;
    let cols = 16usize;
    let emb = g
        .variable(VariableDef::new("emb", [rows, cols], Init::Normal(0.1)))
        .unwrap();
    let ids = g.placeholder("ids", PhKind::Ids).unwrap();
    let labels = g.placeholder("labels", PhKind::Ids).unwrap();
    let x = g.add(Op::Gather { table: emb, ids }).unwrap();
    let loss = g.add(Op::SoftmaxXent { logits: x, labels }).unwrap();

    let machines = 4usize;
    let topo = PsTopology::uniform(machines, 1).unwrap();
    let decisions = naive_ps_decisions(&g, 1);
    let plan = Arc::new(build_plan(&g, &decisions, 1, PlacementStrategy::RoundRobin).unwrap());
    // All shards on machine 0: the asymmetric hot-server scenario.
    let (mut endpoints, traffic) = Router::build(topo.comm().clone());
    let mut by_rank: Vec<Option<parallax_comm::Endpoint>> = endpoints.drain(..).map(Some).collect();
    let touched = 8usize; // Rows touched per worker per iteration.
    std::thread::scope(|s| {
        for m in 0..machines {
            let endpoint = by_rank[topo.server_rank(m)].take().unwrap();
            let server = Server::new(
                &g,
                &plan,
                topo.clone(),
                endpoint,
                ServerConfig {
                    iterations: 1,
                    average_gradients: true,
                    local_aggregation: false,
                    chief_triggers_update: false,
                    synchronous: true,
                    serve_aggregates: false,
                    seed: SEED,
                    lr_schedule: LrSchedule::Constant,
                    ..ServerConfig::default()
                },
                Box::new(Sgd::new(0.1)),
            )
            .unwrap();
            if server.num_shards() > 0 {
                s.spawn(move || server.run().unwrap());
            }
        }
        for (widx, &rank) in topo.worker_ranks().iter().enumerate() {
            let endpoint = by_rank[rank].take().unwrap();
            let plan = Arc::clone(&plan);
            let topo = topo.clone();
            let g = &g;
            s.spawn(move || {
                let client = PsClient::new(plan, topo.clone());
                let local = VarStore::init(g, &mut DetRng::seed(SEED));
                let mut ctx = PsWorkerContext::new(endpoint, client, local);
                ctx.begin_iteration(0);
                let ids: Vec<usize> = (0..touched).map(|i| (widx * 13 + i) % rows).collect();
                let labels: Vec<usize> = (0..touched).map(|i| i % cols).collect();
                let feed = Feed::new().with("ids", ids).with("labels", labels);
                let session = Session::new(g);
                let acts = session.forward(&feed, &mut ctx).unwrap();
                let grads = backward(g, &acts, NodeId::from_index(g.num_nodes() - 1)).unwrap();
                let PsWorkerContext {
                    endpoint, client, ..
                } = &mut ctx;
                let grad = grads.values().next().unwrap();
                client.push(endpoint, VarId::from_index(0), grad).unwrap();
                client
                    .await_update_done(endpoint, VarId::from_index(0))
                    .unwrap();
            });
        }
    });
    let _ = (emb, loss, x);
    let snap = traffic.snapshot();
    // Server machine 0 sends alpha*w to each of the other N-1 machines and
    // receives the same back: 2 * alpha*w * (N-1) total load, where
    // alpha*w = touched * cols * 4 bytes per worker.
    let alpha_w = (touched * cols * 4) as u64;
    let expected_out = alpha_w * (machines as u64 - 1);
    let measured_out = snap.out_bytes[0];
    let ratio = measured_out as f64 / expected_out as f64;
    assert!(
        (0.9..1.5).contains(&ratio),
        "server out bytes {measured_out} vs formula {expected_out} (ratio {ratio})"
    );
}
