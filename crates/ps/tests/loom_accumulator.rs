//! Loom model check for server-side gradient fan-in: N workers pushing
//! into one accumulator (externally synchronized, as the server loop
//! does) must release the aggregate exactly once — on the final push —
//! in every interleaving.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p parallax-ps
//! --test loom_accumulator`.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use parallax_ps::accumulator::DenseAccumulator;
use parallax_tensor::Tensor;

/// Two racing pushers: exactly one observes the released aggregate, and
/// it carries both contributions.
#[test]
fn aggregate_releases_exactly_once() {
    loom::model(|| {
        let acc = Arc::new(Mutex::new(DenseAccumulator::new(2)));
        let releases = Arc::new(AtomicUsize::new(0));
        let pushers: Vec<_> = [1.0f32, 2.0]
            .into_iter()
            .enumerate()
            .map(|(pos, v)| {
                let acc = Arc::clone(&acc);
                let releases = Arc::clone(&releases);
                thread::spawn(move || {
                    let out = acc
                        .lock()
                        .unwrap()
                        .push(pos, Tensor::full([2], v))
                        .expect("push within expected count");
                    if let Some(sum) = out {
                        releases.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(sum.data(), &[3.0, 3.0]);
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }
        assert_eq!(releases.load(Ordering::SeqCst), 1);
        // The accumulator reset after releasing: no residue leaks into
        // the next synchronous step.
        assert!(!acc.lock().unwrap().is_pending());
    });
}
