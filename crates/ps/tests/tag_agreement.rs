//! Cross-crate bit-for-bit agreement between `ps::protocol` (the tag
//! producer) and `comm::protocheck` (the tag classifier).
//!
//! The session validator can only be sound if both crates agree on the
//! wire layout: every namespace constant, every field boundary, every
//! kind discriminant. This test pins that agreement so a drift in either
//! crate fails here instead of at runtime.

use parallax_comm::protocheck::{
    classify_tag, TagClass, KIND_CHIEF_UPDATE, KIND_FETCH_SHARD, KIND_PULL_DENSE, KIND_PULL_SPARSE,
    KIND_PUSH_DENSE, KIND_PUSH_SPARSE, KIND_READ_AGG, KIND_UPDATE_DONE, MAX_HEADER_PARTS,
    MAX_HEADER_VARS,
};
use parallax_ps::protocol::{self, ReqKind, MAX_PARTS, MAX_VARS};

#[test]
fn kind_discriminants_agree() {
    for (kind, code) in [
        (ReqKind::PullDense, KIND_PULL_DENSE),
        (ReqKind::PullSparse, KIND_PULL_SPARSE),
        (ReqKind::PushDense, KIND_PUSH_DENSE),
        (ReqKind::PushSparse, KIND_PUSH_SPARSE),
        (ReqKind::ChiefUpdate, KIND_CHIEF_UPDATE),
        (ReqKind::UpdateDone, KIND_UPDATE_DONE),
        (ReqKind::ReadAgg, KIND_READ_AGG),
        (ReqKind::FetchShard, KIND_FETCH_SHARD),
    ] {
        assert_eq!(kind as u8, code, "{kind:?} discriminant drifted");
    }
}

#[test]
fn header_capacity_agrees() {
    assert_eq!(MAX_VARS, MAX_HEADER_VARS);
    assert_eq!(MAX_PARTS, MAX_HEADER_PARTS);
}

#[test]
fn every_produced_tag_classifies_to_its_namespace() {
    // Exercise field boundaries: zero, mid-range, and max values of
    // every header field, for every kind that travels under each tag.
    let vars = [0usize, 17, MAX_VARS];
    let parts = [0usize, 255, MAX_PARTS];
    let iters = [0u64, 12345, (1 << 30) - 1];
    for &var in &vars {
        for &iter in &iters {
            assert_eq!(
                classify_tag(protocol::request_tag(iter)),
                TagClass::Request { iter },
            );
            assert_eq!(
                classify_tag(protocol::allreduce_tag(var, iter)),
                TagClass::Collective { var, iter },
            );
            assert_eq!(
                classify_tag(protocol::local_agg_tag(var, iter)),
                TagClass::LocalAgg { var, iter },
            );
            for &part in &parts {
                for kind in [
                    ReqKind::PullDense,
                    ReqKind::PullSparse,
                    ReqKind::PushDense,
                    ReqKind::PushSparse,
                    ReqKind::ChiefUpdate,
                    ReqKind::UpdateDone,
                    ReqKind::ReadAgg,
                    ReqKind::FetchShard,
                ] {
                    assert_eq!(
                        classify_tag(protocol::response_tag(kind, var, part, iter)),
                        TagClass::Response {
                            kind: kind as u8,
                            var,
                            part,
                            iter,
                        },
                        "{kind:?} response tag mis-classified"
                    );
                }
            }
        }
    }
}

#[test]
fn header_fields_decode_like_unpack() {
    // The validator decodes request headers with its own shifts; they
    // must match `protocol::unpack` exactly. Round-trip through a
    // response tag, whose classified fields come from the same layout.
    let h = protocol::pack(ReqKind::PushSparse, 17, 3, 999);
    let (kind, var, part, iter) = protocol::unpack(h).unwrap();
    let classified = classify_tag(0x8000_0000_0000_0000 | h);
    assert_eq!(
        classified,
        TagClass::Response {
            kind: kind as u8,
            var,
            part,
            iter,
        }
    );
}
