//! Asynchronous PS training (Section 2.1): each worker's gradients are
//! applied the moment they arrive — no barriers, no chief trigger, and
//! the staleness that comes with it. Compares the loss trajectory and
//! final model against synchronous training on the same workload.
//!
//! ```text
//! cargo run --example async_training
//! ```

use parallax_repro::core::sparsity::estimate_profile;
use parallax_repro::core::{get_runner, shard_range, ArchChoice, ParallaxConfig};
use parallax_repro::dataflow::builder::{linear, Act};
use parallax_repro::dataflow::graph::{Op, PhKind};
use parallax_repro::dataflow::{Feed, Graph};
use parallax_repro::tensor::DetRng;

const VOCAB: usize = 64;
const CLASSES: usize = 8;
const ITERS: usize = 30;

fn main() {
    let mut graph = Graph::new();
    let emb = parallax_repro::dataflow::builder::embedding(&mut graph, "emb", VOCAB, 12, None)
        .expect("embedding");
    let ids = graph.placeholder("ids", PhKind::Ids).expect("ids");
    let labels = graph.placeholder("labels", PhKind::Ids).expect("labels");
    let x = graph.add(Op::Gather { table: emb, ids }).expect("gather");
    let (logits, _, _) = linear(&mut graph, x, "fc", 12, CLASSES, Act::None).expect("fc");
    let loss = graph.add(Op::SoftmaxXent { logits, labels }).expect("loss");
    let profile = estimate_profile(&graph, &[batch(0)], 1).expect("profile");

    for (name, synchronous) in [("synchronous", true), ("asynchronous", false)] {
        let config = ParallaxConfig {
            seed: 5,
            learning_rate: 0.25,
            synchronous,
            arch: ArchChoice::PsOnly { optimized: false },
            local_aggregation: false,
            chief_triggers_update: synchronous,
            ..ParallaxConfig::tf_ps_baseline()
        };
        let runner =
            get_runner(graph.clone(), loss, vec![2, 2], config, profile.clone()).expect("runner");
        let report = runner
            .run(ITERS, |worker, iter| {
                let global = batch(iter as u64);
                shard(&global, worker, 4)
            })
            .expect("training");
        println!(
            "{name:>12}: loss {:.4} -> {:.4} | PS bytes {} KiB | wall {:.0} ms",
            report.losses[0],
            report.losses.last().expect("losses"),
            report.traffic.ps.total_network_bytes() / 1024,
            report.wall_seconds * 1e3,
        );
    }
    println!(
        "\nBoth modes learn; the asynchronous run skips the accumulate/\n\
         chief-trigger/notify machinery, trading gradient staleness for\n\
         the absence of synchronization barriers — the trade-off the\n\
         paper cites as its reason to default to synchronous training."
    );
}

fn batch(iter: u64) -> Feed {
    let mut rng = DetRng::seed(100 + iter);
    let ids: Vec<usize> = (0..16).map(|_| rng.below(VOCAB)).collect();
    let labels: Vec<usize> = ids.iter().map(|&t| t % CLASSES).collect();
    Feed::new().with("ids", ids).with("labels", labels)
}

fn shard(global: &Feed, worker: usize, workers: usize) -> Feed {
    let ids = global
        .get("ids")
        .expect("ids")
        .as_ids("shard")
        .expect("ids")
        .to_vec();
    let labels = global
        .get("labels")
        .expect("labels")
        .as_ids("shard")
        .expect("labels")
        .to_vec();
    let r = shard_range(ids.len(), workers, worker);
    Feed::new()
        .with("ids", ids[r.clone()].to_vec())
        .with("labels", labels[r].to_vec())
}
