//! Trains the dense image models (ResNet-like and Inception-like) and
//! shows the hybrid architecture degenerating to pure AllReduce: dense
//! models need no servers, and Parallax matches Horovod (the paper's
//! Figure 8(a)/(b) observation).
//!
//! ```text
//! cargo run --example image_classification
//! ```

use parallax_repro::core::sparsity::estimate_profile;
use parallax_repro::core::{get_runner, ParallaxConfig};
use parallax_repro::dataflow::Session;
use parallax_repro::models::data::ImageDataset;
use parallax_repro::models::metrics;
use parallax_repro::models::{inception, resnet};
use parallax_repro::tensor::DetRng;

const MACHINES: usize = 2;
const GPUS: usize = 2;
const BATCH: usize = 8;
const ITERS: usize = 40;

fn main() {
    let resnet_cfg = resnet::ResNetConfig::tiny();
    let resnet = resnet::build(resnet_cfg).expect("resnet builds");
    run_one(
        "ResNet-like",
        resnet,
        resnet_cfg.features,
        resnet_cfg.classes,
    );

    let inception_cfg = inception::InceptionConfig::tiny();
    let inception = inception::build(inception_cfg).expect("inception builds");
    run_one(
        "Inception-like",
        inception,
        inception_cfg.features,
        inception_cfg.classes,
    );
}

fn run_one(name: &str, model: parallax_repro::models::BuiltModel, features: usize, classes: usize) {
    let ds = ImageDataset::new(features, classes);
    let profile = {
        let feed = ds.feed(BATCH, &mut DetRng::seed(1));
        estimate_profile(&model.graph, &[feed], 1).expect("profile")
    };
    let runner = get_runner(
        model.graph.clone(),
        model.loss,
        vec![GPUS; MACHINES],
        ParallaxConfig {
            learning_rate: 0.2,
            seed: 5,
            ..ParallaxConfig::default()
        },
        profile,
    )
    .expect("runner");

    println!(
        "{name}: {} variables, all dense -> servers needed: {} (pure AllReduce)",
        model.graph.variables().len(),
        runner.plan().needs_servers(),
    );

    let ds_ref = &ds;
    let report = runner
        .run(ITERS, move |worker, iter| {
            ds_ref.feed(
                BATCH,
                &mut DetRng::seed(40_000 + (iter * 64 + worker) as u64),
            )
        })
        .expect("training");

    // Evaluate top-1 error with the final model on a held-out batch.
    let mut store = report.final_store(&model.graph).expect("final model");
    let eval = ds.feed(64, &mut DetRng::seed(999));
    let acts = Session::new(&model.graph)
        .forward(&eval, &mut store)
        .expect("eval");
    let logits = acts.tensor(model.logits).expect("logits");
    let labels = eval
        .get("labels")
        .expect("labels")
        .as_ids("eval")
        .expect("labels");
    let err = metrics::top1_error(logits, labels).expect("top-1");
    println!(
        "  loss {:.3} -> {:.3}; eval top-1 error {:.1}% (chance {:.1}%)",
        report.losses[0],
        report.losses.last().expect("losses"),
        err * 100.0,
        (1.0 - 1.0 / classes as f32) * 100.0,
    );
    println!(
        "  traffic: nccl {} KiB, ps {} KiB",
        report.traffic.nccl.total_network_bytes() / 1024,
        report.traffic.ps.total_network_bytes() / 1024,
    );
}
