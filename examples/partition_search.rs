//! Runs Parallax's sparse-variable partition search (Section 3.2) on the
//! NMT model: short sampled runs, a fitted `th0 + th1/P + th2*P` cost
//! model, and the chosen near-optimal partition count.
//!
//! ```text
//! cargo run --example partition_search
//! ```

use parallax_repro::cluster::ClusterModel;
use parallax_repro::core::sparsity::estimate_profile;
use parallax_repro::core::{get_runner, ParallaxConfig};
use parallax_repro::models::data::ZipfCorpus;
use parallax_repro::models::nmt::{NmtConfig, NmtModel};
use parallax_repro::tensor::DetRng;

const MACHINES: usize = 2;
const GPUS: usize = 2;

fn main() {
    let model = NmtModel::build(NmtConfig::tiny()).expect("NMT builds");
    let src = ZipfCorpus::new(model.config.src_vocab, 1.0);
    let tgt = ZipfCorpus::new(model.config.tgt_vocab, 1.0);
    let profile = {
        let feed = model.feed(&src, &tgt, &mut DetRng::seed(42));
        estimate_profile(&model.built.graph, &[feed], 1).expect("profile")
    };

    let runner = get_runner(
        model.built.graph.clone(),
        model.built.loss,
        vec![GPUS; MACHINES],
        ParallaxConfig {
            learning_rate: 0.5,
            seed: 3,
            ..ParallaxConfig::default()
        },
        profile,
    )
    .expect("runner");

    let cluster = ClusterModel::paper_testbed();
    let m = &model;
    let (s, t) = (&src, &tgt);
    let feed_fn = move |worker: usize, iter: usize| {
        m.sharded_feed(
            s,
            t,
            MACHINES * GPUS,
            worker,
            &mut DetRng::seed(500 + iter as u64),
        )
    };

    println!("searching partition counts (doubling/halving from {MACHINES})...");
    let (tuned, result) = runner
        .optimize_partitions(feed_fn, 3, model.config.src_vocab, &cluster)
        .expect("search succeeds");

    for (p, time) in &result.samples {
        println!("  P = {p:>3}: simulated iteration {:.3} ms", time * 1e3);
    }
    println!(
        "fitted Eq. 1: t(P) = {:.4} + {:.4}/P + {:.6}*P  (seconds)",
        result.fit.theta0, result.fit.theta1, result.fit.theta2,
    );
    println!(
        "chosen P = {} ({} samples)",
        result.best,
        result.samples.len()
    );

    // Train with the tuned partitioning.
    let report = tuned.run(10, feed_fn).expect("training");
    println!(
        "trained 10 iterations at P = {}: loss {:.4} -> {:.4}",
        tuned.plan().partitions,
        report.losses[0],
        report.losses.last().expect("losses"),
    );
}
