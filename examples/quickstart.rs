//! Quickstart: transform a single-GPU graph and train it on a simulated
//! multi-machine cluster (the Figure 3 workflow).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parallax_repro::core::sparsity::estimate_profile;
use parallax_repro::core::{get_runner, shard_range, ParallaxConfig};
use parallax_repro::dataflow::builder::{linear, Act};
use parallax_repro::dataflow::graph::{Op, PhKind};
use parallax_repro::dataflow::{Feed, Graph};
use parallax_repro::tensor::DetRng;

const VOCAB: usize = 200;
const EMB: usize = 16;
const CLASSES: usize = 10;
const PER_WORKER: usize = 8;

fn main() {
    // 1. Build a single-GPU graph, exactly as for local training: an
    //    embedding (sparse) feeding a small classifier (dense).
    let mut graph = Graph::new();
    let group = graph.open_partition_group(); // parallax.partitioner()
    let emb =
        parallax_repro::dataflow::builder::embedding(&mut graph, "emb", VOCAB, EMB, Some(group))
            .expect("embedding");
    let ids = graph.placeholder("ids", PhKind::Ids).expect("ids");
    let labels = graph.placeholder("labels", PhKind::Ids).expect("labels");
    let x = graph.add(Op::Gather { table: emb, ids }).expect("gather");
    let (logits, _, _) = linear(&mut graph, x, "fc", EMB, CLASSES, Act::None).expect("fc");
    let loss = graph.add(Op::SoftmaxXent { logits, labels }).expect("loss");

    // 2. Estimate each variable's sparsity (alpha) from sample batches.
    let sample = batch(0, PER_WORKER * 4);
    let profile = estimate_profile(&graph, &[sample], 7).expect("profile");
    for v in &profile.vars {
        let def = &graph.variables()[v.var.index()];
        println!(
            "variable '{}': {} elements, {} (alpha = {:.3})",
            def.name,
            v.elements,
            if v.sparse { "sparse" } else { "dense" },
            v.alpha,
        );
    }
    println!("alpha_model = {:.3}", profile.alpha_model());

    // 3. get_runner: transform the graph for 2 machines x 2 GPUs under
    //    the hybrid architecture and run synchronous training.
    let runner =
        get_runner(graph, loss, vec![2, 2], ParallaxConfig::default(), profile).expect("runner");
    println!(
        "plan: {} AllReduce variables, {} PS variables, servers needed: {}",
        runner.plan().ar_vars().len(),
        runner.plan().ps_vars().len(),
        runner.plan().needs_servers(),
    );

    let report = runner
        .run(20, |worker, iter| {
            let global = batch(iter as u64, PER_WORKER * 4);
            shard(&global, worker, 4)
        })
        .expect("training");

    println!(
        "losses: first {:.4} -> last {:.4}",
        report.losses[0], report.losses[19]
    );
    println!(
        "traffic: {} KiB AllReduce, {} KiB PS, {} KiB local aggregation (intra)",
        report.traffic.nccl.total_network_bytes() / 1024,
        report.traffic.ps.total_network_bytes() / 1024,
        report.traffic.local_agg.intra_bytes() / 1024,
    );
}

/// A deterministic global batch for one iteration.
fn batch(iter: u64, total: usize) -> Feed {
    let mut rng = DetRng::seed(1000 + iter);
    let ids: Vec<usize> = (0..total).map(|_| rng.below(VOCAB)).collect();
    // A learnable mapping: the label is derived from the token id.
    let labels: Vec<usize> = ids.iter().map(|&t| t % CLASSES).collect();
    Feed::new().with("ids", ids).with("labels", labels)
}

/// This worker's shard of the global batch (the `parallax.shard` API).
fn shard(global: &Feed, worker: usize, workers: usize) -> Feed {
    let ids = global
        .get("ids")
        .expect("ids")
        .as_ids("shard")
        .expect("ids")
        .to_vec();
    let labels = global
        .get("labels")
        .expect("labels")
        .as_ids("shard")
        .expect("labels")
        .to_vec();
    let r = shard_range(ids.len(), workers, worker);
    Feed::new()
        .with("ids", ids[r.clone()].to_vec())
        .with("labels", labels[r].to_vec())
}
