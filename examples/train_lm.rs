//! Trains the LM model under all three frameworks and compares their
//! measured traffic and simulated iteration times — a miniature of the
//! paper's Section 6.3 experiment.
//!
//! ```text
//! cargo run --example train_lm
//! ```

use parallax_repro::cluster::ClusterModel;
use parallax_repro::core::sparsity::estimate_profile;
use parallax_repro::core::{get_runner, ParallaxConfig};
use parallax_repro::models::data::ZipfCorpus;
use parallax_repro::models::lm::{LmConfig, LmModel};
use parallax_repro::models::metrics;
use parallax_repro::tensor::DetRng;

const MACHINES: usize = 2;
const GPUS: usize = 2;
const ITERS: usize = 30;

fn main() {
    let model = LmModel::build(LmConfig::tiny()).expect("LM builds");
    let corpus = ZipfCorpus::new(model.config.vocab, 1.0);
    let profile = {
        let feed = model.feed(&corpus, &mut DetRng::seed(42));
        estimate_profile(&model.built.graph, &[feed], 1).expect("profile")
    };
    println!(
        "LM: vocab {}, alpha_model {:.3} ({} variables)",
        model.config.vocab,
        profile.alpha_model(),
        model.built.graph.variables().len(),
    );

    let cluster = ClusterModel::paper_testbed();
    for (name, config) in [
        ("Parallax ", ParallaxConfig::default()),
        ("TF-PS    ", ParallaxConfig::tf_ps_baseline()),
        ("Horovod  ", ParallaxConfig::horovod_baseline()),
    ] {
        let runner = get_runner(
            model.built.graph.clone(),
            model.built.loss,
            vec![GPUS; MACHINES],
            ParallaxConfig {
                learning_rate: 0.5,
                seed: 11,
                ..config
            },
            profile.clone(),
        )
        .expect("runner");
        let m = &model;
        let c = &corpus;
        let report = runner
            .run(ITERS, move |worker, iter| {
                m.sharded_feed(
                    c,
                    MACHINES * GPUS,
                    worker,
                    &mut DetRng::seed(900 + iter as u64),
                )
            })
            .expect("training");
        let ppl_first = metrics::perplexity(report.losses[0]);
        let ppl_last = metrics::perplexity(*report.losses.last().expect("losses"));
        let sim_iter = report.simulated_iteration_time(
            &cluster,
            MACHINES,
            report.host_compute_per_iter,
            runner.modelled_server_cpu(&cluster),
        );
        println!(
            "{name} perplexity {ppl_first:7.2} -> {ppl_last:7.2} | net KiB/iter: \
             nccl {:>5} mpi {:>5} ps {:>6} | sim iter {:.2} ms",
            report.traffic.nccl.total_network_bytes() / 1024 / ITERS as u64,
            report.traffic.mpi.total_network_bytes() / 1024 / ITERS as u64,
            report.traffic.ps.total_network_bytes() / 1024 / ITERS as u64,
            sim_iter * 1e3,
        );
    }
    println!(
        "\nAll three frameworks implement the same synchronous SGD, so the\n\
         perplexity curves coincide; what differs is where the gradient bytes\n\
         travel (AllReduce vs AllGatherv vs Parameter Server) and therefore\n\
         the simulated iteration time on the calibrated 100Gbps testbed."
    );
}
