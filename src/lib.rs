#![warn(missing_docs)]

//! Parallax reproduction — umbrella crate.
//!
//! Re-exports the whole stack under one name so examples and downstream
//! users can depend on a single crate:
//!
//! * [`tensor`] — dense tensors and sparse `IndexedSlices`.
//! * [`dataflow`] — the graph engine with reverse-mode autodiff.
//! * [`comm`] — transport, traffic accounting, ring collectives.
//! * [`cluster`] — resource specs and the hardware/iteration-time model.
//! * [`ps`] — the Parameter Server architecture.
//! * [`core`] — Parallax itself: sparsity analysis, hybrid decision,
//!   partition search, graph transformation, the distributed runner.
//! * [`models`] — LM / NMT / ResNet-like / Inception-like models and
//!   synthetic datasets.
//! * [`trace`] — the observability subsystem: spans, counters, and
//!   Chrome-trace/breakdown exporters threaded through the whole stack.
//! * [`fault`] — deterministic fault injection (kill / drop / delay /
//!   duplicate / stall plans evaluated inside the transport and the
//!   runner's worker and server loops).
//! * [`serve`] — snapshot-consistent inference: the trainer publishes
//!   immutable post-barrier weight snapshots, and a batched serving
//!   engine answers requests from them via zero-copy mmap views.
//!
//! # Quickstart
//!
//! ```
//! use parallax_repro::core::sparsity::estimate_profile;
//! use parallax_repro::core::{get_runner, shard_range, ParallaxConfig};
//! use parallax_repro::dataflow::graph::{Init, Op, PhKind};
//! use parallax_repro::dataflow::{Feed, Graph, VariableDef};
//!
//! // A single-GPU graph: embedding -> logits -> loss.
//! let mut g = Graph::new();
//! let emb = g.variable(VariableDef::new("emb", [100, 8], Init::Normal(0.1))).unwrap();
//! let ids = g.placeholder("ids", PhKind::Ids).unwrap();
//! let labels = g.placeholder("labels", PhKind::Ids).unwrap();
//! let x = g.add(Op::Gather { table: emb, ids }).unwrap();
//! let loss = g.add(Op::SoftmaxXent { logits: x, labels }).unwrap();
//!
//! // Profile sparsity from a sample batch, then transform + run on a
//! // simulated 2-machine x 2-GPU cluster.
//! let sample = Feed::new().with("ids", vec![1usize, 5]).with("labels", vec![0usize, 3]);
//! let profile = estimate_profile(&g, &[sample], 0).unwrap();
//! let runner = get_runner(g, loss, vec![2, 2], ParallaxConfig::default(), profile).unwrap();
//! let report = runner
//!     .run(2, |worker, _iter| {
//!         let r = shard_range(8, 4, worker);
//!         Feed::new()
//!             .with("ids", (r.start..r.end).map(|i| i * 7 % 100).collect::<Vec<_>>())
//!             .with("labels", (r.start..r.end).map(|i| i % 8).collect::<Vec<_>>())
//!     })
//!     .unwrap();
//! assert_eq!(report.losses.len(), 2);
//! ```

pub use parallax_cluster as cluster;
pub use parallax_comm as comm;
pub use parallax_core as core;
pub use parallax_dataflow as dataflow;
pub use parallax_fault as fault;
pub use parallax_models as models;
pub use parallax_ps as ps;
pub use parallax_serve as serve;
pub use parallax_tensor as tensor;
pub use parallax_trace as trace;
